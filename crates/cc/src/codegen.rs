//! Code generation: Wisc AST → textual assembly → WEF image.
//!
//! The generated code deliberately reproduces the idioms the EEL paper's
//! analyses confront on real SPARC compilers:
//!
//! * **dispatch tables in the text segment** for `switch` (§3.3's
//!   slicing-based jump-table recovery, and §3.1's "data tables in the
//!   text segment"),
//! * **annulled-branch comparison idioms** (`bcc,a` with a meaningful
//!   delay slot — Figure 3's normalization case),
//! * **filled delay slots** on calls and unconditional branches (the
//!   delay-slot folding that EEL must undo and redo),
//! * **SunPro-personality frame-popping tail calls** whose jump target is
//!   reloaded from the stack — the exact pattern behind the paper's 138
//!   unanalyzable indirect jumps on Solaris.
//!
//! Calling convention (flat, no register windows): arguments in
//! `%o0–%o5`, result in `%o0`, return address in `%o7`; `%l0–%l7` form the
//! expression-evaluation stack and are callee-clobbered, so live values are
//! spilled around calls.

use crate::ast::*;
use crate::{CcError, Options, Personality};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Frame offsets (relative to `%sp` after the prologue).
const SLOT_SCRATCH: u32 = 0; // tail-call target home slot
const SLOT_RA: u32 = 4; // saved %o7
const SLOT_LOCALS: u32 = 8; // locals/params, then eval-stack spill area

/// Number of `%l` registers used as the expression stack.
const EVAL_REGS: usize = 8;

/// Generates the full assembly source for a program.
pub fn generate(program: &Program, options: &Options) -> Result<String, CcError> {
    let mut cg = Codegen::new(program, options);
    cg.program()?;
    Ok(cg.out)
}

struct Codegen<'a> {
    program: &'a Program,
    options: &'a Options,
    out: String,
    label: u32,
    /// Per-function state.
    locals: HashMap<String, u32>,
    frame: u32,
    depth: usize,
    loop_stack: Vec<(String, String)>, // (continue target, break target)
    fname: String,
}

impl<'a> Codegen<'a> {
    fn new(program: &'a Program, options: &'a Options) -> Codegen<'a> {
        Codegen {
            program,
            options,
            out: String::new(),
            label: 0,
            locals: HashMap::new(),
            frame: 0,
            depth: 0,
            loop_stack: Vec::new(),
            fname: String::new(),
        }
    }

    fn fresh(&mut self, kind: &str) -> String {
        self.label += 1;
        format!(".L{}_{}{}", self.fname, kind, self.label)
    }

    fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "    {text}");
    }

    fn raw(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    fn err(&self, msg: impl Into<String>) -> CcError {
        CcError::Semantic(format!("in function {:?}: {}", self.fname, msg.into()))
    }

    // ----- top level -------------------------------------------------

    fn program(&mut self) -> Result<(), CcError> {
        if self.program.function("main").is_none() {
            return Err(CcError::Semantic("program has no `main` function".into()));
        }
        self.raw("    .text");
        self.raw("    .entry __start");
        self.raw("    .global __start");
        self.raw("__start:");
        self.line("call main");
        self.line("nop");
        self.line("mov 1, %g1");
        self.line("ta 0");
        self.line("nop");

        for f in &self.program.functions {
            self.function(f)?;
        }
        self.emit_print_runtime();
        self.emit_data();
        Ok(())
    }

    fn emit_data(&mut self) {
        self.raw("    .data");
        self.raw("__print_buf:");
        self.raw("    .skip 16");
        for g in &self.program.globals {
            let _ = writeln!(self.out, "    .global {}", mangle_global(&g.name));
            let _ = writeln!(self.out, "{}:", mangle_global(&g.name));
            if g.count == 1 {
                let _ = writeln!(self.out, "    .word {}", g.init);
            } else {
                let _ = writeln!(self.out, "    .skip {}", g.count * 4);
            }
        }
    }

    /// The decimal-printing runtime routine (a leaf; clobbers `%o0–%o5`,
    /// `%g1`, `%y`).
    fn emit_print_runtime(&mut self) {
        self.raw("    .global __print_int");
        self.raw("__print_int:");
        // %o0 = value. Build digits backwards from __print_buf+15.
        self.line("set __print_buf + 15, %o3");
        self.line("mov 10, %o5");
        self.line("stb %o5, [%o3]"); // trailing '\n'
        self.line("mov %o0, %o1"); // working copy
        self.line("mov 0, %o4"); // sign flag
        self.line("cmp %o0, 0");
        self.line("bge .Lpi_digits");
        self.line("nop");
        self.line("mov 1, %o4");
        self.line("sub %g0, %o1, %o1"); // negate
        self.raw(".Lpi_digits:");
        self.line("wr %g0, %g0, %y");
        self.line("udiv %o1, 10, %o2"); // quotient
        self.line("smul %o2, 10, %o5");
        self.line("sub %o1, %o5, %o5"); // remainder
        self.line("add %o5, 48, %o5"); // ASCII digit
        self.line("dec %o3");
        self.line("stb %o5, [%o3]");
        self.line("cmp %o2, 0");
        self.line("bne .Lpi_digits");
        self.line("mov %o2, %o1"); // delay: value = quotient
        self.line("cmp %o4, 0");
        self.line("be .Lpi_write");
        self.line("nop");
        self.line("dec %o3");
        self.line("mov 45, %o5"); // '-'
        self.line("stb %o5, [%o3]");
        self.raw(".Lpi_write:");
        // write(1, %o3, buf+16 - %o3)
        self.line("set __print_buf + 16, %o2");
        self.line("sub %o2, %o3, %o2");
        self.line("mov %o3, %o1");
        self.line("mov 1, %o0");
        self.line("mov 4, %g1");
        self.line("ta 0");
        self.line("retl");
        self.line("nop");
    }

    // ----- functions -------------------------------------------------

    fn function(&mut self, f: &Function) -> Result<(), CcError> {
        self.fname = f.name.clone();
        self.locals.clear();
        self.depth = 0;
        self.loop_stack.clear();

        // Slot assignment: params first, then every `var` in the body
        // (pre-scanned so the frame size is known up front).
        let mut names: Vec<String> = f.params.clone();
        collect_vars(&f.body, &mut names);
        for (i, name) in names.iter().enumerate() {
            if self
                .locals
                .insert(name.clone(), SLOT_LOCALS + 4 * i as u32)
                .is_some()
            {
                return Err(self.err(format!("duplicate variable {name:?}")));
            }
        }
        let spill_base = SLOT_LOCALS + 4 * names.len() as u32;
        self.frame = (spill_base + 4 * EVAL_REGS as u32 + 7) & !7;

        let _ = writeln!(self.out, "    .global {}", f.name);
        let _ = writeln!(self.out, "{}:", f.name);
        let frame = self.frame;
        self.line(&format!("sub %sp, {frame}, %sp"));
        self.line(&format!("st %o7, [%sp + {SLOT_RA}]"));
        for (i, p) in f.params.iter().enumerate() {
            let slot = self.locals[p];
            self.line(&format!("st %o{i}, [%sp + {slot}]"));
        }
        self.stmts(&f.body)?;
        // Implicit `return 0` at the end of a function body.
        self.line("mov 0, %o0");
        self.epilogue();
        Ok(())
    }

    fn epilogue(&mut self) {
        let frame = self.frame;
        self.line(&format!("ld [%sp + {SLOT_RA}], %o7"));
        self.line("retl");
        self.line(&format!("add %sp, {frame}, %sp")); // delay slot pops
    }

    fn spill_base(&self) -> u32 {
        self.frame - 4 * EVAL_REGS as u32
    }

    // ----- statements ------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CcError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CcError> {
        match s {
            Stmt::Var(name, init) => {
                let slot = *self
                    .locals
                    .get(name)
                    .ok_or_else(|| self.err(format!("internal: var {name:?} unscanned")))?;
                if let Some(e) = init {
                    let r = self.expr(e)?;
                    self.line(&format!("st {r}, [%sp + {slot}]"));
                    self.pop();
                }
                Ok(())
            }
            Stmt::Assign(lv, e) => {
                let r = self.expr(e)?;
                match lv {
                    LValue::Var(name) => {
                        if let Some(&slot) = self.locals.get(name) {
                            self.line(&format!("st {r}, [%sp + {slot}]"));
                        } else if self.program.global(name).is_some() {
                            return self.store_global(name, &r).map(|()| self.pop());
                        } else {
                            return Err(self.err(format!("undefined variable {name:?}")));
                        }
                    }
                    LValue::Global(name) => {
                        self.store_global(name, &r)?;
                    }
                    LValue::Index(name, index) => {
                        let g = self
                            .program
                            .global(name)
                            .ok_or_else(|| self.err(format!("undefined array {name:?}")))?;
                        if g.count == 1 {
                            return Err(self.err(format!("{name:?} is not an array")));
                        }
                        let ri = self.expr(index)?;
                        let rt = self.push()?;
                        self.line(&format!("sll {ri}, 2, {ri}"));
                        self.line(&format!("set {}, {rt}", mangle_global(name)));
                        self.line(&format!("st {r}, [{rt} + {ri}]"));
                        self.pop(); // rt
                        self.pop(); // ri
                    }
                }
                self.pop(); // r
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.branch_if_false(cond, &lelse)?;
                self.stmts(then)?;
                if els.is_empty() {
                    self.raw(&format!("{lelse}:"));
                } else {
                    self.line(&format!("ba {lend}"));
                    self.line("nop");
                    self.raw(&format!("{lelse}:"));
                    self.stmts(els)?;
                    self.raw(&format!("{lend}:"));
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let lhead = self.fresh("while");
                let lend = self.fresh("endwhile");
                self.raw(&format!("{lhead}:"));
                self.branch_if_false(cond, &lend)?;
                self.loop_stack.push((lhead.clone(), lend.clone()));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.line(&format!("ba {lhead}"));
                self.line("nop");
                self.raw(&format!("{lend}:"));
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                // Desugar: init; while (cond) { body; step; } — except
                // `continue` must reach the step, so the continue target
                // is a dedicated label.
                self.stmt(init)?;
                let lhead = self.fresh("for");
                let lstep = self.fresh("forstep");
                let lend = self.fresh("endfor");
                self.raw(&format!("{lhead}:"));
                self.branch_if_false(cond, &lend)?;
                self.loop_stack.push((lstep.clone(), lend.clone()));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.raw(&format!("{lstep}:"));
                self.stmt(step)?;
                self.line(&format!("ba {lhead}"));
                self.line("nop");
                self.raw(&format!("{lend}:"));
                Ok(())
            }
            Stmt::Switch(scrutinee, cases, default) => self.switch(scrutinee, cases, default),
            Stmt::Return(e) => {
                // SunPro personality: a returned call becomes a
                // frame-popping tail jump (§3.3's unanalyzable idiom).
                if self.options.personality == Personality::SunPro {
                    match e {
                        Expr::Call(name, args) if self.program.function(name).is_some() => {
                            return self.tail_call(Some(name.clone()), None, args);
                        }
                        Expr::CallPtr(target, args) => {
                            let t = (**target).clone();
                            return self.tail_call(None, Some(&t), args);
                        }
                        _ => {}
                    }
                }
                let r = self.expr(e)?;
                self.line(&format!("mov {r}, %o0"));
                self.pop();
                self.epilogue();
                Ok(())
            }
            Stmt::Break => {
                let (_, lend) = self
                    .loop_stack
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("`break` outside a loop"))?;
                self.line(&format!("ba {lend}"));
                self.line("nop");
                Ok(())
            }
            Stmt::Continue => {
                let (lcont, _) = self
                    .loop_stack
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("`continue` outside a loop"))?;
                self.line(&format!("ba {lcont}"));
                self.line("nop");
                Ok(())
            }
            Stmt::Print(e) => {
                let r = self.expr(e)?;
                self.spill_eval_stack();
                self.line(&format!("mov {r}, %o0"));
                self.line("call __print_int");
                self.line("nop");
                self.reload_eval_stack();
                self.pop();
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.pop();
                Ok(())
            }
        }
    }

    fn store_global(&mut self, name: &str, r: &str) -> Result<(), CcError> {
        if self.program.global(name).is_none() {
            return Err(self.err(format!("undefined global {name:?}")));
        }
        let rt = self.push()?;
        let sym = mangle_global(name);
        self.line(&format!("sethi %hi({sym}), {rt}"));
        self.line(&format!("st {r}, [%lo({sym}) + {rt}]"));
        self.pop();
        Ok(())
    }

    /// Emits a bounds-checked dispatch table (gap cases go to default),
    /// falling back to a compare chain when values are sparse or negative.
    fn switch(
        &mut self,
        scrutinee: &Expr,
        cases: &[(i32, Vec<Stmt>)],
        default: &[Stmt],
    ) -> Result<(), CcError> {
        let lend = self.fresh("endswitch");
        let ldefault = self.fresh("swdefault");
        let max = cases.iter().map(|(v, _)| *v).max().unwrap_or(-1);
        let min = cases.iter().map(|(v, _)| *v).min().unwrap_or(0);
        let dense = min >= 0
            && max < 1024
            && !cases.is_empty()
            && (cases.len() as i64) * 4 >= (max as i64 + 1);

        let case_labels: Vec<(i32, String)> = cases
            .iter()
            .map(|(v, _)| (*v, self.fresh("case")))
            .collect();

        let r = self.expr(scrutinee)?;
        if dense {
            let rt = self.push()?;
            let ltbl = self.fresh("swtbl");
            self.line(&format!("cmp {r}, {}", max + 1));
            self.line(&format!("bgeu {ldefault}")); // unsigned: negatives too
            self.line("nop");
            self.line(&format!("sll {r}, 2, {r}"));
            self.line(&format!("set {ltbl}, {rt}"));
            self.line(&format!("ld [{rt} + {r}], {rt}"));
            self.line(&format!("jmp {rt}"));
            self.line("nop");
            // The dispatch table lives in the text segment, right after
            // the jump — data that EEL's analysis must not decode as code.
            self.raw(&format!("{ltbl}:"));
            for v in 0..=max {
                let target = case_labels
                    .iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, l)| l.clone())
                    .unwrap_or_else(|| ldefault.clone());
                self.line(&format!(".word {target}"));
            }
            self.pop(); // rt
        } else {
            for (v, l) in &case_labels {
                self.line(&format!("cmp {r}, {v}"));
                self.line(&format!("be {l}"));
                self.line("nop");
            }
            self.line(&format!("ba {ldefault}"));
            self.line("nop");
        }
        self.pop(); // r

        for ((_, body), (_, label)) in cases.iter().zip(&case_labels) {
            self.raw(&format!("{label}:"));
            self.stmts(body)?;
            self.line(&format!("ba {lend}"));
            self.line("nop");
        }
        self.raw(&format!("{ldefault}:"));
        self.stmts(default)?;
        self.raw(&format!("{lend}:"));
        Ok(())
    }

    /// SunPro frame-popping tail call. The target address is homed to a
    /// stack slot and reloaded before the jump: a backward slice from the
    /// jump hits a stack load and cannot resolve it — exactly why the
    /// paper's 138 Solaris jumps were unanalyzable.
    fn tail_call(
        &mut self,
        callee: Option<String>,
        target: Option<&Expr>,
        args: &[Expr],
    ) -> Result<(), CcError> {
        // Compute the target into %g4 first (it may use the eval stack).
        match (&callee, target) {
            (Some(name), None) => {
                let arity = self.program.function(name).map(|f| f.params.len());
                if arity != Some(args.len()) {
                    return Err(self.err(format!("arity mismatch calling {name:?}")));
                }
                self.line(&format!("set {name}, %g4"));
            }
            (None, Some(e)) => {
                let r = self.expr(e)?;
                self.line(&format!("mov {r}, %g4"));
                self.pop();
            }
            _ => unreachable!("exactly one of callee/target"),
        }
        self.line(&format!("st %g4, [%sp + {SLOT_SCRATCH}]"));
        // Marshal arguments.
        let regs = self.eval_args(args)?;
        for (i, r) in regs.iter().enumerate() {
            self.line(&format!("mov {r}, %o{i}"));
        }
        for _ in regs {
            self.pop();
        }
        // Pop the frame and jump.
        let frame = self.frame;
        self.line(&format!("ld [%sp + {SLOT_RA}], %o7"));
        self.line(&format!("ld [%sp + {SLOT_SCRATCH}], %g4"));
        self.line(&format!("add %sp, {frame}, %sp"));
        self.line("jmp %g4");
        self.line("nop");
        Ok(())
    }

    // ----- expressions -----------------------------------------------

    /// Pushes a new eval-stack register name (`%l0`–`%l7`).
    fn push(&mut self) -> Result<String, CcError> {
        if self.depth >= EVAL_REGS {
            return Err(self.err(format!(
                "expression too deep (more than {EVAL_REGS} live temporaries)"
            )));
        }
        let r = format!("%l{}", self.depth);
        self.depth += 1;
        Ok(r)
    }

    fn pop(&mut self) {
        debug_assert!(self.depth > 0, "eval stack underflow");
        self.depth -= 1;
    }

    /// Spills all live eval registers to the frame (before a call, whose
    /// callee clobbers `%l0–%l7`).
    fn spill_eval_stack(&mut self) {
        let base = self.spill_base();
        for i in 0..self.depth {
            self.line(&format!("st %l{i}, [%sp + {}]", base + 4 * i as u32));
        }
    }

    fn reload_eval_stack(&mut self) {
        let base = self.spill_base();
        for i in 0..self.depth {
            self.line(&format!("ld [%sp + {}], %l{i}", base + 4 * i as u32));
        }
    }

    /// Evaluates all arguments, leaving them on the eval stack. Returns
    /// their register names in order.
    fn eval_args(&mut self, args: &[Expr]) -> Result<Vec<String>, CcError> {
        let mut regs = Vec::new();
        for a in args {
            regs.push(self.expr(a)?);
        }
        Ok(regs)
    }

    /// Evaluates an expression; the result lands in a fresh eval register
    /// whose name is returned (caller pops it).
    fn expr(&mut self, e: &Expr) -> Result<String, CcError> {
        match e {
            Expr::Num(n) => {
                let r = self.push()?;
                if eel_isa::Src2::fits_simm13(*n) {
                    self.line(&format!("mov {n}, {r}"));
                } else {
                    self.line(&format!("set {}, {r}", *n as u32));
                }
                Ok(r)
            }
            Expr::Var(name) => {
                if let Some(&slot) = self.locals.get(name) {
                    let r = self.push()?;
                    self.line(&format!("ld [%sp + {slot}], {r}"));
                    Ok(r)
                } else if self.program.global(name).is_some() {
                    self.expr(&Expr::Global(name.clone()))
                } else {
                    Err(self.err(format!("undefined variable {name:?}")))
                }
            }
            Expr::Global(name) => {
                let g = self
                    .program
                    .global(name)
                    .ok_or_else(|| self.err(format!("undefined global {name:?}")))?;
                if g.count != 1 {
                    return Err(self.err(format!("{name:?} is an array; index it")));
                }
                let r = self.push()?;
                let sym = mangle_global(name);
                self.line(&format!("sethi %hi({sym}), {r}"));
                self.line(&format!("ld [%lo({sym}) + {r}], {r}"));
                Ok(r)
            }
            Expr::Index(name, index) => {
                let g = self
                    .program
                    .global(name)
                    .ok_or_else(|| self.err(format!("undefined array {name:?}")))?;
                if g.count == 1 {
                    return Err(self.err(format!("{name:?} is not an array")));
                }
                let ri = self.expr(index)?;
                let rt = self.push()?;
                self.line(&format!("sll {ri}, 2, {ri}"));
                self.line(&format!("set {}, {rt}", mangle_global(name)));
                self.line(&format!("ld [{rt} + {ri}], {ri}"));
                self.pop(); // rt
                Ok(ri)
            }
            Expr::AddrOf(name) => {
                let r = self.push()?;
                if self.program.function(name).is_some() {
                    self.line(&format!("set {name}, {r}"));
                } else if self.program.global(name).is_some() {
                    self.line(&format!("set {}, {r}", mangle_global(name)));
                } else {
                    return Err(self.err(format!("cannot take address of {name:?}")));
                }
                Ok(r)
            }
            Expr::Call(name, args) => {
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| self.err(format!("undefined function {name:?}")))?;
                if f.params.len() != args.len() {
                    return Err(self.err(format!(
                        "arity mismatch: {name} takes {} argument(s), got {}",
                        f.params.len(),
                        args.len()
                    )));
                }
                let regs = self.eval_args(args)?;
                // Arg registers are the top |args| eval slots; everything
                // below must survive the call.
                for _ in &regs {
                    self.pop();
                }
                self.spill_eval_stack();
                // The just-popped registers still hold the argument values
                // (nothing has clobbered them).
                for (i, r) in regs.iter().enumerate() {
                    self.line(&format!("mov {r}, %o{i}"));
                }
                self.line(&format!("call {name}"));
                self.line("nop");
                self.reload_eval_stack();
                let r = self.push()?;
                self.line(&format!("mov %o0, {r}"));
                Ok(r)
            }
            Expr::CallPtr(target, args) => {
                let rt = self.expr(target)?;
                let regs = self.eval_args(args)?;
                for _ in &regs {
                    self.pop();
                }
                self.pop(); // rt
                self.spill_eval_stack();
                self.line(&format!("mov {rt}, %g4"));
                for (i, r) in regs.iter().enumerate() {
                    self.line(&format!("mov {r}, %o{i}"));
                }
                self.line("jmpl %g4, %o7"); // indirect call
                self.line("nop");
                self.reload_eval_stack();
                let r = self.push()?;
                self.line(&format!("mov %o0, {r}"));
                Ok(r)
            }
            Expr::Neg(inner) => {
                let r = self.expr(inner)?;
                self.line(&format!("sub %g0, {r}, {r}"));
                Ok(r)
            }
            Expr::Not(inner) => {
                let r = self.expr(inner)?;
                self.bool_from_cmp(&r, "0", "be");
                Ok(r)
            }
            Expr::Bin(op, lhs, rhs) => self.binop(*op, lhs, rhs),
        }
    }

    /// The SPARC boolean idiom: `r = (r <cmp-op> rhs) ? 1 : 0` using an
    /// annulled branch whose delay slot is meaningful.
    fn bool_from_cmp(&mut self, r: &str, rhs: &str, bcc: &str) {
        let l = self.fresh("cc");
        self.line(&format!("cmp {r}, {rhs}"));
        self.line(&format!("{bcc},a {l}"));
        self.line(&format!("mov 1, {r}")); // delay: executes iff taken
        self.line(&format!("mov 0, {r}")); // fall-through (delay annulled)
        self.raw(&format!("{l}:"));
    }

    fn binop(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<String, CcError> {
        // Short-circuit forms first.
        match op {
            BinOp::LogAnd => {
                let lend = self.fresh("and");
                let r = self.expr(lhs)?;
                self.line(&format!("cmp {r}, 0"));
                self.line(&format!("be,a {lend}"));
                self.line(&format!("mov 0, {r}")); // taken (lhs==0) → result 0
                self.pop();
                let r2 = self.expr(rhs)?;
                debug_assert_eq!(r, r2, "eval stack discipline");
                self.bool_from_cmp(&r2, "0", "bne");
                self.raw(&format!("{lend}:"));
                return Ok(r2);
            }
            BinOp::LogOr => {
                let lend = self.fresh("or");
                let r = self.expr(lhs)?;
                self.line(&format!("cmp {r}, 0"));
                self.line(&format!("bne,a {lend}"));
                self.line(&format!("mov 1, {r}"));
                self.pop();
                let r2 = self.expr(rhs)?;
                debug_assert_eq!(r, r2, "eval stack discipline");
                self.bool_from_cmp(&r2, "0", "bne");
                self.raw(&format!("{lend}:"));
                return Ok(r2);
            }
            _ => {}
        }

        let ra = self.expr(lhs)?;
        let rb = self.expr(rhs)?;
        match op {
            BinOp::Add => self.line(&format!("add {ra}, {rb}, {ra}")),
            BinOp::Sub => self.line(&format!("sub {ra}, {rb}, {ra}")),
            BinOp::Mul => self.line(&format!("smul {ra}, {rb}, {ra}")),
            BinOp::Div => {
                // sdiv consumes %y:rs1 as a 64-bit dividend; sign-extend.
                self.line(&format!("sra {ra}, 31, %g4"));
                self.line("wr %g4, %g0, %y");
                self.line(&format!("sdiv {ra}, {rb}, {ra}"));
            }
            BinOp::Rem => {
                self.line(&format!("sra {ra}, 31, %g4"));
                self.line("wr %g4, %g0, %y");
                self.line(&format!("sdiv {ra}, {rb}, %g4"));
                self.line(&format!("smul %g4, {rb}, %g4"));
                self.line(&format!("sub {ra}, %g4, {ra}"));
            }
            BinOp::And => self.line(&format!("and {ra}, {rb}, {ra}")),
            BinOp::Or => self.line(&format!("or {ra}, {rb}, {ra}")),
            BinOp::Xor => self.line(&format!("xor {ra}, {rb}, {ra}")),
            BinOp::Shl => self.line(&format!("sll {ra}, {rb}, {ra}")),
            BinOp::Shr => self.line(&format!("sra {ra}, {rb}, {ra}")),
            BinOp::Eq => self.bool_from_cmp(&ra, &rb, "be"),
            BinOp::Ne => self.bool_from_cmp(&ra, &rb, "bne"),
            BinOp::Lt => self.bool_from_cmp(&ra, &rb, "bl"),
            BinOp::Le => self.bool_from_cmp(&ra, &rb, "ble"),
            BinOp::Gt => self.bool_from_cmp(&ra, &rb, "bg"),
            BinOp::Ge => self.bool_from_cmp(&ra, &rb, "bge"),
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
        }
        self.pop(); // rb
        Ok(ra)
    }

    /// Evaluates `cond` and branches to `target` when it is zero.
    fn branch_if_false(&mut self, cond: &Expr, target: &str) -> Result<(), CcError> {
        let r = self.expr(cond)?;
        self.line(&format!("cmp {r}, 0"));
        self.line(&format!("be {target}"));
        self.line("nop");
        self.pop();
        Ok(())
    }
}

/// Globals get a `G_` prefix so a global named like a function cannot
/// collide in the assembler's flat namespace.
fn mangle_global(name: &str) -> String {
    format!("G_{name}")
}

/// Pre-scans a body for `var` declarations (Wisc is function-scoped).
fn collect_vars(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Var(name, _) if !out.contains(name) => {
                out.push(name.clone());
            }
            Stmt::If(_, a, b) => {
                collect_vars(a, out);
                collect_vars(b, out);
            }
            Stmt::While(_, b) => collect_vars(b, out),
            Stmt::For(init, _, step, b) => {
                collect_vars(std::slice::from_ref(init), out);
                collect_vars(std::slice::from_ref(step), out);
                collect_vars(b, out);
            }
            Stmt::Switch(_, cases, default) => {
                for (_, b) in cases {
                    collect_vars(b, out);
                }
                collect_vars(default, out);
            }
            _ => {}
        }
    }
}

/// Post-pass over assembly lines: moves an eligible preceding instruction
/// into a `nop` delay slot (calls, `ba`, and condition-code-safe
/// conditional branches). Mirrors what optimizing SPARC compilers did, and
/// gives EEL's CFG normalization real filled slots to handle.
pub fn fill_delay_slots(asm: &str) -> String {
    fn mnemonic(line: &str) -> &str {
        line.split_whitespace().next().unwrap_or("")
    }
    fn is_cti(line: &str) -> bool {
        let m = mnemonic(line);
        (m.starts_with('b') && !m.starts_with("byte"))
            || m.starts_with("fb")
            || m.starts_with('t')
                && eel_isa::Cond::ALL
                    .iter()
                    .any(|c| format!("t{}", c.suffix()) == m)
            || matches!(m, "call" | "jmp" | "jmpl" | "ret" | "retl")
    }
    /// A "plain" line is an instruction that is neither a label, a
    /// directive, nor a control transfer.
    fn is_plain_insn(line: &str) -> bool {
        !line.is_empty() && !line.ends_with(':') && !line.starts_with('.') && !is_cti(line)
    }

    let lines: Vec<&str> = asm.lines().collect();
    let mut out: Vec<String> = Vec::with_capacity(lines.len());
    let mut i = 0;
    while i < lines.len() {
        let cand = lines[i].trim();
        // The candidate may move only if its own predecessor is a plain
        // instruction: not a label (the candidate would be a branch
        // target), not a CTI (the candidate would be a delay slot), and
        // not a directive (alignment unknown).
        let before_ok = out.last().map(|l| is_plain_insn(l.trim())).unwrap_or(false);
        if before_ok && is_plain_insn(cand) && cand != "nop" && i + 2 < lines.len() {
            let cti = lines[i + 1].trim();
            let slot = lines[i + 2].trim();
            if slot == "nop" && is_fillable_pair(cand, cti) {
                out.push(format!("    {cti}"));
                out.push(format!("    {cand}"));
                i += 3;
                continue;
            }
        }
        out.push(lines[i].to_string());
        i += 1;
    }
    out.join("\n") + "\n"
}

/// May the plain instruction `prev` move into `cti`'s delay slot?
fn is_fillable_pair(prev: &str, cti: &str) -> bool {
    let prev_mnem = prev.split_whitespace().next().unwrap_or("");
    let cti_mnem = cti.split_whitespace().next().unwrap_or("");
    match cti_mnem {
        // The call's delay slot runs before the callee; argument setup is
        // the classic use. %o7 is written by the call itself.
        "call" => !prev.contains("%o7"),
        "ba" => true,
        m if m.starts_with('b') && !m.contains(",a") && m != "byte" => {
            // Conditional branch: prev executes on both paths either way,
            // but must not change the tested condition codes.
            !(prev_mnem == "cmp" || prev_mnem == "tst" || prev_mnem.ends_with("cc"))
        }
        _ => false,
    }
}
