//! A direct AST interpreter for Wisc.
//!
//! This is the compiler's differential-testing oracle: progen workloads
//! are executed both here and as compiled code under `eel-emu`, and must
//! produce identical exit codes and output. The arithmetic mirrors the
//! target ISA exactly (wrapping ops, SPARC `sdiv` clamping on overflow).

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Reference to an unknown name.
    Undefined(String),
    /// Division by zero (the compiled program would trap).
    DivZero,
    /// Array index outside the declared bounds (compiled code has no
    /// bounds check; workloads must stay in bounds for the oracle to be
    /// meaningful).
    OutOfBounds {
        /// Array name.
        name: String,
        /// Offending index.
        index: i32,
    },
    /// An indirect call through a value that is not a function address.
    BadFunPtr(i32),
    /// Wrong number of arguments.
    Arity(String),
    /// Evaluation budget exhausted.
    StepLimit,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Undefined(n) => write!(f, "undefined name {n:?}"),
            InterpError::DivZero => write!(f, "division by zero"),
            InterpError::OutOfBounds { name, index } => {
                write!(f, "index {index} out of bounds for {name:?}")
            }
            InterpError::BadFunPtr(v) => write!(f, "call through non-function value {v}"),
            InterpError::Arity(n) => write!(f, "arity mismatch calling {n:?}"),
            InterpError::StepLimit => write!(f, "interpreter step limit exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpOutcome {
    /// `main`'s return value (the process exit code).
    pub exit_code: i32,
    /// Everything `print` produced, newline-separated (matching the
    /// compiled `__print_int` format).
    pub output: String,
}

/// Synthetic base address for function-pointer tokens.
const FN_TOKEN_BASE: i32 = 0x1000_0000;

struct Interp<'a> {
    program: &'a Program,
    globals: HashMap<String, Vec<i32>>,
    output: String,
    budget: u64,
}

enum Flow {
    Normal,
    Return(i32),
    Break,
    Continue,
}

/// Runs a program's `main` with the given evaluation budget (a count of
/// statements + expression nodes).
///
/// # Errors
///
/// Any [`InterpError`]; see its variants.
pub fn interpret(program: &Program, budget: u64) -> Result<InterpOutcome, InterpError> {
    let mut interp = Interp {
        program,
        globals: program
            .globals
            .iter()
            .map(|g| {
                let mut v = vec![0i32; g.count as usize];
                if g.count == 1 {
                    v[0] = g.init;
                }
                (g.name.clone(), v)
            })
            .collect(),
        output: String::new(),
        budget,
    };
    let main = program
        .function("main")
        .ok_or_else(|| InterpError::Undefined("main".into()))?;
    if !main.params.is_empty() {
        return Err(InterpError::Arity("main".into()));
    }
    let exit_code = interp.call(main, &[])?;
    Ok(InterpOutcome {
        exit_code,
        output: interp.output,
    })
}

impl<'a> Interp<'a> {
    fn tick(&mut self) -> Result<(), InterpError> {
        if self.budget == 0 {
            return Err(InterpError::StepLimit);
        }
        self.budget -= 1;
        Ok(())
    }

    fn call(&mut self, f: &Function, args: &[i32]) -> Result<i32, InterpError> {
        if args.len() != f.params.len() {
            return Err(InterpError::Arity(f.name.clone()));
        }
        let mut locals: HashMap<String, i32> =
            f.params.iter().cloned().zip(args.iter().copied()).collect();
        match self.block(&f.body, &mut locals)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(0), // implicit `return 0`
        }
    }

    fn block(
        &mut self,
        stmts: &[Stmt],
        locals: &mut HashMap<String, i32>,
    ) -> Result<Flow, InterpError> {
        for s in stmts {
            match self.stmt(s, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt, locals: &mut HashMap<String, i32>) -> Result<Flow, InterpError> {
        self.tick()?;
        match s {
            Stmt::Var(name, init) => {
                let v = match init {
                    Some(e) => self.expr(e, locals)?,
                    None => 0,
                };
                locals.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(lv, e) => {
                let v = self.expr(e, locals)?;
                match lv {
                    LValue::Var(name) => {
                        if locals.contains_key(name) {
                            locals.insert(name.clone(), v);
                        } else if let Some(cells) = self.globals.get_mut(name) {
                            cells[0] = v;
                        } else {
                            return Err(InterpError::Undefined(name.clone()));
                        }
                    }
                    LValue::Global(name) => {
                        self.globals
                            .get_mut(name)
                            .ok_or_else(|| InterpError::Undefined(name.clone()))?[0] = v;
                    }
                    LValue::Index(name, idx) => {
                        let i = self.expr(idx, locals)?;
                        let cells = self
                            .globals
                            .get_mut(name)
                            .ok_or_else(|| InterpError::Undefined(name.clone()))?;
                        let slot =
                            cells
                                .get_mut(i.max(0) as usize)
                                .ok_or(InterpError::OutOfBounds {
                                    name: name.clone(),
                                    index: i,
                                })?;
                        if i < 0 {
                            return Err(InterpError::OutOfBounds {
                                name: name.clone(),
                                index: i,
                            });
                        }
                        *slot = v;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.expr(cond, locals)? != 0 {
                    self.block(then, locals)
                } else {
                    self.block(els, locals)
                }
            }
            Stmt::While(cond, body) => {
                while self.expr(cond, locals)? != 0 {
                    self.tick()?;
                    match self.block(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                self.stmt(init, locals)?;
                while self.expr(cond, locals)? != 0 {
                    self.tick()?;
                    match self.block(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.stmt(step, locals)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch(scrutinee, cases, default) => {
                let v = self.expr(scrutinee, locals)?;
                for (cv, body) in cases {
                    if *cv == v {
                        return self.block(body, locals);
                    }
                }
                self.block(default, locals)
            }
            Stmt::Return(e) => Ok(Flow::Return(self.expr(e, locals)?)),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Print(e) => {
                let v = self.expr(e, locals)?;
                self.output.push_str(&format!("{v}\n"));
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.expr(e, locals)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn expr(&mut self, e: &Expr, locals: &mut HashMap<String, i32>) -> Result<i32, InterpError> {
        self.tick()?;
        match e {
            Expr::Num(n) => Ok(*n),
            Expr::Var(name) => {
                if let Some(&v) = locals.get(name) {
                    Ok(v)
                } else if let Some(cells) = self.globals.get(name) {
                    Ok(cells[0])
                } else {
                    Err(InterpError::Undefined(name.clone()))
                }
            }
            Expr::Global(name) => self
                .globals
                .get(name)
                .map(|c| c[0])
                .ok_or_else(|| InterpError::Undefined(name.clone())),
            Expr::Index(name, idx) => {
                let i = self.expr(idx, locals)?;
                let cells = self
                    .globals
                    .get(name)
                    .ok_or_else(|| InterpError::Undefined(name.clone()))?;
                if i < 0 || i as usize >= cells.len() {
                    return Err(InterpError::OutOfBounds {
                        name: name.clone(),
                        index: i,
                    });
                }
                Ok(cells[i as usize])
            }
            Expr::AddrOf(name) => {
                if let Some(pos) = self.program.functions.iter().position(|f| f.name == *name) {
                    Ok(FN_TOKEN_BASE + pos as i32)
                } else if self.globals.contains_key(name) {
                    // Global addresses are opaque tokens; the language has
                    // no way to dereference them, only compare/pass them.
                    Ok(FN_TOKEN_BASE + 0x0800_0000 + self.global_index(name))
                } else {
                    Err(InterpError::Undefined(name.clone()))
                }
            }
            Expr::Call(name, args) => {
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| InterpError::Undefined(name.clone()))?
                    .clone();
                let vals = self.eval_args(args, locals)?;
                self.call(&f, &vals)
            }
            Expr::CallPtr(target, args) => {
                let t = self.expr(target, locals)?;
                let idx = t - FN_TOKEN_BASE;
                if idx < 0 || idx as usize >= self.program.functions.len() {
                    return Err(InterpError::BadFunPtr(t));
                }
                let f = self.program.functions[idx as usize].clone();
                let vals = self.eval_args(args, locals)?;
                self.call(&f, &vals)
            }
            Expr::Neg(inner) => Ok(self.expr(inner, locals)?.wrapping_neg()),
            Expr::Not(inner) => Ok((self.expr(inner, locals)? == 0) as i32),
            Expr::Bin(op, lhs, rhs) => {
                // Short-circuit forms must not evaluate rhs eagerly.
                match op {
                    BinOp::LogAnd => {
                        if self.expr(lhs, locals)? == 0 {
                            return Ok(0);
                        }
                        return Ok((self.expr(rhs, locals)? != 0) as i32);
                    }
                    BinOp::LogOr => {
                        if self.expr(lhs, locals)? != 0 {
                            return Ok(1);
                        }
                        return Ok((self.expr(rhs, locals)? != 0) as i32);
                    }
                    _ => {}
                }
                let a = self.expr(lhs, locals)?;
                let b = self.expr(rhs, locals)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => sdiv(a, b)?,
                    BinOp::Rem => {
                        // Mirror codegen: q = sdiv(a,b); r = a - q*b.
                        let q = sdiv(a, b)?;
                        a.wrapping_sub(q.wrapping_mul(b))
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::Eq => (a == b) as i32,
                    BinOp::Ne => (a != b) as i32,
                    BinOp::Lt => (a < b) as i32,
                    BinOp::Le => (a <= b) as i32,
                    BinOp::Gt => (a > b) as i32,
                    BinOp::Ge => (a >= b) as i32,
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                })
            }
        }
    }

    fn eval_args(
        &mut self,
        args: &[Expr],
        locals: &mut HashMap<String, i32>,
    ) -> Result<Vec<i32>, InterpError> {
        args.iter().map(|a| self.expr(a, locals)).collect()
    }

    fn global_index(&self, name: &str) -> i32 {
        self.program
            .globals
            .iter()
            .position(|g| g.name == name)
            .unwrap_or(0) as i32
    }
}

/// SPARC `sdiv` semantics: 64-bit dividend (sign-extended here), quotient
/// clamped to the 32-bit range on overflow.
fn sdiv(a: i32, b: i32) -> Result<i32, InterpError> {
    if b == 0 {
        return Err(InterpError::DivZero);
    }
    let q = (a as i64) / (b as i64);
    Ok(q.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn run(src: &str) -> InterpOutcome {
        interpret(&parse(src).unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_control() {
        let out = run(r#"
            fn main() {
                var total = 0;
                var i;
                for (i = 1; i <= 10; i = i + 1) { total = total + i; }
                print(total);
                return total;
            }
        "#);
        assert_eq!(out.exit_code, 55);
        assert_eq!(out.output, "55\n");
    }

    #[test]
    fn switch_and_globals() {
        let out = run(r#"
            global hits[4];
            fn main() {
                var i;
                for (i = 0; i < 8; i = i + 1) {
                    switch (i % 4) {
                        case 0: { hits[0] = hits[0] + 1; }
                        case 1: { hits[1] = hits[1] + 1; }
                        case 2: { hits[2] = hits[2] + 1; }
                        default: { hits[3] = hits[3] + 1; }
                    }
                }
                return hits[0] * 1000 + hits[3];
            }
        "#);
        assert_eq!(out.exit_code, 2002);
    }

    #[test]
    fn function_pointers() {
        let out = run(r#"
            fn double(x) { return x * 2; }
            fn triple(x) { return x * 3; }
            fn apply(f, x) { return (*f)(x); }
            fn main() { return apply(&double, 10) + apply(&triple, 10); }
        "#);
        assert_eq!(out.exit_code, 50);
    }

    #[test]
    fn sdiv_clamps_like_hardware() {
        let out = run("fn main() { return (0 - 2147483647 - 1) / (0 - 1); }");
        assert_eq!(out.exit_code, i32::MAX);
    }

    #[test]
    fn div_zero_is_an_error() {
        let program = parse("fn main() { return 1 / 0; }").unwrap();
        assert_eq!(interpret(&program, 1000), Err(InterpError::DivZero));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let program = parse("fn main() { while (1) { } return 0; }").unwrap();
        assert_eq!(interpret(&program, 1000), Err(InterpError::StepLimit));
    }

    #[test]
    fn out_of_bounds_detected() {
        let program = parse("global a[2]; fn main() { return a[5]; }").unwrap();
        assert!(matches!(
            interpret(&program, 1000),
            Err(InterpError::OutOfBounds { .. })
        ));
    }
}
