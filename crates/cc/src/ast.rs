//! Abstract syntax for Wisc, the workload language.
//!
//! Wisc is a deliberately C-shaped language — everything is a 32-bit
//! integer — whose compiler emits the code idioms the EEL paper's analyses
//! confront: `switch` statements become text-segment dispatch tables,
//! comparisons become annulled-branch sequences, calls fill delay slots,
//! and (in SunPro personality) tail calls become frame-popping indirect
//! jumps.

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed remainder)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Variable or parameter reference.
    Var(String),
    /// Global scalar reference.
    Global(String),
    /// Global array element: `name[index]`.
    Index(String, Box<Expr>),
    /// `&name` — the address of a function or global.
    AddrOf(String),
    /// Direct call: `f(a, b)`.
    Call(String, Vec<Expr>),
    /// Indirect call through a computed address: `(*e)(a, b)`.
    CallPtr(Box<Expr>, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not (`!e` — yields 0/1).
    Not(Box<Expr>),
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var x;` / `var x = e;`
    Var(String, Option<Expr>),
    /// Assignment to a variable, global, or array element.
    Assign(LValue, Expr),
    /// `if (e) {..} else {..}`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (e) {..}`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) {..}` — desugared by the parser into the
    /// equivalent `while`, so codegen never sees it.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `switch (e) { case k: {..} ... default: {..} }`. Cases must be
    /// dense-ish; codegen builds a dispatch table over `0..=max`.
    Switch(Expr, Vec<(i32, Vec<Stmt>)>, Vec<Stmt>),
    /// `return e;` (or `return;` ≡ `return 0;`).
    Return(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `print(e);` — writes the decimal value and a newline.
    Print(Expr),
    /// An expression evaluated for effect (usually a call).
    Expr(Expr),
}

/// Assignment targets.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A local variable or parameter.
    Var(String),
    /// A global scalar.
    Global(String),
    /// A global array element.
    Index(String, Expr),
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (≤ 6: they arrive in `%o0–%o5`).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A global declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Element count: 1 for scalars, N for `global name[N];`.
    pub count: u32,
    /// Initializer for scalars (arrays are zero-initialized).
    pub init: i32,
}

/// A whole program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Global variables/arrays.
    pub globals: Vec<GlobalDecl>,
    /// Functions; must include `main`.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}
