//! Tokenizer for Wisc.

use crate::CcError;
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Integer literal.
    Num(i32),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator, e.g. `"+"`, `"<<"`, `"&&"`, `"("`.
    Punct(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ":", ",",
    "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!",
];

/// Tokenizes Wisc source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`CcError`] for unknown characters or malformed numbers.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, CcError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split("//").next().unwrap_or("");
        let mut rest = text;
        'outer: while !rest.trim_start().is_empty() {
            rest = rest.trim_start();
            let c = rest.chars().next().unwrap();
            if c.is_ascii_digit() {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_alphanumeric())
                    .unwrap_or(rest.len());
                let token = &rest[..end];
                let value = if let Some(hex) = token.strip_prefix("0x") {
                    i64::from_str_radix(hex, 16)
                } else {
                    token.parse()
                }
                .map_err(|_| CcError::syntax(line, format!("bad number {token:?}")))?;
                if value > u32::MAX as i64 {
                    return Err(CcError::syntax(
                        line,
                        format!("number {token} out of range"),
                    ));
                }
                out.push(SpannedTok {
                    tok: Tok::Num(value as u32 as i32),
                    line,
                });
                rest = &rest[end..];
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
                    .unwrap_or(rest.len());
                out.push(SpannedTok {
                    tok: Tok::Ident(rest[..end].to_string()),
                    line,
                });
                rest = &rest[end..];
                continue;
            }
            for p in PUNCTS {
                if let Some(tail) = rest.strip_prefix(p) {
                    out.push(SpannedTok {
                        tok: Tok::Punct(p),
                        line,
                    });
                    rest = tail;
                    continue 'outer;
                }
            }
            return Err(CcError::syntax(line, format!("unexpected character {c:?}")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            toks("x = 10 + 0x1f; // comment"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Num(10),
                Tok::Punct("+"),
                Tok::Num(31),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            toks("a<<b <= c && d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<"),
                Tok::Ident("b".into()),
                Tok::Punct("<="),
                Tok::Ident("c".into()),
                Tok::Punct("&&"),
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn line_numbers() {
        let spanned = lex("a\nb\n\nc").unwrap();
        assert_eq!(
            spanned.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("a @ b").is_err());
        assert!(lex("0xzz").is_err());
        assert!(lex("99999999999").is_err());
    }
}
