//! # eel-cc: the Wisc compiler
//!
//! Compiles **Wisc**, a small C-like language (32-bit integers, functions,
//! globals and global arrays, `if`/`while`/`for`/`switch`, function
//! pointers), into WEF executables for the EEL reproduction.
//!
//! Its purpose is to stand in for the gcc / SunPro compilers whose output
//! the paper analyzed: the generated code exhibits the same idioms EEL's
//! analyses confront — text-segment dispatch tables for `switch`, annulled
//! branch delay slots, filled `call`/`ba` delay slots, and (with
//! [`Personality::SunPro`]) frame-popping tail calls that produce
//! *unanalyzable* indirect jumps (§3.3 of the paper: all 138 unanalyzable
//! Solaris jumps came from this optimization).
//!
//! The crate also contains a direct AST [`interp`]reter used as a
//! differential-testing oracle: compiled programs run under `eel-emu` must
//! agree with it exactly.
//!
//! ## Example
//!
//! ```
//! use eel_cc::{compile_str, Options};
//!
//! let image = compile_str(
//!     "fn main() { var i; var t = 0;
//!        for (i = 0; i < 5; i = i + 1) { t = t + i; }
//!        return t; }",
//!     &Options::default(),
//! )?;
//! let outcome = eel_emu::run_image(&image)?;
//! assert_eq!(outcome.exit_code, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
mod codegen;
pub mod interp;
mod lex;
mod parse;

pub use interp::{interpret, InterpError, InterpOutcome};
pub use parse::parse;

use eel_exe::Image;
use std::fmt;

/// Compiler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcError {
    /// Lexical or syntactic problem at a source line.
    Syntax {
        /// 1-based line (0 when unknown).
        line: usize,
        /// Description.
        message: String,
    },
    /// A name-resolution or typing problem.
    Semantic(String),
    /// The generated assembly failed to assemble (a compiler bug; surfaced
    /// rather than panicking so fuzzing can catch it).
    Asm(String),
}

impl CcError {
    pub(crate) fn syntax(line: usize, message: String) -> CcError {
        CcError::Syntax { line, message }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            CcError::Semantic(m) => write!(f, "semantic error: {m}"),
            CcError::Asm(m) => write!(f, "internal assembly error: {m}"),
        }
    }
}

impl std::error::Error for CcError {}

/// Which real compiler's code shape to imitate (paper §3.3's two measured
/// configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Personality {
    /// gcc 2.6.2-like: returns are plain `ret`; every indirect jump is a
    /// dispatch table (the paper found 0 of 1,325 unanalyzable).
    #[default]
    Gcc,
    /// SunPro sc3.0.1-like: `return f(...)` pops the frame and jumps,
    /// reloading the target from its stack home — unanalyzable by slicing
    /// (the paper found 138 of 1,244, all from this idiom).
    SunPro,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Code-shape personality.
    pub personality: Personality,
    /// Run the delay-slot-filling peephole (on by default; turning it off
    /// models unoptimized code and is used by the folding ablation).
    pub fill_delay_slots: bool,
    /// Strip the symbol table from the output image.
    pub strip: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            personality: Personality::Gcc,
            fill_delay_slots: true,
            strip: false,
        }
    }
}

/// Compiles Wisc source to a WEF image.
///
/// # Errors
///
/// Returns [`CcError`] for syntax, semantic, or internal assembly errors.
pub fn compile_str(source: &str, options: &Options) -> Result<Image, CcError> {
    let asm = compile_to_asm(source, options)?;
    let mut image =
        eel_asm::assemble(&asm).map_err(|e| CcError::Asm(format!("{e}\n--- asm ---\n{asm}")))?;
    if options.strip {
        image.strip();
    }
    Ok(image)
}

/// Compiles Wisc source to textual assembly (exposed for debugging, tests,
/// and the experiment reports).
///
/// # Errors
///
/// See [`compile_str`].
pub fn compile_to_asm(source: &str, options: &Options) -> Result<String, CcError> {
    let program = parse(source)?;
    compile_ast_to_asm(&program, options)
}

/// Compiles an already-parsed program to assembly.
///
/// # Errors
///
/// See [`compile_str`].
pub fn compile_ast_to_asm(program: &ast::Program, options: &Options) -> Result<String, CcError> {
    let asm = codegen::generate(program, options)?;
    Ok(if options.fill_delay_slots {
        codegen::fill_delay_slots(&asm)
    } else {
        asm
    })
}

/// Compiles an already-parsed program to an image.
///
/// # Errors
///
/// See [`compile_str`].
pub fn compile_ast(program: &ast::Program, options: &Options) -> Result<Image, CcError> {
    let asm = compile_ast_to_asm(program, options)?;
    let mut image =
        eel_asm::assemble(&asm).map_err(|e| CcError::Asm(format!("{e}\n--- asm ---\n{asm}")))?;
    if options.strip {
        image.strip();
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, options: &Options) -> eel_emu::Outcome {
        let image = compile_str(src, options).expect("compile failed");
        eel_emu::run_image(&image).expect("run failed")
    }

    /// Compile + emulate, and check against the interpreter oracle.
    fn check(src: &str) {
        let program = parse(src).unwrap();
        let oracle = interpret(&program, 50_000_000).expect("interp failed");
        for personality in [Personality::Gcc, Personality::SunPro] {
            for fill in [true, false] {
                let options = Options {
                    personality,
                    fill_delay_slots: fill,
                    strip: false,
                };
                let out = run(src, &options);
                assert_eq!(
                    out.exit_code, oracle.exit_code as u32,
                    "exit code mismatch ({personality:?}, fill={fill})"
                );
                assert_eq!(
                    out.output_str(),
                    oracle.output,
                    "output mismatch ({personality:?}, fill={fill})"
                );
            }
        }
    }

    #[test]
    fn minimal() {
        check("fn main() { return 42; }");
    }

    #[test]
    fn arithmetic() {
        check(
            r#"fn main() {
                var a = 7; var b = 3;
                print(a + b); print(a - b); print(a * b); print(a / b);
                print(a % b); print(a & b); print(a | b); print(a ^ b);
                print(a << b); print(a >> 1); print(-a); print(!a); print(!0);
                return (a + b) * 100 + a % b;
            }"#,
        );
    }

    #[test]
    fn negative_printing() {
        check("fn main() { print(0 - 12345); print(0); return 0; }");
    }

    #[test]
    fn comparisons_produce_booleans() {
        check(
            r#"fn main() {
                var x = 5; var y = 9;
                return (x < y) * 100000 + (x > y) * 10000 + (x == 5) * 1000
                     + (y != 9) * 100 + (x <= 5) * 10 + (y >= 10);
            }"#,
        );
    }

    #[test]
    fn short_circuit() {
        // The right operand must not run when short-circuited (it would
        // divide by zero).
        check(
            r#"
            global trap;
            fn boom() { trap = 1 / 0; return 1; }
            fn main() {
                var a = 0 && boom();
                var b = 1 || boom();
                return a * 10 + b;
            }"#,
        );
    }

    #[test]
    fn loops_and_break_continue() {
        check(
            r#"fn main() {
                var total = 0; var i = 0;
                while (1) {
                    i = i + 1;
                    if (i > 20) { break; }
                    if (i % 3 == 0) { continue; }
                    total = total + i;
                }
                for (i = 0; i < 5; i = i + 1) { total = total * 2; }
                return total;
            }"#,
        );
    }

    #[test]
    fn dense_switch_uses_jump_table() {
        let src = r#"
            fn classify(x) {
                switch (x) {
                    case 0: { return 100; }
                    case 1: { return 101; }
                    case 2: { return 102; }
                    case 3: { return 103; }
                    case 5: { return 105; }
                    default: { return 999; }
                }
            }
            fn main() {
                var i; var acc = 0;
                for (i = 0 - 2; i < 8; i = i + 1) { acc = acc + classify(i); }
                return acc % 100000;
            }"#;
        check(src);
        // The gcc-shaped output must actually contain a dispatch table.
        let asm = compile_to_asm(src, &Options::default()).unwrap();
        assert!(asm.contains("swtbl"), "expected a jump table:\n{asm}");
        assert!(asm.contains("jmp %l"), "expected an indirect jump:\n{asm}");
    }

    #[test]
    fn sparse_switch_uses_compare_chain() {
        let src = r#"
            fn main() {
                switch (700) {
                    case 1: { return 1; }
                    case 700: { return 2; }
                    default: { return 3; }
                }
            }"#;
        check(src);
        let asm = compile_to_asm(src, &Options::default()).unwrap();
        assert!(
            !asm.contains("swtbl"),
            "sparse switch must not use a table:\n{asm}"
        );
    }

    #[test]
    fn recursion() {
        check(
            r#"
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { print(fib(15)); return fib(10); }"#,
        );
    }

    #[test]
    fn globals_and_arrays() {
        check(
            r#"
            global counter = 5;
            global grid[64];
            fn main() {
                var i;
                for (i = 0; i < 64; i = i + 1) { grid[i] = i * i; }
                for (i = 0; i < 64; i = i + 1) { counter = counter + grid[i] % 7; }
                return counter;
            }"#,
        );
    }

    #[test]
    fn function_pointers_and_indirect_calls() {
        check(
            r#"
            fn double(x) { return x * 2; }
            fn negate(x) { return 0 - x; }
            fn apply(f, x) { return (*f)(x); }
            fn main() {
                var d = &double;
                return apply(d, 21) + apply(&negate, 2);
            }"#,
        );
    }

    #[test]
    fn sunpro_tail_calls_work_and_jump() {
        let src = r#"
            fn helper(x) { return x + 1; }
            fn caller(x) { return helper(x * 2); }
            fn main() { return caller(10); }
        "#;
        check(src);
        let asm = compile_to_asm(
            src,
            &Options {
                personality: Personality::SunPro,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(
            asm.contains("jmp %g4"),
            "expected a frame-popping tail jump:\n{asm}"
        );
    }

    #[test]
    fn sunpro_indirect_tail_calls() {
        check(
            r#"
            fn id(x) { return x; }
            fn via(f, x) { return (*f)(x); }
            fn main() { return via(&id, 77); }"#,
        );
    }

    #[test]
    fn deep_expressions_within_limit() {
        check("fn main() { return ((((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8))) % 97); }");
    }

    #[test]
    fn too_deep_expression_is_an_error() {
        // 9+ live temporaries should be rejected, not miscompiled.
        let mut e = String::from("1");
        for i in 2..12 {
            e = format!("({e} + (1 * {i}))");
        }
        let src = format!("fn main() {{ return {e}; }}");
        match compile_str(&src, &Options::default()) {
            Err(CcError::Semantic(m)) => assert!(m.contains("too deep"), "{m}"),
            Ok(_) => {
                // If it compiled, it must at least be correct.
                check(&src);
            }
            Err(other) => panic!("{other}"),
        }
    }

    #[test]
    fn semantic_errors() {
        for (src, needle) in [
            ("fn f() { return 0; }", "no `main`"),
            ("fn main() { return x; }", "undefined variable"),
            ("fn main() { return f(1); }", "undefined function"),
            ("fn g(a) { return a; } fn main() { return g(); }", "arity"),
            ("global a[4]; fn main() { return a; }", "array"),
            ("global s; fn main() { return s[0]; }", "not an array"),
            ("fn main() { break; }", "outside a loop"),
            ("fn main() { return &nope; }", "address"),
        ] {
            let err = compile_str(src, &Options::default()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{src:?} gave {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn calls_preserve_eval_stack() {
        // A call in the middle of an expression must not clobber the
        // partially evaluated left operand (spill/reload around calls).
        check(
            r#"
            fn seven() { return 7; }
            fn main() { return 100 + seven() * 10 + seven(); }"#,
        );
    }

    #[test]
    fn print_inside_expression_context() {
        check(
            r#"
            fn noisy(x) { print(x); return x; }
            fn main() { return noisy(1) + noisy(2) + noisy(3); }"#,
        );
    }

    #[test]
    fn stripped_output_has_no_symbols() {
        let image = compile_str(
            "fn main() { return 0; }",
            &Options {
                strip: true,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(image.is_stripped());
        assert_eq!(eel_emu::run_image(&image).unwrap().exit_code, 0);
    }

    #[test]
    fn delay_slot_filling_reduces_nops() {
        let src = r#"
            fn work(a, b) { return a * b + a - b; }
            fn main() {
                var i; var t = 0;
                for (i = 0; i < 10; i = i + 1) { t = t + work(i, t); }
                return t;
            }"#;
        let filled = compile_to_asm(src, &Options::default()).unwrap();
        let unfilled = compile_to_asm(
            src,
            &Options {
                fill_delay_slots: false,
                ..Options::default()
            },
        )
        .unwrap();
        let count_nops = |s: &str| s.lines().filter(|l| l.trim() == "nop").count();
        assert!(
            count_nops(&filled) < count_nops(&unfilled),
            "filling should remove nops: {} vs {}",
            count_nops(&filled),
            count_nops(&unfilled)
        );
    }

    #[test]
    fn hardware_division_semantics() {
        check("fn main() { return (0 - 2147483647 - 1) / (0 - 1); }");
        check("fn main() { return (0 - 17) / 5 * 100 + (0 - 17) % 5; }");
    }
}
