//! Differential test for the MIPS description: the analysis surface
//! spawn derives from `mips.spawn` (decode, class, reads/writes, static
//! targets, memory widths) against the *same description's* execute
//! semantics, observed instruction by instruction.
//!
//! The two sides are independently derived artifacts — the analysis
//! walks the semantic AST symbolically (`collect_stmt_regs`,
//! `static_target`), the evaluator interprets it — so disagreement means
//! a bug in one derivation or the other, exactly the property the SPARC
//! suite checks against the handwritten `eel_isa` twin. MIPS has no
//! handwritten twin (that is the point of the port), so the oracle here
//! is observation:
//!
//! * registers that change under `execute` must be in the declared
//!   write set, and loads/stores must match the declared class;
//! * perturbing any register *outside* the declared read set must not
//!   change any observable effect (written registers, stores, next PC);
//! * the observed next PC must obey the declared class and
//!   `static_target` (sequential for computation, taken-or-fallthrough
//!   for branches, a read register for indirect jumps, the link
//!   register getting `pc + 8` when the instruction links).
//!
//! One witness encoding per instruction pattern keeps the table honest:
//! adding a `pat` line to `mips.spawn` fails the coverage assertion
//! until a witness (and therefore a differential run) exists for it.
//! A second test feeds every distinct text word of a progen-generated
//! MIPS image through the same harness, then runs the image end to end
//! under the emulator.

use eel_emu::mips::spawn_machine;
use eel_emu::MipsMachine;
use eel_isa::Memory;
use eel_spawn::{Class, Decoded, Machine, SpawnEvent, SpawnState};
use std::collections::{BTreeSet, HashMap};

const PC: u32 = 0x0001_0000;

/// Memory with every address mapped (zero-filled), recording traffic so
/// the harness can compare effects across runs and check class claims.
#[derive(Default, Clone)]
struct TotalMem {
    bytes: HashMap<u32, u8>,
    loads: u32,
    stores: Vec<(u32, u32, u32)>,
}

impl Memory for TotalMem {
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
        self.loads += 1;
        let mut v = 0u32;
        for k in 0..bytes {
            v = (v << 8) | u32::from(*self.bytes.get(&addr.wrapping_add(k)).unwrap_or(&0));
        }
        Some(v)
    }

    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
        self.stores.push((addr, bytes, value));
        for k in 0..bytes {
            let b = (value >> (8 * (bytes - 1 - k))) as u8;
            self.bytes.insert(addr.wrapping_add(k), b);
        }
        Some(())
    }
}

/// Everything observable about one execution of one instruction.
struct Obs {
    event: SpawnEvent,
    post: SpawnState,
    loads: u32,
    stores: Vec<(u32, u32, u32)>,
}

fn observe(m: &Machine, d: &Decoded<'_>, pre: &SpawnState) -> Obs {
    let mut state = pre.clone();
    let mut mem = TotalMem::default();
    let event = m.execute(d, &mut state, &mut mem).expect("well-formed sem");
    Obs {
        event,
        post: state,
        loads: mem.loads,
        stores: mem.stores,
    }
}

/// Register seed A: distinct, positive, word-aligned values (aligned so
/// indirect-jump targets never fault as misaligned).
fn seed_a() -> SpawnState {
    let mut st = SpawnState::new(PC);
    for j in 1..32 {
        st.r[j] = 0x0100_0000 + (j as u32) * 64;
    }
    st.hi = 0x0200_0000;
    st.lo = 0x0200_0040;
    st
}

/// Register seed B: the comparison operands equal and negative, so
/// branches take the arm seed A falls through (and vice versa).
fn seed_b() -> SpawnState {
    let mut st = seed_a();
    st.r[4] = 0x8000_0040;
    st.r[5] = 0x8000_0040;
    st
}

fn reg_cell(set: &str, i: u32) -> String {
    match set {
        "R" => format!("R[{i}]"),
        other => other.to_string(),
    }
}

/// Cells of `post` that differ from `pre` (R1..R31, HI, LO).
fn changed_cells(pre: &SpawnState, post: &SpawnState) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for j in 1..32 {
        if pre.r[j] != post.r[j] {
            out.insert(format!("R[{j}]"));
        }
    }
    if pre.hi != post.hi {
        out.insert("HI".into());
    }
    if pre.lo != post.lo {
        out.insert("LO".into());
    }
    out
}

/// Runs the full differential battery for one word under one seed and
/// returns the observed next PC (for branch both-arms accounting).
fn check_word(m: &Machine, word: u32, pre: &SpawnState) -> u32 {
    let d = m.decode(word).unwrap_or_else(|| {
        panic!("word {word:#010x} does not decode");
    });
    let name = &d.spec.name;
    let base = observe(m, &d, pre);

    // Events: the only trap gateway is `syscall` (class System); the
    // seeds are aligned and divisors nonzero, so nothing else fires.
    match base.event {
        SpawnEvent::Ok => assert_ne!(d.spec.class, Class::System, "{name}: System must trap"),
        SpawnEvent::Trap(_) => {
            assert_eq!(d.spec.class, Class::System, "{name}: trap from non-System")
        }
        other => panic!("{name}: unexpected event {other:?} for word {word:#010x}"),
    }

    // PC discipline: execute commits pc <- npc and computes the new npc
    // (the delay-slot model), for traps included.
    assert_eq!(base.post.pc, pre.npc, "{name}: pc must advance to npc");
    let seq = pre.npc.wrapping_add(4);
    let next = base.post.npc;

    // Class vs observed control flow vs static_target.
    let target = m.static_target(&d, pre.pc);
    let reads = m.reads(&d);
    match d.spec.class {
        Class::Computation | Class::Load | Class::Store | Class::System => {
            assert_eq!(next, seq, "{name}: non-transfer must fall through");
            assert_eq!(target, None, "{name}: non-transfer has no static target");
        }
        Class::DirectJump => {
            let t = target.unwrap_or_else(|| panic!("{name}: direct jump needs a static target"));
            assert_eq!(next, t, "{name}: direct jump must reach its static target");
        }
        Class::IndirectJump => {
            assert_eq!(target, None, "{name}: indirect jump has no static target");
            assert!(
                reads
                    .iter()
                    .any(|(set, i)| set == "R" && pre.r[*i as usize] == next),
                "{name}: indirect target {next:#x} must come from a declared read register"
            );
        }
        Class::Branch => {
            let t = target.unwrap_or_else(|| panic!("{name}: branch needs a static target"));
            assert!(
                next == seq || next == t,
                "{name}: branch must fall through ({seq:#x}) or take ({t:#x}), got {next:#x}"
            );
        }
        Class::Invalid => panic!("{name}: Invalid class reached execute"),
    }

    // Link discipline: a linking transfer writes pc + 8 (the return
    // point past the delay slot) into exactly one register.
    if d.spec.links {
        let links: Vec<u32> = m
            .writes(&d)
            .iter()
            .filter(|(set, i)| set == "R" && base.post.r[*i as usize] == pre.pc.wrapping_add(8))
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(
            links.len(),
            1,
            "{name}: links must write pc+8 to one register"
        );
    }

    // Write soundness: every changed cell is declared.
    let declared: BTreeSet<String> = m
        .writes(&d)
        .iter()
        .map(|(set, i)| reg_cell(set, *i))
        .collect();
    for cell in changed_cells(pre, &base.post) {
        assert!(
            declared.contains(&cell),
            "{name}: {cell} changed but is not in the declared write set {declared:?}"
        );
    }

    // Memory discipline: loads only from Load-class, stores only from
    // Store-class, and widths match the declared mem_width.
    let width = m.mem_width(&d);
    match d.spec.class {
        Class::Load => {
            assert!(base.loads > 0, "{name}: Load must load");
            assert!(base.stores.is_empty(), "{name}: Load must not store");
            assert!(matches!(width, Some(1 | 2 | 4)), "{name}: width {width:?}");
        }
        Class::Store => {
            assert_eq!(base.loads, 0, "{name}: Store must not load");
            let w = width.unwrap_or_else(|| panic!("{name}: Store needs a width"));
            assert!(
                base.stores.iter().all(|(_, bytes, _)| *bytes == w),
                "{name}: store width disagrees with mem_width {w}"
            );
            assert!(!base.stores.is_empty(), "{name}: Store must store");
        }
        _ => {
            assert_eq!(base.loads, 0, "{name}: unexpected load");
            assert!(base.stores.is_empty(), "{name}: unexpected store");
        }
    }

    // Read soundness: perturbing any cell outside the declared read set
    // must leave every observable effect identical. (A perturbed cell
    // that is also written ends up recomputed; comparing post values
    // covers that case too.)
    let read_set: BTreeSet<String> = reads.iter().map(|(set, i)| reg_cell(set, *i)).collect();
    let mut perturbed = Vec::new();
    for j in 1..32 {
        if !read_set.contains(&format!("R[{j}]")) {
            perturbed.push(format!("R[{j}]"));
        }
    }
    for special in ["HI", "LO"] {
        if !read_set.contains(special) {
            perturbed.push(special.to_string());
        }
    }
    for cell in perturbed {
        let mut pre2 = pre.clone();
        // Aligned flip, so a perturbed cell feeding nothing but an
        // (undeclared) jump target would still stay word-aligned.
        match cell.as_str() {
            "HI" => pre2.hi ^= 0x5a5a_a5a4,
            "LO" => pre2.lo ^= 0x5a5a_a5a4,
            _ => {
                let j: usize = cell[2..cell.len() - 1].parse().unwrap();
                pre2.r[j] ^= 0x5a5a_a5a4;
            }
        }
        let alt = observe(m, &d, &pre2);
        assert_eq!(
            alt.event, base.event,
            "{name}: event depends on unread {cell}"
        );
        assert_eq!(
            alt.post.npc, next,
            "{name}: next pc depends on unread {cell}"
        );
        assert_eq!(
            alt.stores, base.stores,
            "{name}: stores depend on unread {cell}"
        );
        for (set, i) in m.writes(&d) {
            let (got, want) = match set.as_str() {
                "R" => (alt.post.r[i as usize], base.post.r[i as usize]),
                "HI" => (alt.post.hi, base.post.hi),
                "LO" => (alt.post.lo, base.post.lo),
                other => panic!("{name}: unexpected write set {other}"),
            };
            // The perturbed cell itself keeps its flip when the write
            // to it never fires (conditional arms); skip that one cell.
            if reg_cell(&set, i) == cell {
                continue;
            }
            assert_eq!(
                got, want,
                "{name}: written {set}[{i}] depends on unread {cell}"
            );
        }
    }
    next
}

/// One concrete encoding per pattern. rs=$4, rt=$5, rd=$8 throughout so
/// the seeds exercise real operand traffic.
fn witnesses() -> Vec<(&'static str, u32)> {
    let r = |funct: u32, rs: u32, rt: u32, rd: u32, sh: u32| {
        (rs << 21) | (rt << 16) | (rd << 11) | (sh << 6) | funct
    };
    let i =
        |op: u32, rs: u32, rt: u32, imm: u32| (op << 26) | (rs << 21) | (rt << 16) | (imm & 0xffff);
    vec![
        ("sll", r(0, 0, 5, 8, 3)),
        ("srl", r(2, 0, 5, 8, 3)),
        ("sra", r(3, 0, 5, 8, 3)),
        ("sllv", r(4, 4, 5, 8, 0)),
        ("srlv", r(6, 4, 5, 8, 0)),
        ("srav", r(7, 4, 5, 8, 0)),
        ("jr", r(8, 4, 0, 0, 0)),
        ("jalr", r(9, 4, 0, 31, 0)),
        ("syscall", r(12, 0, 0, 0, 0)),
        ("mfhi", r(16, 0, 0, 8, 0)),
        ("mflo", r(18, 0, 0, 8, 0)),
        ("mult", r(24, 4, 5, 0, 0)),
        ("multu", r(25, 4, 5, 0, 0)),
        ("div", r(26, 4, 5, 0, 0)),
        ("divu", r(27, 4, 5, 0, 0)),
        ("add", r(32, 4, 5, 8, 0)),
        ("addu", r(33, 4, 5, 8, 0)),
        ("sub", r(34, 4, 5, 8, 0)),
        ("subu", r(35, 4, 5, 8, 0)),
        ("and", r(36, 4, 5, 8, 0)),
        ("or", r(37, 4, 5, 8, 0)),
        ("xor", r(38, 4, 5, 8, 0)),
        ("nor", r(39, 4, 5, 8, 0)),
        ("slt", r(42, 4, 5, 8, 0)),
        ("sltu", r(43, 4, 5, 8, 0)),
        ("j", (2 << 26) | 0x40),
        ("jal", (3 << 26) | 0x40),
        ("beq", i(4, 4, 5, 5)),
        ("bne", i(5, 4, 5, 5)),
        ("blez", i(6, 4, 0, 5)),
        ("bgtz", i(7, 4, 0, 5)),
        ("addi", i(8, 4, 5, 7)),
        ("addiu", i(9, 4, 5, 0xfff8)),
        ("slti", i(10, 4, 5, 7)),
        ("sltiu", i(11, 4, 5, 7)),
        ("andi", i(12, 4, 5, 0x0f0f)),
        ("ori", i(13, 4, 5, 0x0f0f)),
        ("xori", i(14, 4, 5, 0x0f0f)),
        ("lui", i(15, 0, 5, 0x1234)),
        ("lb", i(32, 4, 5, 8)),
        ("lh", i(33, 4, 5, 8)),
        ("lw", i(35, 4, 5, 8)),
        ("lbu", i(36, 4, 5, 8)),
        ("lhu", i(37, 4, 5, 8)),
        ("sb", i(40, 4, 5, 8)),
        ("sh", i(41, 4, 5, 8)),
        ("sw", i(43, 4, 5, 8)),
    ]
}

#[test]
fn every_pattern_in_the_description_has_a_differential_witness() {
    let m = spawn_machine();
    let table = witnesses();
    let covered: BTreeSet<&str> = table.iter().map(|(n, _)| *n).collect();
    for spec in m.instructions() {
        assert!(
            covered.contains(spec.name.as_str()),
            "no differential witness for pattern {:?} — extend witnesses()",
            spec.name
        );
    }
    for (name, word) in &table {
        let d = m
            .decode(*word)
            .unwrap_or_else(|| panic!("witness {word:#010x} for {name} does not decode"));
        assert_eq!(
            &d.spec.name, name,
            "witness {word:#010x} decodes to the wrong pattern"
        );
        // Both seeds, and branches must show both arms between them.
        let next_a = check_word(m, *word, &seed_a());
        let next_b = check_word(m, *word, &seed_b());
        if d.spec.class == Class::Branch {
            let t = m.static_target(&d, PC).unwrap();
            let seq = PC + 8;
            let arms: BTreeSet<u32> = [next_a, next_b].into();
            assert_eq!(
                arms,
                BTreeSet::from([seq, t]),
                "{name}: seeds must exercise both the taken and fall-through arms"
            );
        }
    }
}

#[test]
fn progen_mips_text_agrees_with_execute_semantics() {
    let w = eel_progen::Workload {
        name: "mips-differential",
        source: "
            global acc;
            fn step(x) {
                var t = 0;
                while (x > 0) { t = t + x % 5; x = x - 1; }
                return t;
            }
            fn main() {
                var i;
                acc = 0;
                for (i = 1; i < 12; i = i + 1) { acc = acc + step(i); print(acc); }
                return acc & 63;
            }
        "
        .into(),
    };
    let image = eel_progen::compile_machine(&w, eel_cc::Personality::Gcc, eel_exe::Machine::Mips)
        .expect("compile mips");
    let m = spawn_machine();

    // Every generated text word decodes, and every *distinct* word
    // passes the full differential battery under both seeds.
    let mut words = BTreeSet::new();
    let mut names = BTreeSet::new();
    for off in (0..image.text.len()).step_by(4) {
        let addr = image.text_addr + off as u32;
        let word = image.word_at(addr).expect("text word");
        let d = m
            .decode(word)
            .unwrap_or_else(|| panic!("generated word {word:#010x} at {addr:#x} does not decode"));
        names.insert(d.spec.name.clone());
        words.insert(word);
    }
    for word in &words {
        check_word(m, *word, &seed_a());
        check_word(m, *word, &seed_b());
    }
    // The generator should exercise a healthy slice of the description,
    // not just a mov/branch core.
    assert!(
        names.len() >= 12,
        "progen text uses only {} distinct patterns: {names:?}",
        names.len()
    );

    // And the image still runs end to end through the same description.
    let outcome = MipsMachine::load(&image)
        .expect("load")
        .run()
        .expect("run mips image");
    assert!(!outcome.output_str().is_empty(), "program must print");
    assert_eq!(outcome.exit_code, 131 & 63, "main returns acc & 63");
}
