//! Emulator edge cases: page-boundary accesses, extreme values through
//! the printing runtime, decode caching vs self-inspection, and counter
//! semantics.

use eel_asm::assemble;
use eel_emu::{run_image, Machine, RunError};

#[test]
fn page_boundary_word_access() {
    // Store/load a word straddling nothing (aligned) right at a 4 KiB
    // page boundary in the heap.
    let out = run_image(
        &assemble(
            r#"
        main:
            mov 9, %g1          ! sbrk
            set 8192, %o0
            ta 0
            nop
            set 4092, %o1
            add %o0, %o1, %o1   ! last word of the first heap page
            set 0x55aa1234, %o2
            st %o2, [%o1]
            ld [%o1], %o3
            sub %o2, %o3, %o0   ! 0 if round-tripped
            mov 1, %g1
            ta 0
            nop
        "#,
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(out.exit_code, 0);
}

#[test]
fn byte_access_across_page_boundary_sequence() {
    // Write 8 bytes spanning a page edge one at a time, read back as two
    // words.
    let out = run_image(
        &assemble(
            r#"
        main:
            mov 9, %g1
            set 8192, %o0
            ta 0
            nop
            set 4092, %o1
            add %o0, %o1, %o1   ! 4 bytes before the boundary
            mov 0, %l0
        fill:
            cmp %l0, 8
            bge check
            nop
            add %o1, %l0, %l1
            add %l0, 65, %l2    ! 'A' + i
            stb %l2, [%l1]
            ba fill
            add %l0, 1, %l0
        check:
            ld [%o1], %l3       ! "ABCD"
            set 0x41424344, %l4
            cmp %l3, %l4
            bne bad
            nop
            ld [%o1 + 4], %l3   ! "EFGH"
            set 0x45464748, %l4
            cmp %l3, %l4
            bne bad
            nop
            mov 0, %o0
            mov 1, %g1
            ta 0
            nop
        bad:
            mov 1, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(out.exit_code, 0);
}

#[test]
fn program_can_read_its_own_text() {
    // Reading the text segment as data must work (EEL's dispatch tables
    // live there).
    let out = run_image(
        &assemble(
            r#"
        main:
            set main, %o1
            ld [%o1], %o0       ! first instruction word of main
            srl %o0, 22, %o0    ! sethi op pattern in the high bits
            mov 1, %g1
            ta 0
            nop
        "#,
        )
        .unwrap(),
    )
    .unwrap();
    // `set main` begins with sethi %hi(main), %o1: op=00 rd=9 op2=100.
    assert_eq!(
        out.exit_code, 76,
        "op=00 rd=01001 op2=100 -> 0b00_01001_100"
    );
}

#[test]
fn ticks_syscall_monotonic() {
    let image = assemble(
        r#"
        main:
            mov 13, %g1
            ta 0
            nop
            mov %o0, %l0
            mov 13, %g1
            ta 0
            nop
            sub %o0, %l0, %o0   ! elapsed > 0
            mov 1, %g1
            ta 0
            nop
        "#,
    )
    .unwrap();
    let out = run_image(&image).unwrap();
    assert!(out.exit_code > 0 && out.exit_code < 100);
}

#[test]
fn transfers_counter_counts_all_kinds() {
    let image = assemble(
        r#"
        main:
            call f              ! 1 call
            nop
            ba skip             ! 1 branch
            nop
        skip2:
            mov 1, %g1
            ta 0
            nop
        skip:
            ba skip2            ! 1 branch
            nop
        f:
            retl                ! 1 return
            nop
        "#,
    )
    .unwrap();
    let out = run_image(&image).unwrap();
    assert_eq!(out.transfers, 4);
}

#[test]
fn write_of_zero_length_is_fine() {
    let out = run_image(
        &assemble(
            r#"
        main:
            mov 4, %g1
            mov 1, %o0
            set main, %o1
            mov 0, %o2
            ta 0
            nop
            mov 0, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        )
        .unwrap(),
    )
    .unwrap();
    assert!(out.output.is_empty());
}

#[test]
fn executing_data_reports_illegal_not_panic() {
    // Jump into the data segment: the fetch succeeds (memory is flat) but
    // decoding the data word is illegal.
    let image = assemble(
        r#"
        main:
            set blob, %o1
            jmp %o1
            nop
            .data
        blob:
            .word 0xffffffff
        "#,
    )
    .unwrap();
    match run_image(&image) {
        Err(RunError::Illegal { .. }) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn step_limit_builder_is_respected() {
    let image = assemble("main: ba main\n nop\n").unwrap();
    let err = Machine::load(&image)
        .unwrap()
        .with_step_limit(7)
        .run()
        .unwrap_err();
    assert_eq!(err, RunError::StepLimit);
}

#[test]
fn negative_extremes_print_correctly() {
    let image = eel_cc::compile_str(
        "fn main() { print(0 - 2147483647 - 1); print(2147483647); print(0); return 0; }",
        &eel_cc::Options::default(),
    )
    .unwrap();
    let out = run_image(&image).unwrap();
    assert_eq!(out.output_str(), "-2147483648\n2147483647\n0\n");
}
