//! The emulator's eel-obs counters must agree exactly with the
//! [`eel_emu::Outcome`] it returns — no double counting across runs, no
//! missed flushes — on realistic progen workloads.

use eel_cc::Personality;
use eel_emu::run_image;
use eel_obs::MetricsSnapshot;

fn run_counted(workload: &eel_progen::Workload) -> (eel_emu::Outcome, MetricsSnapshot) {
    let image = eel_progen::compile(workload, Personality::Gcc).expect("compiles");
    let before = MetricsSnapshot::capture();
    let outcome = run_image(&image).expect("runs");
    let after = MetricsSnapshot::capture();
    let delta = MetricsSnapshot {
        counters: after
            .counters
            .iter()
            .map(|c| eel_obs::CounterSnapshot {
                name: c.name.clone(),
                value: c.value - before.counter_value(&c.name),
            })
            .collect(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    (outcome, delta)
}

#[test]
fn emu_counters_agree_with_outcome_on_progen_workloads() {
    // The emulator flushes its counters into the process-global registry,
    // so the whole check runs in one test (tests in one binary may run
    // concurrently); per-workload agreement is checked on deltas.
    eel_obs::set_mode(eel_obs::Mode::Summary);

    let workloads = [
        eel_progen::compress_like(512),
        eel_progen::eqntott_like(24),
        eel_progen::li_like(6),
    ];
    for w in &workloads {
        let (outcome, m) = run_counted(w);
        assert!(outcome.executed > 0, "{}: workload did nothing", w.name);
        assert_eq!(
            m.counter_value("emu.instructions"),
            outcome.executed,
            "{}: instructions retired",
            w.name
        );
        assert_eq!(
            m.counter_value("emu.cycles"),
            outcome.cycles,
            "{}: cycles",
            w.name
        );
        assert_eq!(
            m.counter_value("emu.annulled"),
            outcome.cycles - outcome.executed,
            "{}: annulled slots",
            w.name
        );
        assert_eq!(
            m.counter_value("emu.branches"),
            outcome.transfers,
            "{}: control transfers",
            w.name
        );
        assert_eq!(
            m.counter_value("emu.loads"),
            outcome.loads,
            "{}: loads",
            w.name
        );
        assert_eq!(
            m.counter_value("emu.stores"),
            outcome.stores,
            "{}: stores",
            w.name
        );
    }

    eel_obs::set_mode(eel_obs::Mode::Off);
}
