//! MIPS-I execution through the spawn-derived machine.
//!
//! Unlike the SPARC path, which steps the handwritten `eel_isa`
//! semantics, this interpreter has **no handwritten decode or execute
//! code at all**: every instruction is decoded, classified, and executed
//! by the [`eel_spawn::Machine`] derived from
//! `crates/spawn/descriptions/mips.spawn`. The emulator supplies only
//! what a description cannot know: the load format, the system-call
//! convention, and dynamic counting.
//!
//! System calls use the MIPS o32-style convention: number in `$v0`
//! (`$2`), arguments in `$a0`–`$a2` (`$4`–`$6`), result in `$v0`. The
//! numbers are the same [`crate::sys`] set the SPARC runtime uses.

use crate::{sys, Outcome, PagedMem, RunError, STACK_TOP};
use eel_exe::Image;
use eel_isa::Memory;
use eel_spawn::{Class, SpawnEvent, SpawnState};
use std::collections::HashMap;
use std::sync::OnceLock;

/// The process-wide spawn-derived MIPS machine (built once on first use).
pub fn spawn_machine() -> &'static eel_spawn::Machine {
    static MACHINE: OnceLock<eel_spawn::Machine> = OnceLock::new();
    MACHINE.get_or_init(|| eel_spawn::mips_machine().expect("bundled mips.spawn is well-formed"))
}

/// The MIPS emulator: spawn state + paged memory + counters.
pub struct MipsMachine {
    state: SpawnState,
    mem: PagedMem,
    /// pc → index into `spawn_machine().instructions()`, text only.
    decode_cache: HashMap<u32, usize>,
    brk: u32,
    step_limit: u64,
    outcome: Outcome,
    text_range: (u32, u32),
    /// Optional per-address execution counts (block-leader verification).
    pc_watch: Option<HashMap<u32, u64>>,
}

impl MipsMachine {
    /// Loads a MIPS-tagged image: segments copied in, `$sp` below
    /// [`STACK_TOP`], PC at the entry point.
    ///
    /// # Errors
    ///
    /// [`RunError::BadImage`] when validation fails or the image is not
    /// tagged [`eel_exe::Machine::Mips`].
    pub fn load(image: &Image) -> Result<MipsMachine, RunError> {
        if image.machine != eel_exe::Machine::Mips {
            return Err(RunError::BadImage(format!(
                "{} image on the mips emulator",
                image.machine
            )));
        }
        image
            .validate()
            .map_err(|e| RunError::BadImage(e.to_string()))?;
        let mut mem = PagedMem::default();
        mem.write_bytes(image.text_addr, &image.text);
        mem.write_bytes(image.data_addr, &image.data);
        let mut state = SpawnState::new(image.entry);
        state.r[29] = STACK_TOP - 64; // $sp
        Ok(MipsMachine {
            state,
            mem,
            decode_cache: HashMap::new(),
            brk: image.data_end().next_multiple_of(8),
            step_limit: crate::DEFAULT_STEP_LIMIT,
            outcome: Outcome::default(),
            text_range: (image.text_addr, image.text_end()),
            pc_watch: None,
        })
    }

    /// Replaces the default step budget.
    pub fn with_step_limit(mut self, limit: u64) -> MipsMachine {
        self.step_limit = limit;
        self
    }

    /// Counts executions of each given address (block-leader profiling
    /// ground truth for instrumentation tests).
    pub fn with_pc_watch(mut self, pcs: &[u32]) -> MipsMachine {
        self.pc_watch = Some(pcs.iter().map(|&pc| (pc, 0)).collect());
        self
    }

    /// The current spawn state (registers, pc/npc, HI/LO).
    pub fn state(&self) -> &SpawnState {
        &self.state
    }

    /// Reads a word of emulated memory (counter inspection).
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.mem.load(addr, 4).unwrap_or(0)
    }

    /// Takes the per-address execution counts collected by
    /// [`MipsMachine::with_pc_watch`].
    pub fn take_pc_counts(&mut self) -> HashMap<u32, u64> {
        self.pc_watch.take().unwrap_or_default()
    }

    /// Runs until `exit`, returning the dynamic counts.
    ///
    /// # Errors
    ///
    /// Any [`RunError`]; the state is left at the fault for inspection.
    pub fn run(&mut self) -> Result<Outcome, RunError> {
        let machine = spawn_machine();
        let specs = machine.instructions();
        loop {
            if self.outcome.cycles >= self.step_limit {
                return Err(RunError::StepLimit);
            }
            let pc = self.state.pc;
            if !pc.is_multiple_of(4) {
                return Err(RunError::BadFetch { pc });
            }
            let word = self.mem.load(pc, 4).ok_or(RunError::BadFetch { pc })?;
            let spec = match self.decode_cache.get(&pc) {
                Some(&i) => &specs[i],
                None => {
                    let d = machine.decode(word).ok_or(RunError::Illegal { pc, word })?;
                    let i = specs
                        .iter()
                        .position(|s| std::ptr::eq(s, d.spec))
                        .expect("decoded spec comes from this machine");
                    if pc >= self.text_range.0 && pc < self.text_range.1 {
                        self.decode_cache.insert(pc, i);
                    }
                    &specs[i]
                }
            };
            // MIPS-I has no annul: every slot executes and costs a cycle.
            self.outcome.cycles += 1;
            self.outcome.executed += 1;
            if let Some(watch) = self.pc_watch.as_mut() {
                if let Some(n) = watch.get_mut(&pc) {
                    *n += 1;
                }
            }
            match spec.class {
                Class::Load => self.outcome.loads += 1,
                Class::Store => self.outcome.stores += 1,
                Class::DirectJump | Class::IndirectJump | Class::Branch => {
                    self.outcome.transfers += 1
                }
                _ => {}
            }
            let d = eel_spawn::Decoded { spec, word };
            match machine
                .execute(&d, &mut self.state, &mut self.mem)
                .map_err(|e| RunError::BadImage(format!("description bug: {e}")))?
            {
                SpawnEvent::Ok => {}
                SpawnEvent::Trap(n) => {
                    if n != 0 {
                        return Err(RunError::BadTrap { pc, number: n });
                    }
                    if self.syscall(pc)? {
                        let outcome = std::mem::take(&mut self.outcome);
                        crate::flush_obs_counters(&outcome);
                        return Ok(outcome);
                    }
                }
                SpawnEvent::Illegal => return Err(RunError::Illegal { pc, word }),
                SpawnEvent::MemFault(addr) => return Err(RunError::MemFault { pc, addr }),
                SpawnEvent::DivZero => return Err(RunError::DivZero { pc }),
                SpawnEvent::BadJump(target) => return Err(RunError::BadJump { pc, target }),
            }
        }
    }

    /// Services a `syscall` instruction. Returns `true` on `exit`.
    fn syscall(&mut self, pc: u32) -> Result<bool, RunError> {
        let number = self.state.r[2]; // $v0
        let arg = |i: usize| self.state.r[4 + i]; // $a0..$a2
        match number {
            sys::EXIT => {
                self.outcome.exit_code = arg(0);
                return Ok(true);
            }
            sys::WRITE => {
                let (buf, len) = (arg(1), arg(2));
                for i in 0..len.min(1 << 20) {
                    let b = self.mem.read_byte(buf.wrapping_add(i));
                    self.outcome.output.push(b);
                }
                self.state.r[2] = len;
            }
            sys::SBRK => {
                let old = self.brk;
                self.brk = self.brk.wrapping_add(arg(0));
                self.state.r[2] = old;
            }
            sys::TICKS => {
                self.state.r[2] = self.outcome.cycles as u32;
            }
            other => return Err(RunError::BadSyscall { pc, number: other }),
        }
        Ok(false)
    }
}

impl std::fmt::Debug for MipsMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MipsMachine")
            .field("pc", &format_args!("{:#010x}", self.state.pc))
            .field("cycles", &self.outcome.cycles)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_image;

    fn mips_image(words: &[u32]) -> Image {
        let mut image =
            Image::new(eel_exe::TEXT_BASE, eel_exe::DATA_BASE).with_machine(eel_exe::Machine::Mips);
        image.text = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        image
    }

    #[test]
    fn exit_code_via_syscall_convention() {
        // li $a0, 42; li $v0, EXIT; syscall; nop
        let out = run_image(&mips_image(&[
            0x2404_002a, // addiu $a0, $zero, 42
            0x2402_0001, // addiu $v0, $zero, 1
            0x0000_000c, // syscall
            0x0000_0000, // nop
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.executed, 3);
        assert_eq!(out.cycles, 3, "mips has no annulled slots");
    }

    #[test]
    fn branch_delay_slot_executes() {
        let out = run_image(&mips_image(&[
            0x1000_0002, // beq $0, $0, +2  (to 0x1000c)
            0x2404_0007, // addiu $a0, $zero, 7   -- delay slot, executes
            0x2404_0009, // addiu $a0, $zero, 9   -- skipped
            0x2402_0001, // addiu $v0, $zero, 1
            0x0000_000c, // syscall
            0x0000_0000,
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 7);
        assert_eq!(out.transfers, 1);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let out = run_image(&mips_image(&[
            0x0c00_4005, // jal 0x10014
            0x0000_0000, // nop (delay)
            0x2402_0001, // addiu $v0, $zero, 1   -- return lands here
            0x0000_000c, // syscall
            0x0000_0000, // nop
            0x2404_0005, // 0x10014: addiu $a0, $zero, 5
            0x03e0_0008, // jr $ra
            0x0000_0000, // nop (delay)
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 5);
        assert_eq!(out.transfers, 2);
    }

    #[test]
    fn hi_lo_through_mult_and_mflo() {
        let out = run_image(&mips_image(&[
            0x2404_0006, // addiu $a0, $zero, 6
            0x2405_0007, // addiu $a1, $zero, 7
            0x0085_0018, // mult $a0, $a1
            0x0000_2012, // mflo $a0
            0x2402_0001, // addiu $v0, $zero, 1
            0x0000_000c, // syscall
            0x0000_0000,
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn loads_stores_counted_and_memory_works() {
        let out = run_image(&mips_image(&[
            0x2404_007b, // addiu $a0, $zero, 123
            0x3c08_0040, // lui $t0, 0x40     ($t0 = 0x400000 = data base)
            0xad04_0004, // sw $a0, 4($t0)
            0x2404_0000, // addiu $a0, $zero, 0
            0x8d04_0004, // lw $a0, 4($t0)
            0x2402_0001, // addiu $v0, $zero, 1
            0x0000_000c, // syscall
            0x0000_0000,
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 123);
        assert_eq!(out.loads, 1);
        assert_eq!(out.stores, 1);
    }

    #[test]
    fn pc_watch_counts_executions() {
        let image = mips_image(&[
            0x2404_0003, // addiu $a0, $zero, 3      0x10000
            0x2484_ffff, // loop: addiu $a0, $a0, -1 0x10004
            0x1c80_fffe, // bgtz $a0, loop (-2)      0x10008
            0x0000_0000, // nop (delay)              0x1000c
            0x2402_0001, // addiu $v0, $zero, 1      0x10010
            0x0000_000c, // syscall
            0x0000_0000,
        ]);
        let mut m = MipsMachine::load(&image)
            .unwrap()
            .with_pc_watch(&[0x10004, 0x10010]);
        let out = m.run().unwrap();
        assert_eq!(out.exit_code, 0);
        let counts = m.take_pc_counts();
        assert_eq!(counts[&0x10004], 3);
        assert_eq!(counts[&0x10010], 1);
    }

    #[test]
    fn wrong_machine_rejected_cleanly() {
        let image = mips_image(&[0]).with_machine(eel_exe::Machine::Sparc);
        assert!(matches!(
            MipsMachine::load(&image),
            Err(RunError::BadImage(_))
        ));
        let mips = mips_image(&[0]);
        assert!(matches!(
            crate::Machine::load(&mips),
            Err(RunError::BadImage(_))
        ));
        let alpha = mips_image(&[0]).with_machine(eel_exe::Machine::Alpha);
        assert!(matches!(
            crate::AnyMachine::load(&alpha),
            Err(RunError::BadImage(_))
        ));
    }

    #[test]
    fn illegal_word_faults() {
        // op=1 (REGIMM) is outside the described MIPS-I subset.
        let err = run_image(&mips_image(&[0x0400_0000])).unwrap_err();
        assert!(matches!(err, RunError::Illegal { pc: 0x10000, .. }));
    }

    #[test]
    fn div_by_zero_faults() {
        let err = run_image(&mips_image(&[
            0x2404_0005, // addiu $a0, $zero, 5
            0x0080_001a, // div $a0, $zero
            0x0000_0000,
        ]))
        .unwrap_err();
        assert!(matches!(err, RunError::DivZero { .. }));
    }

    #[test]
    fn determinism() {
        let image = mips_image(&[
            0x2404_000a, // addiu $a0, $zero, 10
            0x2405_0000, // addiu $a1, $zero, 0
            0x00a4_2821, // loop: addu $a1, $a1, $a0
            0x2484_ffff, // addiu $a0, $a0, -1
            0x1c80_fffd, // bgtz $a0, loop (-3)
            0x0000_0000, // nop
            0x00a0_2021, // addu $a0, $a1, $zero
            0x2402_0001, // addiu $v0, $zero, 1
            0x0000_000c, // syscall
            0x0000_0000,
        ]);
        let a = run_image(&image).unwrap();
        let b = run_image(&image).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.exit_code, 55, "sum 1..=10");
    }
}
