//! # eel-emu: an instruction-level emulator for WEF executables
//!
//! The paper measured tools on a SPARCstation 20/61; this crate is the
//! reproduction's testbed. It executes WEF images with bit-exact delayed
//! control flow (PC/nPC, annul), services system calls, and counts dynamic
//! instructions, memory references, and control transfers — the quantities
//! behind every overhead claim in the paper (§1's "2–7x slowdown" for
//! Active Memory, §5's qpt measurements).
//!
//! Determinism: same image + same inputs ⇒ identical counts, which makes
//! the experiment harness reproducible to the instruction.
//!
//! ## Example
//!
//! ```
//! let image = eel_asm::assemble(r#"
//!     .global main
//! main:
//!     mov 42, %o0     ! exit code
//!     mov 1, %g1      ! SYS_exit
//!     ta 0
//!     nop
//! "#)?;
//! let outcome = eel_emu::Machine::load(&image)?.run()?;
//! assert_eq!(outcome.exit_code, 42);
//! assert_eq!(outcome.executed, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use eel_exe::Image;
use eel_isa::{decode, Category, Insn, MachineState, Memory, Reg, StepEvent};
use std::collections::HashMap;
use std::fmt;

pub mod mips;
pub use mips::MipsMachine;

/// System-call numbers (passed in `%g1` with `ta 0`).
pub mod sys {
    /// `exit(code)` — terminate with `%o0` as the exit code.
    pub const EXIT: u32 = 1;
    /// `write(fd, buf, len)` — append to the captured output stream;
    /// returns `len` in `%o0`.
    pub const WRITE: u32 = 4;
    /// `sbrk(incr)` — grow the heap; returns the old break in `%o0`.
    pub const SBRK: u32 = 9;
    /// `ticks()` — current dynamic instruction count in `%o0` (the
    /// emulator's stand-in for a cycle counter; the Wind Tunnel's edited
    /// programs maintained one in software, §1).
    pub const TICKS: u32 = 13;
}

/// Top of the stack region; `%sp` starts just below.
pub const STACK_TOP: u32 = 0x7fff_f000;

/// Default dynamic-instruction budget before [`RunError::StepLimit`].
pub const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Fetched from an unmapped or misaligned PC.
    BadFetch {
        /// The faulting PC.
        pc: u32,
    },
    /// Executed an illegal (invalid/unimp/fp) instruction.
    Illegal {
        /// The faulting PC.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// A data access faulted.
    MemFault {
        /// The faulting PC.
        pc: u32,
        /// The bad data address.
        addr: u32,
    },
    /// Division by zero.
    DivZero {
        /// The faulting PC.
        pc: u32,
    },
    /// Jump to a misaligned address.
    BadJump {
        /// The faulting PC.
        pc: u32,
        /// The bad target.
        target: u32,
    },
    /// Unknown system-call number.
    BadSyscall {
        /// The faulting PC.
        pc: u32,
        /// The `%g1` value.
        number: u32,
    },
    /// Unknown trap number (only `ta 0` is defined).
    BadTrap {
        /// The faulting PC.
        pc: u32,
        /// The trap number.
        number: u32,
    },
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
    /// The image failed validation before loading.
    BadImage(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadFetch { pc } => write!(f, "instruction fetch fault at {pc:#010x}"),
            RunError::Illegal { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            RunError::MemFault { pc, addr } => {
                write!(f, "memory fault at address {addr:#010x} (pc {pc:#010x})")
            }
            RunError::DivZero { pc } => write!(f, "division by zero at {pc:#010x}"),
            RunError::BadJump { pc, target } => {
                write!(f, "misaligned jump to {target:#010x} at {pc:#010x}")
            }
            RunError::BadSyscall { pc, number } => {
                write!(f, "unknown system call {number} at {pc:#010x}")
            }
            RunError::BadTrap { pc, number } => {
                write!(f, "unknown trap {number} at {pc:#010x}")
            }
            RunError::StepLimit => write!(f, "step limit exhausted (infinite loop?)"),
            RunError::BadImage(msg) => write!(f, "bad image: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Dynamic counts from a completed run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Outcome {
    /// Exit code passed to `exit`.
    pub exit_code: u32,
    /// Cycles consumed (includes annulled delay slots, which still cost a
    /// cycle on SPARC).
    pub cycles: u64,
    /// Instructions actually executed (annulled slots excluded).
    pub executed: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic control transfers (branches, calls, jumps, returns).
    pub transfers: u64,
    /// Bytes written via the `write` system call.
    pub output: Vec<u8>,
}

impl Outcome {
    /// The captured output as (lossy) UTF-8.
    pub fn output_str(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// Publishes a completed run's dynamic counts to the observability
/// registry. Flushing once per run (rather than per instruction) keeps
/// the interpreter loop free of instrumentation overhead.
fn flush_obs_counters(o: &Outcome) {
    if !eel_obs::enabled() {
        return;
    }
    eel_obs::counter!("emu.instructions").add(o.executed);
    eel_obs::counter!("emu.cycles").add(o.cycles);
    eel_obs::counter!("emu.annulled").add(o.cycles - o.executed);
    eel_obs::counter!("emu.branches").add(o.transfers);
    eel_obs::counter!("emu.loads").add(o.loads);
    eel_obs::counter!("emu.stores").add(o.stores);
}

/// A record of one dynamic memory reference, for validating tools that
/// instrument loads and stores (Active Memory, the tracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Address of the instruction performing the access.
    pub pc: u32,
    /// Effective data address.
    pub addr: u32,
    /// Access size in bytes.
    pub bytes: u32,
    /// True for stores.
    pub is_store: bool,
}

/// Page-mapped sparse memory.
#[derive(Default)]
struct PagedMem {
    pages: HashMap<u32, Box<[u8; 4096]>>,
}

impl PagedMem {
    fn page(&mut self, addr: u32) -> &mut [u8; 4096] {
        self.pages
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0; 4096]))
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u32);
            self.page(a)[(a & 0xfff) as usize] = b;
        }
    }

    fn read_byte(&mut self, addr: u32) -> u8 {
        self.page(addr)[(addr & 0xfff) as usize]
    }
}

impl Memory for PagedMem {
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..bytes {
            v = (v << 8) | self.read_byte(addr.wrapping_add(i)) as u32;
        }
        Some(v)
    }
    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
        for i in 0..bytes {
            let a = addr.wrapping_add(i);
            self.page(a)[(a & 0xfff) as usize] = (value >> (8 * (bytes - 1 - i))) as u8;
        }
        Some(())
    }
}

/// The emulator: loaded image + machine state + counters.
pub struct Machine {
    state: MachineState,
    mem: PagedMem,
    decode_cache: HashMap<u32, Insn>,
    brk: u32,
    step_limit: u64,
    outcome: Outcome,
    mem_trace: Option<Vec<MemRef>>,
    text_range: (u32, u32),
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &format_args!("{:#010x}", self.state.pc))
            .field("cycles", &self.outcome.cycles)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Loads an image and prepares the initial state: segments copied in,
    /// `%sp` below [`STACK_TOP`], PC at the entry point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::BadImage`] when [`Image::validate`] fails.
    pub fn load(image: &Image) -> Result<Machine, RunError> {
        if image.machine != eel_exe::Machine::Sparc {
            return Err(RunError::BadImage(format!(
                "{} image on the sparc emulator (use run_image or AnyMachine)",
                image.machine
            )));
        }
        image
            .validate()
            .map_err(|e| RunError::BadImage(e.to_string()))?;
        let mut mem = PagedMem::default();
        mem.write_bytes(image.text_addr, &image.text);
        mem.write_bytes(image.data_addr, &image.data);
        let mut state = MachineState::new(image.entry);
        state.set_reg(Reg::SP, STACK_TOP - 64);
        Ok(Machine {
            state,
            mem,
            decode_cache: HashMap::new(),
            brk: image.data_end().next_multiple_of(8),
            step_limit: DEFAULT_STEP_LIMIT,
            outcome: Outcome::default(),
            mem_trace: None,
            text_range: (image.text_addr, image.text_end()),
        })
    }

    /// Replaces the default step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Machine {
        self.step_limit = limit;
        self
    }

    /// Enables memory-reference tracing (see [`Machine::take_mem_trace`]).
    pub fn with_mem_trace(mut self) -> Machine {
        self.mem_trace = Some(Vec::new());
        self
    }

    /// The current machine state (for tests and debuggers).
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Reads a word of emulated memory (for inspecting counters that
    /// instrumented programs maintain).
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.mem.load(addr, 4).unwrap_or(0)
    }

    /// Takes the collected memory-reference trace, if tracing was enabled.
    pub fn take_mem_trace(&mut self) -> Vec<MemRef> {
        self.mem_trace.take().unwrap_or_default()
    }

    /// Runs until `exit`, returning the dynamic counts.
    ///
    /// # Errors
    ///
    /// Any [`RunError`]; the machine state is left at the fault for
    /// inspection.
    pub fn run(&mut self) -> Result<Outcome, RunError> {
        loop {
            if self.outcome.cycles >= self.step_limit {
                return Err(RunError::StepLimit);
            }
            let pc = self.state.pc;
            if !pc.is_multiple_of(4) {
                return Err(RunError::BadFetch { pc });
            }
            let insn = match self.decode_cache.get(&pc) {
                // Only cache decodes of (immutable) text; edited programs
                // never rewrite text at run time, but data-segment
                // execution is not cached defensively.
                Some(&i) => i,
                None => {
                    let word = self.mem.load(pc, 4).ok_or(RunError::BadFetch { pc })?;
                    let i = decode(word);
                    if pc >= self.text_range.0 && pc < self.text_range.1 {
                        self.decode_cache.insert(pc, i);
                    }
                    i
                }
            };
            self.outcome.cycles += 1;
            if self.state.annul {
                // Annulled slot: costs a cycle, executes nothing.
                eel_isa::step(&mut self.state, &mut self.mem, insn);
                continue;
            }
            self.outcome.executed += 1;
            match insn.category() {
                Category::Load => {
                    self.outcome.loads += 1;
                    self.record_memref(insn, false);
                }
                Category::Store => {
                    self.outcome.stores += 1;
                    self.record_memref(insn, true);
                }
                Category::Branch
                | Category::Call
                | Category::IndirectCall
                | Category::IndirectJump
                | Category::Return => self.outcome.transfers += 1,
                _ => {}
            }
            match eel_isa::step(&mut self.state, &mut self.mem, insn) {
                StepEvent::Ok => {}
                StepEvent::Trap(n) => {
                    if n != 0 {
                        return Err(RunError::BadTrap { pc, number: n });
                    }
                    if self.syscall(pc)? {
                        let outcome = std::mem::take(&mut self.outcome);
                        flush_obs_counters(&outcome);
                        return Ok(outcome);
                    }
                }
                StepEvent::Illegal => {
                    return Err(RunError::Illegal {
                        pc,
                        word: insn.word,
                    })
                }
                StepEvent::MemFault(addr) => return Err(RunError::MemFault { pc, addr }),
                StepEvent::DivZero => return Err(RunError::DivZero { pc }),
                StepEvent::BadJump(target) => return Err(RunError::BadJump { pc, target }),
            }
        }
    }

    fn record_memref(&mut self, insn: Insn, is_store: bool) {
        let Some(trace) = self.mem_trace.as_mut() else {
            return;
        };
        let (rs1, src2, bytes) = match insn.op {
            eel_isa::Op::Load {
                rs1, src2, width, ..
            }
            | eel_isa::Op::Store {
                rs1, src2, width, ..
            } => (rs1, src2, width.bytes()),
            _ => return,
        };
        let off = match src2 {
            eel_isa::Src2::Reg(r) => self.state.reg(r),
            eel_isa::Src2::Imm(v) => v as u32,
        };
        trace.push(MemRef {
            pc: self.state.pc,
            addr: self.state.reg(rs1).wrapping_add(off),
            bytes,
            is_store,
        });
    }

    /// Services a `ta 0` system call. Returns `true` on `exit`.
    fn syscall(&mut self, pc: u32) -> Result<bool, RunError> {
        let number = self.state.reg(Reg::G1);
        let arg = |i: u8| self.state.reg(Reg(8 + i));
        match number {
            sys::EXIT => {
                self.outcome.exit_code = arg(0);
                return Ok(true);
            }
            sys::WRITE => {
                let (buf, len) = (arg(1), arg(2));
                for i in 0..len.min(1 << 20) {
                    let b = self.mem.read_byte(buf.wrapping_add(i));
                    self.outcome.output.push(b);
                }
                self.state.set_reg(Reg::O0, len);
            }
            sys::SBRK => {
                let old = self.brk;
                self.brk = self.brk.wrapping_add(arg(0));
                self.state.set_reg(Reg::O0, old);
            }
            sys::TICKS => {
                self.state.set_reg(Reg::O0, self.outcome.cycles as u32);
            }
            other => return Err(RunError::BadSyscall { pc, number: other }),
        }
        Ok(false)
    }
}

/// An emulator for any supported machine, dispatching on the image's WEF
/// machine tag. Tools that only need load/run/read_word use this instead
/// of naming a per-ISA machine type.
#[derive(Debug)]
pub enum AnyMachine {
    /// The handwritten SPARC interpreter.
    Sparc(Machine),
    /// The spawn-derived MIPS interpreter.
    Mips(MipsMachine),
}

impl AnyMachine {
    /// Loads an image on the emulator its machine tag names.
    ///
    /// # Errors
    ///
    /// [`RunError::BadImage`] for validation failures or machines with no
    /// emulator (alpha).
    pub fn load(image: &Image) -> Result<AnyMachine, RunError> {
        match image.machine {
            eel_exe::Machine::Sparc => Ok(AnyMachine::Sparc(Machine::load(image)?)),
            eel_exe::Machine::Mips => Ok(AnyMachine::Mips(MipsMachine::load(image)?)),
            eel_exe::Machine::Alpha => Err(RunError::BadImage(
                "no emulator for alpha images yet".into(),
            )),
        }
    }

    /// Replaces the default step budget.
    pub fn with_step_limit(self, limit: u64) -> AnyMachine {
        match self {
            AnyMachine::Sparc(m) => AnyMachine::Sparc(m.with_step_limit(limit)),
            AnyMachine::Mips(m) => AnyMachine::Mips(m.with_step_limit(limit)),
        }
    }

    /// Runs until `exit`, returning the dynamic counts.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run(&mut self) -> Result<Outcome, RunError> {
        match self {
            AnyMachine::Sparc(m) => m.run(),
            AnyMachine::Mips(m) => m.run(),
        }
    }

    /// Reads a word of emulated memory (counter inspection).
    pub fn read_word(&mut self, addr: u32) -> u32 {
        match self {
            AnyMachine::Sparc(m) => m.read_word(addr),
            AnyMachine::Mips(m) => m.read_word(addr),
        }
    }
}

/// Convenience: load and run an image in one call, dispatching on the
/// WEF machine tag.
///
/// # Errors
///
/// See [`Machine::run`].
pub fn run_image(image: &Image) -> Result<Outcome, RunError> {
    AnyMachine::load(image)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_asm(src: &str) -> Outcome {
        let image = eel_asm::assemble(src).expect("assembly failed");
        run_image(&image).expect("run failed")
    }

    #[test]
    fn exit_code_and_counts() {
        let out = run_asm(
            r#"
        main:
            mov 7, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        );
        assert_eq!(out.exit_code, 7);
        assert_eq!(out.executed, 3);
        assert_eq!(out.cycles, 3);
    }

    #[test]
    fn loop_counts_iterations() {
        // Sum 1..=10 then exit with the sum (55).
        let out = run_asm(
            r#"
        main:
            clr %l0
            clr %l1
        loop:
            cmp %l1, 10
            bge done
            nop
            inc %l1
            ba loop
            add %l0, %l1, %l0   ! delay slot does the add
        done:
            mov %l0, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        );
        assert_eq!(out.exit_code, 55);
        assert!(
            out.transfers >= 21,
            "2 transfers per iteration: {}",
            out.transfers
        );
    }

    #[test]
    fn write_syscall_captures_output() {
        let out = run_asm(
            r#"
        main:
            set msg, %o1
            mov 1, %o0
            mov 6, %o2
            mov 4, %g1
            ta 0
            nop
            mov 0, %o0
            mov 1, %g1
            ta 0
            nop
            .data
        msg:
            .ascii "hello\n"
        "#,
        );
        assert_eq!(out.output_str(), "hello\n");
    }

    #[test]
    fn memory_and_recursion() {
        // Recursive factorial(5) with an explicit stack = 120.
        let out = run_asm(
            r#"
        main:
            mov 5, %o0
            call fact
            nop
            mov 1, %g1
            ta 0
            nop
        fact:                       ! o0 = n, returns o0 = n!
            cmp %o0, 1
            bgu recurse
            nop
            retl
            mov 1, %o0
        recurse:
            sub %sp, 16, %sp
            st %o7, [%sp + 4]
            st %o0, [%sp + 8]
            call fact
            sub %o0, 1, %o0         ! delay: pass n-1
            ld [%sp + 8], %o1
            smul %o0, %o1, %o0
            ld [%sp + 4], %o7
            retl
            add %sp, 16, %sp
        "#,
        );
        assert_eq!(out.exit_code, 120);
        assert!(out.loads >= 8 && out.stores >= 8);
    }

    #[test]
    fn annulled_slot_costs_cycle_but_no_execution() {
        let out = run_asm(
            r#"
        main:
            cmp %g0, 0
            bne,a skipped       ! not taken, annulled
            mov 9, %o0          ! annulled
            mov 3, %o0
        skipped:
            mov 1, %g1
            ta 0
            nop
        "#,
        );
        assert_eq!(out.exit_code, 3);
        assert_eq!(out.cycles, out.executed + 1);
    }

    #[test]
    fn sbrk_grows_heap() {
        let out = run_asm(
            r#"
        main:
            mov 64, %o0
            mov 9, %g1
            ta 0                ! o0 = old brk
            nop
            st %g1, [%o0]       ! heap is writable
            ld [%o0], %o1
            mov 0, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        );
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn ticks_syscall_reports_cycles() {
        let out = run_asm(
            r#"
        main:
            mov 13, %g1
            ta 0
            nop
            mov %o0, %o0
            mov 1, %g1
            ta 0
            nop
        "#,
        );
        // ticks executed at cycle 2 (0-based pc ordering); just check nonzero exit... exit code is o0 from ticks? No: o0 reloaded.
        assert_eq!(out.executed, 6);
    }

    #[test]
    fn mem_trace_records_references() {
        let image = eel_asm::assemble(
            r#"
        main:
            set buf, %l0
            st %g0, [%l0 + 4]
            ld [%l0 + 4], %o0
            ldub [%l0], %o1
            mov 1, %g1
            ta 0
            nop
            .data
        buf:
            .skip 16
        "#,
        )
        .unwrap();
        let mut m = Machine::load(&image).unwrap().with_mem_trace();
        m.run().unwrap();
        let trace = m.take_mem_trace();
        assert_eq!(trace.len(), 3);
        assert!(trace[0].is_store && trace[0].bytes == 4);
        assert!(!trace[1].is_store);
        assert_eq!(trace[0].addr, trace[1].addr);
        assert_eq!(trace[2].bytes, 1);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let image = eel_asm::assemble("main: ba main\n nop\n").unwrap();
        let err = Machine::load(&image)
            .unwrap()
            .with_step_limit(1000)
            .run()
            .unwrap_err();
        assert_eq!(err, RunError::StepLimit);
    }

    #[test]
    fn illegal_instruction_faults_with_pc() {
        let image = eel_asm::assemble("main: unimp 0\n nop\n").unwrap();
        let err = run_image(&image).unwrap_err();
        match err {
            RunError::Illegal { pc, .. } => assert_eq!(pc, image.text_addr),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_syscall_reported() {
        let image = eel_asm::assemble("main: mov 99, %g1\n ta 0\n nop\n").unwrap();
        assert!(matches!(
            run_image(&image),
            Err(RunError::BadSyscall { number: 99, .. })
        ));
    }

    #[test]
    fn div_zero_faults() {
        let image = eel_asm::assemble("main: mov 1, %o0\n sdiv %o0, %g0, %o0\n nop\n").unwrap();
        assert!(matches!(run_image(&image), Err(RunError::DivZero { .. })));
    }

    #[test]
    fn determinism() {
        let src = r#"
        main:
            mov 20, %o0
            call fib
            nop
            mov 1, %g1
            ta 0
            nop
        fib:
            cmp %o0, 2
            bl base
            nop
            sub %sp, 24, %sp
            st %o7, [%sp + 4]
            st %o0, [%sp + 8]
            call fib
            sub %o0, 1, %o0
            st %o0, [%sp + 12]
            ld [%sp + 8], %o0
            call fib
            sub %o0, 2, %o0
            ld [%sp + 12], %o1
            add %o0, %o1, %o0
            ld [%sp + 4], %o7
            retl
            add %sp, 24, %sp
        base:
            retl
            mov 1, %o0
        "#;
        let image = eel_asm::assemble(src).unwrap();
        let a = run_image(&image).unwrap();
        let b = run_image(&image).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.exit_code, 10946, "fib(20) with fib(1)=fib(0)=1");
    }

    #[test]
    fn errors_display() {
        for e in [
            RunError::BadFetch { pc: 1 },
            RunError::Illegal { pc: 1, word: 2 },
            RunError::MemFault { pc: 1, addr: 2 },
            RunError::DivZero { pc: 1 },
            RunError::BadJump { pc: 1, target: 2 },
            RunError::BadSyscall { pc: 1, number: 2 },
            RunError::BadTrap { pc: 1, number: 2 },
            RunError::StepLimit,
            RunError::BadImage("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
