//! # eel-exe: the WEF executable file format
//!
//! EEL needs executables to edit. The paper's EEL read SunOS/Solaris
//! `a.out`/ELF files through GNU BFD; this crate plays both roles: it
//! defines **WEF** (Wisconsin Executable Format), a simple fully-linked
//! big-endian executable format, and provides the reader/writer layer that
//! isolates the rest of the system from file-format details (§4's "library
//! to read and write Unix executable files").
//!
//! A WEF image has a text segment, a data segment, an entry point, and a
//! symbol table. Symbol tables can be *stripped* — EEL's §3.1 analysis must
//! then discover routines from the program's entry point and call graph —
//! and deliberately model the paper's complaints about real symbol tables:
//! they may contain debugging and temporary labels, data tables in the text
//! segment carry entries "indistinguishable from a routine's", and multiple
//! entry points are never recorded.
//!
//! ## Example
//!
//! ```
//! use eel_exe::{Image, Symbol, SymbolKind};
//!
//! let mut image = Image::new(0x10000, 0x40000);
//! image.text = vec![0x01, 0x00, 0x00, 0x00]; // one nop
//! image.entry = 0x10000;
//! image.symbols.push(Symbol::routine("main", 0x10000));
//! let bytes = image.to_bytes();
//! let back = Image::from_bytes(&bytes)?;
//! assert_eq!(back.symbols[0].name, "main");
//! assert_eq!(back.word_at(0x10000), Some(0x01000000));
//! # let _ = SymbolKind::Routine;
//! # Ok::<(), eel_exe::WefError>(())
//! ```

use std::fmt;
use std::path::Path;

/// Default load address of the text segment.
pub const TEXT_BASE: u32 = 0x0001_0000;

/// Default load address of the data segment.
pub const DATA_BASE: u32 = 0x0040_0000;

/// Magic number identifying a WEF file (`"WEF1"` big-endian).
pub const MAGIC: u32 = 0x5745_4631;

/// The target machine of a WEF image.
///
/// Encoded in the low byte of the header's flags word (offset 4). The
/// word was written as zero by every earlier WEF emitter and ignored by
/// every earlier reader, so tag value 0 = SPARC keeps old images valid
/// and old readers keep accepting new SPARC images — the tag is a
/// backward-compatible extension, not a version bump.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Machine {
    /// The SPARC-like ISA of `eel-isa` (tag byte 0).
    #[default]
    Sparc,
    /// MIPS-I, derived from `crates/spawn/descriptions/mips.spawn` (tag 1).
    Mips,
    /// Alpha, reserved for the `alpha.spawn` description (tag 2).
    Alpha,
}

impl Machine {
    /// The tag byte stored in the header flags word.
    pub fn to_byte(self) -> u8 {
        match self {
            Machine::Sparc => 0,
            Machine::Mips => 1,
            Machine::Alpha => 2,
        }
    }

    /// Decodes a tag byte; `None` for unassigned values.
    pub fn from_byte(b: u8) -> Option<Machine> {
        Some(match b {
            0 => Machine::Sparc,
            1 => Machine::Mips,
            2 => Machine::Alpha,
            _ => return None,
        })
    }

    /// Lower-case machine name as printed by tools and the `stat` op.
    pub fn name(self) -> &'static str {
        match self {
            Machine::Sparc => "sparc",
            Machine::Mips => "mips",
            Machine::Alpha => "alpha",
        }
    }

    /// Parses a machine name as accepted by `--machine` flags.
    pub fn from_name(name: &str) -> Option<Machine> {
        Some(match name {
            "sparc" => Machine::Sparc,
            "mips" => Machine::Mips,
            "alpha" => Machine::Alpha,
            _ => return None,
        })
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors arising from reading or validating a WEF image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WefError {
    /// The file does not start with [`MAGIC`].
    BadMagic(u32),
    /// The file is shorter than its headers claim.
    Truncated {
        /// What the reader was trying to read.
        what: &'static str,
    },
    /// A symbol's name offset points outside the string table.
    BadStringOffset(u32),
    /// A header field is inconsistent (overlapping segments, misaligned
    /// addresses, entry outside text).
    Malformed(String),
    /// An underlying I/O error (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for WefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WefError::BadMagic(m) => write!(f, "bad magic {m:#010x}, expected WEF1"),
            WefError::Truncated { what } => write!(f, "truncated file while reading {what}"),
            WefError::BadStringOffset(o) => write!(f, "symbol name offset {o} out of range"),
            WefError::Malformed(msg) => write!(f, "malformed image: {msg}"),
            WefError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for WefError {}

impl From<std::io::Error> for WefError {
    fn from(e: std::io::Error) -> WefError {
        WefError::Io(e.to_string())
    }
}

/// What a symbol names. Real symbol tables conflate these — EEL's §3.1
/// refinement exists precisely because `Routine` cannot be trusted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymbolKind {
    /// Claims to name a routine in the text segment.
    Routine,
    /// A data object.
    Object,
    /// An internal label (branch target, loop head).
    Label,
    /// Compiler debugging cruft.
    Debug,
    /// A temporary the compiler forgot to discard.
    Temp,
}

impl SymbolKind {
    fn to_byte(self) -> u8 {
        match self {
            SymbolKind::Routine => 0,
            SymbolKind::Object => 1,
            SymbolKind::Label => 2,
            SymbolKind::Debug => 3,
            SymbolKind::Temp => 4,
        }
    }

    fn from_byte(b: u8) -> Option<SymbolKind> {
        Some(match b {
            0 => SymbolKind::Routine,
            1 => SymbolKind::Object,
            2 => SymbolKind::Label,
            3 => SymbolKind::Debug,
            4 => SymbolKind::Temp,
            _ => return None,
        })
    }
}

/// A symbol-table entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// The symbol's name.
    pub name: String,
    /// Its address.
    pub value: u32,
    /// Extent in bytes; 0 when unknown (common in real symbol tables —
    /// §3.1 notes tables "record only the starting point of a routine").
    pub size: u32,
    /// What the table claims this names.
    pub kind: SymbolKind,
    /// Externally visible?
    pub global: bool,
}

impl Symbol {
    /// A global routine symbol with unknown size.
    pub fn routine(name: &str, value: u32) -> Symbol {
        Symbol {
            name: name.to_string(),
            value,
            size: 0,
            kind: SymbolKind::Routine,
            global: true,
        }
    }

    /// A global data-object symbol.
    pub fn object(name: &str, value: u32, size: u32) -> Symbol {
        Symbol {
            name: name.to_string(),
            value,
            size,
            kind: SymbolKind::Object,
            global: true,
        }
    }

    /// A local label.
    pub fn label(name: &str, value: u32) -> Symbol {
        Symbol {
            name: name.to_string(),
            value,
            size: 0,
            kind: SymbolKind::Label,
            global: false,
        }
    }
}

/// A fully-linked executable image: text, data, entry point, symbols.
///
/// This is the in-memory form; [`Image::to_bytes`]/[`Image::from_bytes`]
/// and [`Image::write_file`]/[`Image::read_file`] convert to the on-disk
/// encoding.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Image {
    /// Program entry point (must lie in text).
    pub entry: u32,
    /// Load address of the text segment (word-aligned).
    pub text_addr: u32,
    /// Text segment contents (instructions, and possibly embedded data
    /// tables — EEL must cope).
    pub text: Vec<u8>,
    /// Load address of the data segment.
    pub data_addr: u32,
    /// Data segment contents.
    pub data: Vec<u8>,
    /// Extra zero-initialized bytes logically following `data` (bss).
    pub bss_size: u32,
    /// The symbol table; empty when stripped.
    pub symbols: Vec<Symbol>,
    /// The target machine; [`Machine::Sparc`] for every pre-tag image.
    pub machine: Machine,
}

impl Image {
    /// Creates an empty image with the given segment load addresses.
    pub fn new(text_addr: u32, data_addr: u32) -> Image {
        Image {
            entry: text_addr,
            text_addr,
            text: Vec::new(),
            data_addr,
            data: Vec::new(),
            bss_size: 0,
            symbols: Vec::new(),
            machine: Machine::Sparc,
        }
    }

    /// Sets the machine tag, builder-style.
    pub fn with_machine(mut self, machine: Machine) -> Image {
        self.machine = machine;
        self
    }

    /// Is this image stripped (no symbols at all)?
    pub fn is_stripped(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Removes the entire symbol table, as `strip(1)` would.
    pub fn strip(&mut self) {
        self.symbols.clear();
    }

    /// End address (exclusive) of the text segment.
    pub fn text_end(&self) -> u32 {
        self.text_addr + self.text.len() as u32
    }

    /// End address (exclusive) of the data segment including bss.
    pub fn data_end(&self) -> u32 {
        self.data_addr + self.data.len() as u32 + self.bss_size
    }

    /// Does `addr` fall inside the text segment?
    pub fn in_text(&self, addr: u32) -> bool {
        addr >= self.text_addr && addr < self.text_end()
    }

    /// Does `addr` fall inside the data segment (including bss)?
    pub fn in_data(&self, addr: u32) -> bool {
        addr >= self.data_addr && addr < self.data_end()
    }

    /// Reads the big-endian word at an absolute address from whichever
    /// segment contains it. Returns `None` outside both segments or when
    /// unaligned; bss addresses read as `Some(0)`.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let (base, seg) = if self.in_text(addr) {
            (self.text_addr, &self.text)
        } else if self.in_data(addr) {
            if addr >= self.data_addr + self.data.len() as u32 {
                return Some(0);
            }
            (self.data_addr, &self.data)
        } else {
            return None;
        };
        let off = (addr - base) as usize;
        let bytes = seg.get(off..off + 4)?;
        Some(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Overwrites the big-endian word at an absolute address in place.
    /// Returns `false` if the address is not a writable word in text or
    /// initialized data.
    pub fn patch_word(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        let (base, seg) = if self.in_text(addr) {
            (self.text_addr, &mut self.text)
        } else if addr >= self.data_addr && addr + 4 <= self.data_addr + self.data.len() as u32 {
            (self.data_addr, &mut self.data)
        } else {
            return false;
        };
        let off = (addr - base) as usize;
        if off + 4 > seg.len() {
            return false;
        }
        seg[off..off + 4].copy_from_slice(&value.to_be_bytes());
        true
    }

    /// Iterates the text segment as `(address, word)` pairs.
    pub fn text_words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.text.chunks_exact(4).enumerate().map(move |(i, c)| {
            (
                self.text_addr + 4 * i as u32,
                u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
            )
        })
    }

    /// Finds the first symbol with this exact name.
    pub fn find_symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Checks structural invariants: aligned, non-overlapping segments and
    /// an entry point inside text.
    ///
    /// # Errors
    ///
    /// Returns [`WefError::Malformed`] describing the first violation.
    pub fn validate(&self) -> Result<(), WefError> {
        if !self.text_addr.is_multiple_of(4) {
            return Err(WefError::Malformed("text segment misaligned".into()));
        }
        if !self.text.len().is_multiple_of(4) {
            return Err(WefError::Malformed("text size not a multiple of 4".into()));
        }
        if !self.entry.is_multiple_of(4) || !self.in_text(self.entry) {
            return Err(WefError::Malformed(format!(
                "entry {:#x} not a text address",
                self.entry
            )));
        }
        let t = (self.text_addr as u64, self.text_end() as u64);
        let d = (self.data_addr as u64, self.data_end() as u64);
        if t.0 < d.1 && d.0 < t.1 {
            return Err(WefError::Malformed("text and data segments overlap".into()));
        }
        Ok(())
    }

    /// Serializes to the on-disk WEF encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let _obs = eel_obs::span("exe.emit");
        let mut strtab = Vec::<u8>::new();
        let mut symbytes = Vec::<u8>::new();
        for sym in &self.symbols {
            let off = strtab.len() as u32;
            strtab.extend_from_slice(sym.name.as_bytes());
            strtab.push(0);
            symbytes.extend_from_slice(&off.to_be_bytes());
            symbytes.extend_from_slice(&sym.value.to_be_bytes());
            symbytes.extend_from_slice(&sym.size.to_be_bytes());
            symbytes.push(sym.kind.to_byte());
            symbytes.push(sym.global as u8);
            symbytes.extend_from_slice(&[0, 0]);
        }
        let mut out = Vec::with_capacity(40 + self.text.len() + self.data.len());
        for word in [
            MAGIC,
            self.machine.to_byte() as u32, // flags: machine tag in the low byte
            self.entry,
            self.text_addr,
            self.text.len() as u32,
            self.data_addr,
            self.data.len() as u32,
            self.bss_size,
            self.symbols.len() as u32,
            strtab.len() as u32,
        ] {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out.extend_from_slice(&self.text);
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&symbytes);
        out.extend_from_slice(&strtab);
        out
    }

    /// Parses the on-disk WEF encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`WefError`] describing the first structural problem; a
    /// successfully parsed image is *not* [`Image::validate`]d (callers
    /// that need semantic well-formedness validate explicitly).
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, WefError> {
        let _obs = eel_obs::span("exe.parse");
        fn take_u32(bytes: &[u8], at: &mut usize, what: &'static str) -> Result<u32, WefError> {
            let slice = bytes
                .get(*at..*at + 4)
                .ok_or(WefError::Truncated { what })?;
            *at += 4;
            Ok(u32::from_be_bytes([slice[0], slice[1], slice[2], slice[3]]))
        }
        let mut at = 0;
        let magic = take_u32(bytes, &mut at, "magic")?;
        if magic != MAGIC {
            return Err(WefError::BadMagic(magic));
        }
        let flags = take_u32(bytes, &mut at, "flags")?;
        if flags & !0xff != 0 {
            return Err(WefError::Malformed(format!(
                "reserved flag bits set: {flags:#010x}"
            )));
        }
        let machine = Machine::from_byte((flags & 0xff) as u8)
            .ok_or_else(|| WefError::Malformed(format!("unknown machine tag {}", flags & 0xff)))?;
        let entry = take_u32(bytes, &mut at, "entry")?;
        let text_addr = take_u32(bytes, &mut at, "text_addr")?;
        let text_size = take_u32(bytes, &mut at, "text_size")? as usize;
        let data_addr = take_u32(bytes, &mut at, "data_addr")?;
        let data_size = take_u32(bytes, &mut at, "data_size")? as usize;
        let bss_size = take_u32(bytes, &mut at, "bss_size")?;
        let sym_count = take_u32(bytes, &mut at, "sym_count")? as usize;
        let str_size = take_u32(bytes, &mut at, "strtab_size")? as usize;

        let text = bytes
            .get(
                at..at.checked_add(text_size).ok_or(WefError::Truncated {
                    what: "text segment",
                })?,
            )
            .ok_or(WefError::Truncated {
                what: "text segment",
            })?
            .to_vec();
        at += text_size;
        let data = bytes
            .get(
                at..at.checked_add(data_size).ok_or(WefError::Truncated {
                    what: "data segment",
                })?,
            )
            .ok_or(WefError::Truncated {
                what: "data segment",
            })?
            .to_vec();
        at += data_size;

        let symtab_bytes = sym_count.checked_mul(16).ok_or(WefError::Truncated {
            what: "symbol table",
        })?;
        let symtab = bytes
            .get(
                at..at.checked_add(symtab_bytes).ok_or(WefError::Truncated {
                    what: "symbol table",
                })?,
            )
            .ok_or(WefError::Truncated {
                what: "symbol table",
            })?;
        at += symtab_bytes;
        let strtab = bytes
            .get(
                at..at.checked_add(str_size).ok_or(WefError::Truncated {
                    what: "string table",
                })?,
            )
            .ok_or(WefError::Truncated {
                what: "string table",
            })?;

        let mut symbols = Vec::with_capacity(sym_count.min(1 << 16));
        for entry_bytes in symtab.chunks_exact(16) {
            let name_off = u32::from_be_bytes(entry_bytes[0..4].try_into().unwrap());
            let value = u32::from_be_bytes(entry_bytes[4..8].try_into().unwrap());
            let size = u32::from_be_bytes(entry_bytes[8..12].try_into().unwrap());
            let kind = SymbolKind::from_byte(entry_bytes[12]).ok_or_else(|| {
                WefError::Malformed(format!("bad symbol kind {}", entry_bytes[12]))
            })?;
            let global = entry_bytes[13] != 0;
            let name_bytes = strtab
                .get(name_off as usize..)
                .ok_or(WefError::BadStringOffset(name_off))?;
            let end = name_bytes
                .iter()
                .position(|&b| b == 0)
                .ok_or(WefError::BadStringOffset(name_off))?;
            let name = String::from_utf8_lossy(&name_bytes[..end]).into_owned();
            symbols.push(Symbol {
                name,
                value,
                size,
                kind,
                global,
            });
        }

        Ok(Image {
            entry,
            text_addr,
            text,
            data_addr,
            data,
            bss_size,
            symbols,
            machine,
        })
    }

    /// Writes the image to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`WefError::Io`].
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<(), WefError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an image from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and parse failures.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Image, WefError> {
        let _obs = eel_obs::span("exe.load");
        Image::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        let mut img = Image::new(0x10000, 0x40000);
        img.text = vec![0; 16];
        img.text[0..4].copy_from_slice(&0x01000000u32.to_be_bytes());
        img.data = vec![1, 2, 3, 4, 5, 6, 7, 8];
        img.bss_size = 32;
        img.entry = 0x10004;
        img.symbols = vec![
            Symbol::routine("main", 0x10000),
            Symbol::object("table", 0x40000, 8),
            Symbol::label("L1", 0x10008),
            Symbol {
                name: "Ltmp.42".into(),
                value: 0x1000c,
                size: 0,
                kind: SymbolKind::Temp,
                global: false,
            },
        ];
        img
    }

    #[test]
    fn round_trip() {
        let img = sample();
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn validate_accepts_sample() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_entry_outside_text() {
        let mut img = sample();
        img.entry = 0x40000;
        assert!(matches!(img.validate(), Err(WefError::Malformed(_))));
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut img = sample();
        img.data_addr = 0x10004;
        assert!(matches!(img.validate(), Err(WefError::Malformed(_))));
    }

    #[test]
    fn word_access_across_segments() {
        let img = sample();
        assert_eq!(img.word_at(0x10000), Some(0x01000000));
        assert_eq!(img.word_at(0x40000), Some(0x01020304));
        assert_eq!(img.word_at(0x40004), Some(0x05060708));
        // bss reads as zero
        assert_eq!(img.word_at(0x40008), Some(0));
        // outside everything
        assert_eq!(img.word_at(0x90000), None);
        // misaligned
        assert_eq!(img.word_at(0x10002), None);
    }

    #[test]
    fn patch_word_updates_text_and_data() {
        let mut img = sample();
        assert!(img.patch_word(0x10004, 0xdeadbeef));
        assert_eq!(img.word_at(0x10004), Some(0xdeadbeef));
        assert!(img.patch_word(0x40004, 0xcafef00d));
        assert_eq!(img.word_at(0x40004), Some(0xcafef00d));
        // bss is not patchable (it has no backing bytes)
        assert!(!img.patch_word(0x40008, 1));
        assert!(!img.patch_word(0x10001, 1));
    }

    #[test]
    fn text_words_enumerates_in_order() {
        let img = sample();
        let words: Vec<_> = img.text_words().collect();
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], (0x10000, 0x01000000));
        assert_eq!(words[3].0, 0x1000c);
    }

    #[test]
    fn strip_removes_symbols() {
        let mut img = sample();
        assert!(!img.is_stripped());
        img.strip();
        assert!(img.is_stripped());
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert!(back.is_stripped());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Image::from_bytes(&bytes),
            Err(WefError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let bytes = sample().to_bytes();
        for cut in [2, 8, 39, 41, 50, bytes.len() - 1] {
            let err = Image::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WefError::Truncated { .. } | WefError::BadStringOffset(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn machine_tag_round_trips() {
        for machine in [Machine::Sparc, Machine::Mips, Machine::Alpha] {
            let img = sample().with_machine(machine);
            let bytes = img.to_bytes();
            assert_eq!(bytes[4..8], [0, 0, 0, machine.to_byte()]);
            let back = Image::from_bytes(&bytes).unwrap();
            assert_eq!(back.machine, machine);
            assert_eq!(back, img);
        }
    }

    #[test]
    fn zero_flags_word_reads_as_sparc() {
        // Pre-tag WEF emitters wrote flags = 0; those images must keep
        // loading, as SPARC.
        let mut bytes = sample().with_machine(Machine::Mips).to_bytes();
        bytes[4..8].copy_from_slice(&[0, 0, 0, 0]);
        let back = Image::from_bytes(&bytes).unwrap();
        assert_eq!(back.machine, Machine::Sparc);
    }

    #[test]
    fn unknown_machine_tag_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[7] = 0x7f;
        assert!(matches!(
            Image::from_bytes(&bytes),
            Err(WefError::Malformed(_))
        ));
        // Reserved high bits of the flags word are also rejected, so they
        // stay available for future extensions.
        let mut bytes = sample().to_bytes();
        bytes[4] = 1;
        assert!(matches!(
            Image::from_bytes(&bytes),
            Err(WefError::Malformed(_))
        ));
    }

    #[test]
    fn machine_names_round_trip() {
        for machine in [Machine::Sparc, Machine::Mips, Machine::Alpha] {
            assert_eq!(Machine::from_name(machine.name()), Some(machine));
            assert_eq!(Machine::from_byte(machine.to_byte()), Some(machine));
            assert_eq!(machine.to_string(), machine.name());
        }
        assert_eq!(Machine::from_name("vax"), None);
        assert_eq!(Machine::from_byte(3), None);
    }

    #[test]
    fn find_symbol_by_name() {
        let img = sample();
        assert_eq!(img.find_symbol("table").unwrap().value, 0x40000);
        assert!(img.find_symbol("nope").is_none());
    }

    #[test]
    fn file_round_trip() {
        let img = sample();
        let dir = std::env::temp_dir().join("eel-exe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.wef");
        img.write_file(&path).unwrap();
        let back = Image::read_file(&path).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn errors_display() {
        // C-GOOD-ERR: every error formats meaningfully.
        for err in [
            WefError::BadMagic(1),
            WefError::Truncated { what: "x" },
            WefError::BadStringOffset(3),
            WefError::Malformed("m".into()),
            WefError::Io("io".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
