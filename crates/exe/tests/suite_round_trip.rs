//! WEF round-trip identity over real compiler output: every progen suite
//! program, under both compiler personalities, must survive
//! load → write → load unchanged. The arbitrary-image property tests in
//! `props.rs` cover the format's corners; this covers the images the
//! rest of the system (and eel-serve's content-addressed cache) actually
//! traffics in — the cache keys on the serialized bytes, so
//! re-serialization must be byte-identical, not just structurally equal.

use eel_cc::Personality;
use eel_exe::Image;

#[test]
fn progen_suite_round_trips_to_identical_bytes() {
    for w in eel_progen::suite() {
        for personality in [Personality::Gcc, Personality::SunPro] {
            let image = eel_progen::compile(&w, personality).expect("compile workload");
            let bytes = image.to_bytes();
            let reloaded = Image::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{} ({personality:?}): reload failed: {e}", w.name));

            assert_eq!(
                reloaded, image,
                "{} ({personality:?}): structural identity",
                w.name
            );
            assert_eq!(
                reloaded.to_bytes(),
                bytes,
                "{} ({personality:?}): byte-identical re-serialization",
                w.name
            );
            reloaded
                .validate()
                .unwrap_or_else(|e| panic!("{} ({personality:?}): re-validate: {e}", w.name));
        }
    }
}

#[test]
fn degraded_symbol_tables_round_trip_too() {
    // The robustness workloads (degraded/stripped symbols) flow through
    // the same serialization path; they must round-trip as exactly.
    for (i, w) in eel_progen::suite().into_iter().enumerate() {
        let mut image = eel_progen::compile(&w, Personality::Gcc).expect("compile workload");
        eel_progen::degrade_symbols(&mut image, i as u64);
        let bytes = image.to_bytes();
        let reloaded = Image::from_bytes(&bytes).expect("reload degraded image");
        assert_eq!(reloaded, image, "{}: degraded identity", w.name);
        assert_eq!(reloaded.to_bytes(), bytes, "{}: degraded bytes", w.name);
    }
}
