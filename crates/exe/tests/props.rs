//! Property tests for the WEF format: serialization round trips and
//! parser robustness against arbitrary and mutated inputs.

use eel_exe::{Image, Machine, Symbol, SymbolKind};
use proptest::prelude::*;

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    (
        "[a-zA-Z_.$][a-zA-Z0-9_.$]{0,12}",
        any::<u32>(),
        any::<u32>(),
        0u8..5,
        any::<bool>(),
    )
        .prop_map(|(name, value, size, kind, global)| Symbol {
            name,
            value,
            size,
            kind: match kind {
                0 => SymbolKind::Routine,
                1 => SymbolKind::Object,
                2 => SymbolKind::Label,
                3 => SymbolKind::Debug,
                _ => SymbolKind::Temp,
            },
            global,
        })
}

fn arb_image() -> impl Strategy<Value = Image> {
    (
        prop::collection::vec(any::<u8>(), 0..256),
        prop::collection::vec(any::<u8>(), 0..128),
        prop::collection::vec(arb_symbol(), 0..8),
        0u32..1024,
        any::<u32>(),
        0u8..3,
    )
        .prop_map(|(mut text, data, symbols, bss, entry, machine)| {
            text.truncate(text.len() & !3); // word-sized text
            Image {
                entry,
                text_addr: 0x10000,
                text,
                data_addr: 0x40000,
                data,
                bss_size: bss,
                symbols,
                machine: Machine::from_byte(machine).unwrap(),
            }
        })
}

proptest! {
    /// to_bytes ∘ from_bytes = identity.
    #[test]
    fn round_trip(image in arb_image()) {
        let back = Image::from_bytes(&image.to_bytes()).unwrap();
        prop_assert_eq!(back, image);
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Image::from_bytes(&bytes);
    }

    /// The parser never panics on mutated valid files (every error is a
    /// structured WefError).
    #[test]
    fn parser_total_on_mutations(
        image in arb_image(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = image.to_bytes();
        for (idx, val) in flips {
            if bytes.is_empty() {
                break;
            }
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        let _ = Image::from_bytes(&bytes);
    }

    /// Truncation at any point yields an error, never a panic or a
    /// silently wrong image.
    #[test]
    fn truncation_is_detected(image in arb_image(), cut in any::<prop::sample::Index>()) {
        let bytes = image.to_bytes();
        let n = cut.index(bytes.len().max(1));
        if n < bytes.len() {
            prop_assert!(Image::from_bytes(&bytes[..n]).is_err());
        }
    }

    /// word_at/patch_word agree on every aligned address.
    #[test]
    fn word_accessors_agree(image in arb_image(), off in 0u32..64, value in any::<u32>()) {
        let mut image = image;
        let addr = image.text_addr + off * 4;
        if image.patch_word(addr, value) {
            prop_assert_eq!(image.word_at(addr), Some(value));
        }
    }
}
