//! Tests for the spawn code generator: the emitted Rust must be
//! well-formed (it compiles standalone with rustc, like spawn's generated
//! C++ compiled standalone), complete (every instruction appears), and
//! large relative to the description (the paper's 6,178-vs-145 point).

use eel_spawn::{description_lines, generate_rust, sparc_machine, SPARC};
use std::process::Command;

#[test]
fn generated_rust_compiles_standalone() {
    let machine = sparc_machine().unwrap();
    let src = generate_rust(&machine);
    let dir = std::env::temp_dir().join("eel-spawn-codegen");
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join("generated_sparc.rs");
    let out_path = dir.join("generated_sparc.rlib");
    std::fs::write(&src_path, &src).unwrap();
    let output = Command::new("rustc")
        .args(["--edition", "2021", "--crate-type", "lib", "-o"])
        .arg(&out_path)
        .arg(&src_path)
        .output()
        .expect("rustc is available wherever cargo test runs");
    assert!(
        output.status.success(),
        "generated code failed to compile:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn generated_rust_is_complete_and_dwarfs_description() {
    let machine = sparc_machine().unwrap();
    let src = generate_rust(&machine);
    // Every declared instruction appears in the decoder.
    for spec in machine.instructions() {
        assert!(
            src.contains(&format!("\"{}\"", spec.name)),
            "{} missing from generated decoder",
            spec.name
        );
    }
    // Every field has an extractor.
    for f in &machine.description().fields {
        assert!(src.contains(&format!("pub fn field_{}", f.name)));
    }
    // reads/writes analysis functions exist.
    assert!(src.contains("pub fn reads"));
    assert!(src.contains("pub fn writes"));
    // Size relation (paper: 6,178 generated vs 145 description).
    let desc = description_lines(SPARC);
    let generated = src.lines().count();
    assert!(
        generated > 7 * desc,
        "generated {generated} lines vs description {desc}"
    );
}

#[test]
fn generated_mips_and_alpha_also_compile() {
    for build in [eel_spawn::mips_machine, eel_spawn::alpha_machine] {
        let machine = build().unwrap();
        let src = generate_rust(&machine);
        let dir = std::env::temp_dir().join("eel-spawn-codegen");
        std::fs::create_dir_all(&dir).unwrap();
        let name = machine.description().machine.clone();
        let src_path = dir.join(format!("generated_{name}.rs"));
        std::fs::write(&src_path, &src).unwrap();
        let output = Command::new("rustc")
            .args(["--edition", "2021", "--crate-type", "lib", "-o"])
            .arg(dir.join(format!("generated_{name}.rlib")))
            .arg(&src_path)
            .output()
            .expect("rustc runs");
        assert!(
            output.status.success(),
            "{name}: generated code failed to compile:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
