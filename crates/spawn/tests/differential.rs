//! Differential tests: the spawn-derived SPARC machine layer must agree
//! with the handwritten `eel-isa` layer — decode validity, classification
//! (through the Figure 6 shim), per-instance reads/writes, and execution
//! semantics. This is the reproduction's evidence for the paper's claim
//! that a 145-line description replaces 2,268 handwritten lines, and that
//! "the spawn-generated code ran at the same speed" — functionally, here,
//! *behaved identically*.

use eel_isa::{decode as hw_decode, Category, MachineState, Memory, Reg, StepEvent};
use eel_spawn::{sparc_machine, sparc_shim, Machine, SpawnEvent, SpawnState};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(|| sparc_machine().unwrap())
}

fn spawn_category(m: &Machine, word: u32) -> Category {
    match m.decode(word) {
        None => Category::Invalid,
        Some(d) => sparc_shim::category(m, &d),
    }
}

/// Maps spawn's (set, index) register naming to eel-isa resources.
fn to_reg(set: &str, i: u32) -> Option<Reg> {
    match set {
        "R" => Some(Reg(i as u8)),
        "ICC" => Some(Reg::ICC),
        "Y" => Some(Reg::Y),
        _ => None,
    }
}

fn regset(list: Vec<(String, u32)>) -> BTreeSet<Reg> {
    list.into_iter()
        .filter_map(|(s, i)| to_reg(&s, i))
        .collect()
}

#[derive(Default, Clone, PartialEq, Debug)]
struct TestMem(HashMap<u32, u8>);

impl Memory for TestMem {
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..bytes {
            v = (v << 8) | *self.0.get(&addr.wrapping_add(i)).unwrap_or(&0) as u32;
        }
        Some(v)
    }
    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
        for i in 0..bytes {
            self.0
                .insert(addr.wrapping_add(i), (value >> (8 * (bytes - 1 - i))) as u8);
        }
        Some(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4096,
        max_global_rejects: 262144,
        ..ProptestConfig::default()
    })]

    /// Validity: a word decodes in spawn iff it decodes in the handwritten
    /// layer (total agreement on what is an instruction vs data).
    #[test]
    fn decode_validity_agrees(word in any::<u32>()) {
        let machine = sparc_machine().unwrap();
        // `unimp` is a defined encoding with no executable semantics, so
        // validity is judged at the category level in both layers.
        let hw_valid = !matches!(hw_decode(word).category(), Category::Invalid);
        let sp = machine.decode(word);
        let sp_valid = sp
            .map(|d| d.spec.class != eel_spawn::Class::Invalid)
            .unwrap_or(false);
        prop_assert_eq!(hw_valid, sp_valid, "word {:#010x}", word);
    }

    /// Classification: identical EEL categories through the Figure 6 shim.
    #[test]
    fn classification_agrees(word in any::<u32>()) {
        let machine = machine();
        let hw = hw_decode(word).category();
        let sp = spawn_category(machine, word);
        prop_assert_eq!(hw, sp, "word {:#010x} ({})", word, hw_decode(word));
    }

    /// Dataflow: identical reads/writes sets for every non-system valid
    /// instruction (system calls involve kernel conventions the paper
    /// handles in the annotated shim, not in descriptions).
    #[test]
    fn reads_writes_agree(word in any::<u32>()) {
        let machine = machine();
        let hw = hw_decode(word);
        let cat = hw.category();
        prop_assume!(!matches!(cat, Category::Invalid | Category::SystemCall));
        prop_assume!(!hw.reads_fp());
        let Some(d) = machine.decode(word) else {
            return Err(TestCaseError::fail("spawn failed to decode a valid word"));
        };
        // Decode-only overrides (fp) have no semantics: skip.
        if matches!(d.spec.name.as_str(), "ldf" | "stf") || d.spec.name.starts_with("fb") {
            return Ok(());
        }
        let hw_reads: BTreeSet<Reg> = hw.reads().iter().collect();
        let hw_writes: BTreeSet<Reg> = hw.writes().iter().collect();
        let sp_reads = regset(machine.reads(&d));
        let sp_writes = regset(machine.writes(&d));
        prop_assert_eq!(&hw_reads, &sp_reads, "reads of {} ({:#010x})", hw, word);
        prop_assert_eq!(&hw_writes, &sp_writes, "writes of {} ({:#010x})", hw, word);
    }

    /// Memory width: identical `{{WIDTH}}` attribute (Figure 6's
    /// annotation) wherever the handwritten layer reports one.
    #[test]
    fn mem_width_agrees(word in any::<u32>()) {
        let machine = machine();
        let hw = hw_decode(word);
        prop_assume!(hw.mem_width().is_some());
        // Doubleword transfers are described as two word accesses.
        let hw_w = hw.mem_width().unwrap().min(4);
        let Some(d) = machine.decode(word) else {
            return Err(TestCaseError::fail("spawn failed to decode"));
        };
        if matches!(d.spec.name.as_str(), "ldf" | "stf") {
            return Ok(());
        }
        prop_assert_eq!(Some(hw_w), machine.mem_width(&d));
    }

    /// Execution: running an instruction through the spawn evaluator
    /// produces the same state and memory as the handwritten semantics.
    #[test]
    fn execution_agrees(
        word in any::<u32>(),
        regs in prop::array::uniform32(any::<u32>()),
        icc in 0u8..16,
        y in any::<u32>(),
    ) {
        let machine = machine();
        let hw = hw_decode(word);
        prop_assume!(!matches!(hw.category(), Category::Invalid));
        prop_assume!(!hw.reads_fp());
        let Some(d) = machine.decode(word) else {
            return Err(TestCaseError::fail("spawn failed to decode"));
        };
        if matches!(d.spec.name.as_str(), "ldf" | "stf") || d.spec.name.starts_with("fb") {
            return Ok(());
        }

        let pc = 0x0001_0000u32;
        let mut hw_state = MachineState::new(pc);
        hw_state.regs = regs;
        hw_state.regs[0] = 0;
        // Keep addresses aligned enough that ldd/std (modeled as two word
        // accesses) agree on faults with the hardware's 8-byte rule.
        for r in hw_state.regs.iter_mut() {
            *r &= !7;
        }
        hw_state.icc = icc;
        hw_state.y = y;
        let mut sp_state = SpawnState::new(pc);
        sp_state.r = hw_state.regs;
        sp_state.icc = icc;
        sp_state.y = y;

        let mut hw_mem = TestMem::default();
        let mut sp_mem = hw_mem.clone();
        let hw_ev = eel_isa::step(&mut hw_state, &mut hw_mem, hw);
        let sp_ev = machine.execute(&d, &mut sp_state, &mut sp_mem).unwrap();

        // Documented modeling difference: the description expresses
        // doubleword transfers as two word accesses, so it misses the
        // hardware's 8-byte alignment rule.
        if matches!(d.spec.name.as_str(), "ldd" | "std")
            && matches!(hw_ev, StepEvent::MemFault(_))
        {
            return Ok(());
        }
        let same_event = match (hw_ev, sp_ev) {
            (StepEvent::Ok, SpawnEvent::Ok) => true,
            (StepEvent::Trap(a), SpawnEvent::Trap(b)) => a == b,
            (StepEvent::Illegal, SpawnEvent::Illegal) => true,
            (StepEvent::MemFault(a), SpawnEvent::MemFault(b)) => a == b,
            (StepEvent::DivZero, SpawnEvent::DivZero) => true,
            (StepEvent::BadJump(a), SpawnEvent::BadJump(b)) => a == b,
            _ => false,
        };
        prop_assert!(
            same_event,
            "event mismatch for {} ({:#010x}): hw {:?} vs spawn {:?}",
            hw, word, hw_ev, sp_ev
        );
        // Full state comparison only for completed instructions (faulting
        // paths differ benignly in how much partial state they leave).
        if matches!(hw_ev, StepEvent::Ok | StepEvent::Trap(_)) {
            prop_assert_eq!(hw_state.regs, sp_state.r, "registers after {} ({:#010x})", hw, word);
            prop_assert_eq!(hw_state.icc, sp_state.icc, "icc after {}", hw);
            prop_assert_eq!(hw_state.y, sp_state.y, "y after {}", hw);
            prop_assert_eq!(hw_state.pc, sp_state.pc, "pc after {}", hw);
            prop_assert_eq!(hw_state.npc, sp_state.npc, "npc after {} ({:#010x})", hw, word);
            prop_assert_eq!(hw_state.annul, sp_state.annul, "annul after {}", hw);
            prop_assert_eq!(&hw_mem, &sp_mem, "memory after {}", hw);
        }
    }
}

#[test]
fn decoder_is_unambiguous_on_a_large_sample() {
    // No word may match two different spawn patterns (the derived decoder
    // must be a function). Exhaustive is too slow; a structured sweep over
    // op/op2/op3 values with random other bits covers every opcode cell.
    let machine = machine();
    let mut rng: u32 = 0x12345678;
    for op in 0..4u32 {
        for sub in 0..64u32 {
            for _ in 0..64 {
                rng = rng.wrapping_mul(1664525).wrapping_add(1013904223);
                let word = (op << 30) | (sub << 19) | (rng & 0x7ffff) | (rng & 0x3fc00000) >> 1;
                let matches: Vec<&str> = machine
                    .instructions()
                    .iter()
                    .filter(|i| {
                        machine
                            .decode(word)
                            .map(|d| std::ptr::eq(d.spec, *i))
                            .unwrap_or(false)
                    })
                    .map(|i| i.name.as_str())
                    .collect();
                assert!(matches.len() <= 1, "{word:#x} matched {matches:?}");
            }
        }
    }
}

#[test]
fn spawn_decodes_whole_compiled_programs() {
    // Every instruction the compiler emits must decode and classify
    // identically in both layers (an end-to-end sweep, not just random
    // words).
    let machine = machine();
    let image = eel_cc::compile_str(
        r#"
        global table[16];
        fn f(n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); }
        fn main() {
            var i;
            for (i = 0; i < 10; i = i + 1) {
                switch (i % 4) {
                    case 0: { table[i] = f(i); }
                    case 1: { table[i] = i * 3; }
                    case 2: { table[i] = i / 2; }
                    default: { table[i] = 0 - i; }
                }
            }
            print(table[9]);
            return table[5];
        }"#,
        &eel_cc::Options::default(),
    )
    .unwrap();
    let mut checked = 0;
    for (_, word) in image.text_words() {
        let hw = hw_decode(word).category();
        let sp = spawn_category(machine, word);
        assert_eq!(hw, sp, "word {word:#010x}");
        checked += 1;
    }
    assert!(checked > 100);
}
