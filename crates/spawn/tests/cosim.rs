//! Lockstep co-simulation: run whole compiled programs instruction by
//! instruction under BOTH the handwritten semantics (`eel_isa::step`) and
//! the spawn-derived evaluator, comparing full architectural state after
//! every instruction. This is the strongest form of §4's claim that spawn
//! "replicates the computation" of the handwritten layer.

use eel_isa::{decode, MachineState, Memory, StepEvent};
use eel_spawn::{sparc_machine, SpawnEvent, SpawnState};
use std::collections::HashMap;

#[derive(Default, Clone, PartialEq)]
struct Mem(HashMap<u32, u8>);

impl Memory for Mem {
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..bytes {
            v = (v << 8) | *self.0.get(&addr.wrapping_add(i)).unwrap_or(&0) as u32;
        }
        Some(v)
    }
    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
        for i in 0..bytes {
            self.0
                .insert(addr.wrapping_add(i), (value >> (8 * (bytes - 1 - i))) as u8);
        }
        Some(())
    }
}

fn load_image(image: &eel_exe::Image) -> Mem {
    let mut mem = Mem::default();
    for (i, &b) in image.text.iter().enumerate() {
        mem.0.insert(image.text_addr + i as u32, b);
    }
    for (i, &b) in image.data.iter().enumerate() {
        mem.0.insert(image.data_addr + i as u32, b);
    }
    mem
}

/// Runs `image` in lockstep under both semantics until `exit` or `limit`
/// instructions; panics on any state divergence. Returns steps executed.
fn cosimulate(image: &eel_exe::Image, limit: u64) -> u64 {
    let machine = sparc_machine().unwrap();
    let mut hw = MachineState::new(image.entry);
    hw.set_reg(eel_isa::Reg::SP, 0x7fff_0000);
    let mut sp = SpawnState::new(image.entry);
    sp.r = hw.regs;
    let mut hw_mem = load_image(image);
    let mut sp_mem = hw_mem.clone();

    for step in 0..limit {
        assert_eq!(hw.pc, sp.pc, "pc diverged at step {step}");
        let word = hw_mem.load(hw.pc, 4).unwrap();
        let insn = decode(word);
        // Skip along annulled slots in both, uniformly.
        let hw_ev = eel_isa::step(&mut hw, &mut hw_mem, insn);
        let sp_ev = if sp.annul {
            sp.annul = false;
            sp.pc = sp.npc;
            sp.npc = sp.npc.wrapping_add(4);
            SpawnEvent::Ok
        } else {
            match machine.decode(word) {
                Some(d) => machine.execute(&d, &mut sp, &mut sp_mem).unwrap(),
                None => SpawnEvent::Illegal,
            }
        };
        match (hw_ev, sp_ev) {
            (StepEvent::Ok, SpawnEvent::Ok) => {}
            (StepEvent::Trap(0), SpawnEvent::Trap(0)) => {
                // Service the system call identically on both sides.
                let number = hw.reg(eel_isa::Reg::G1);
                assert_eq!(number, sp.r[1], "syscall number diverged");
                match number {
                    1 => return step + 1, // exit
                    4 => {
                        // write: no observable register effects beyond o0.
                        let len = hw.reg(eel_isa::Reg(10));
                        hw.set_reg(eel_isa::Reg::O0, len);
                        sp.r[8] = len;
                    }
                    13 => {
                        hw.set_reg(eel_isa::Reg::O0, step as u32);
                        sp.r[8] = step as u32;
                    }
                    other => panic!("unexpected syscall {other} at step {step}"),
                }
            }
            (a, b) => panic!(
                "event divergence at step {step} pc {:#x} ({}): hw {a:?} vs spawn {b:?}",
                hw.pc,
                decode(word)
            ),
        }
        assert_eq!(
            hw.regs,
            sp.r,
            "registers diverged after step {step} ({})",
            decode(word)
        );
        assert_eq!(
            hw.icc,
            sp.icc,
            "icc diverged after step {step} ({})",
            decode(word)
        );
        assert_eq!(hw.y, sp.y, "y diverged after step {step}");
        assert_eq!(
            hw.npc,
            sp.npc,
            "npc diverged after step {step} ({})",
            decode(word)
        );
        assert_eq!(hw.annul, sp.annul, "annul diverged after step {step}");
    }
    assert_eq!(hw_mem.0, sp_mem.0, "memory diverged by the step limit");
    limit
}

#[test]
fn cosimulate_representative_program() {
    let image = eel_cc::compile_str(
        r#"
        global table[16];
        fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn classify(x) {
            switch (x % 4) {
                case 0: { return 1; }
                case 1: { return 2; }
                case 2: { return 3; }
                default: { return 4; }
            }
        }
        fn main() {
            var i; var t = 0;
            for (i = 0; i < 12; i = i + 1) {
                table[i] = classify(i) * fib(i % 8);
                t = t + table[i];
            }
            print(t);
            return t & 255;
        }"#,
        &eel_cc::Options::default(),
    )
    .unwrap();
    let steps = cosimulate(&image, 2_000_000);
    assert!(steps > 2_000, "ran a real amount of work: {steps}");
}

#[test]
fn cosimulate_the_suite_prefix() {
    // The first chunk of every suite workload under both personalities:
    // annulled branches, delay-slot folds, tail calls, division — all in
    // lockstep.
    for w in eel_progen::suite() {
        for personality in [eel_cc::Personality::Gcc, eel_cc::Personality::SunPro] {
            let image = eel_progen::compile(&w, personality).unwrap();
            let steps = cosimulate(&image, 150_000);
            assert!(steps > 1_000, "{}: {steps}", w.name);
        }
    }
}

#[test]
fn cosimulate_random_programs() {
    for seed in 0..8u64 {
        let program = eel_progen::random_program(seed, &eel_progen::GenConfig::default());
        let image = match eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            Ok(i) => i,
            Err(_) => continue,
        };
        cosimulate(&image, 200_000);
    }
}
