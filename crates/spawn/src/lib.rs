//! # eel-spawn: the machine-description system (paper §4)
//!
//! The paper's `spawn` tool turns a concise machine description — fields,
//! registers, instruction encodings, and register-transfer semantics
//! (Figure 7) — into the machine-specific layer that EEL needs: a decoder
//! that reliably detects invalid instructions, a classifier, per-instance
//! reads/writes analysis, and code that replicates instruction
//! computation. Handwritten, that layer was 2,268 lines; described, 145.
//!
//! This crate reproduces the design:
//!
//! * [`parse`] reads the description language ([`ast`]).
//! * [`Machine::build`] derives the decoder ([`Machine::decode`]),
//!   classifier, dataflow analysis ([`Machine::reads`] /
//!   [`Machine::writes`]), and a semantic interpreter
//!   ([`Machine::execute`]) — all differentially tested against the
//!   handwritten `eel-isa` layer.
//! * [`generate_rust`] emits standalone Rust source, the analog of
//!   spawn's generated C++ (experiment E-LOC counts its lines).
//!
//! Shipped descriptions: [`SPARC`], [`MIPS`], [`ALPHA`] (the three
//! machines the paper measured description sizes for).
//!
//! ## Example
//!
//! ```
//! let machine = eel_spawn::sparc_machine()?;
//! // `bne,a .+16` — decode and classify without any handwritten code.
//! let d = machine.decode(0x32800004).expect("valid");
//! assert_eq!(d.spec.name, "bne");
//! assert_eq!(d.spec.class, eel_spawn::Class::Branch);
//! assert_eq!(machine.field("cond", d.word), 9);
//! # Ok::<(), eel_spawn::SpawnError>(())
//! ```

pub mod ast;
mod codegen;
mod eval;
mod machine;
mod parse;
pub mod sparc_shim;

pub use codegen::generate_rust;
pub use eval::{SpawnEvent, SpawnState};
pub use machine::{Class, Decoded, InsnSpec, Machine};
pub use parse::parse;

use std::fmt;

/// The SPARC V8 subset description (the target machine of this repo).
pub const SPARC: &str = include_str!("../descriptions/sparc.spawn");
/// The MIPS R2000 subset description.
pub const MIPS: &str = include_str!("../descriptions/mips.spawn");
/// The Digital Alpha subset description.
pub const ALPHA: &str = include_str!("../descriptions/alpha.spawn");

/// Errors from parsing or deriving a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// Lexical/syntactic problem.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Name-resolution or consistency problem.
    Semantic(String),
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpawnError::Semantic(m) => write!(f, "description error: {m}"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Parses and derives the shipped SPARC machine.
///
/// # Errors
///
/// Only if the bundled description is broken (a crate bug).
pub fn sparc_machine() -> Result<Machine, SpawnError> {
    Machine::build(parse(SPARC)?)
}

/// Parses and derives the shipped MIPS machine.
///
/// # Errors
///
/// Only if the bundled description is broken (a crate bug).
pub fn mips_machine() -> Result<Machine, SpawnError> {
    Machine::build(parse(MIPS)?)
}

/// Parses and derives the shipped Alpha machine.
///
/// # Errors
///
/// Only if the bundled description is broken (a crate bug).
pub fn alpha_machine() -> Result<Machine, SpawnError> {
    Machine::build(parse(ALPHA)?)
}

/// Counts non-comment, non-blank lines of a description (the paper's
/// conciseness metric: SPARC 145, MIPS 128, Alpha 138).
pub fn description_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('!'))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shipped_descriptions_build() {
        sparc_machine().unwrap();
        mips_machine().unwrap();
        alpha_machine().unwrap();
    }

    #[test]
    fn description_line_counts_are_concise() {
        // The paper: SPARC 145, MIPS 128, Alpha 138. Ours are in the same
        // ballpark (smaller subsets, smaller counts).
        let s = description_lines(SPARC);
        let m = description_lines(MIPS);
        let a = description_lines(ALPHA);
        assert!((60..=160).contains(&s), "sparc: {s}");
        assert!((50..=140).contains(&m), "mips: {m}");
        assert!((40..=140).contains(&a), "alpha: {a}");
    }

    #[test]
    fn generated_rust_is_substantial() {
        let machine = sparc_machine().unwrap();
        let src = generate_rust(&machine);
        assert!(src.contains("pub fn decode"));
        assert!(src.contains("field_op3"));
        assert!(src.contains("\"jmpl\""));
        // The generated file dwarfs the description (paper: 6,178 vs 145).
        assert!(
            src.lines().count() > 3 * description_lines(SPARC),
            "generated: {} lines",
            src.lines().count()
        );
    }

    #[test]
    fn mips_decode_spot_checks() {
        let m = mips_machine().unwrap();
        // addu $v0, $a0, $a1 = 0x00851021
        let d = m.decode(0x0085_1021).unwrap();
        assert_eq!(d.spec.name, "addu");
        assert_eq!(d.spec.class, Class::Computation);
        // lw $t0, 4($sp) = 0x8fa80004
        let d = m.decode(0x8fa8_0004).unwrap();
        assert_eq!(d.spec.name, "lw");
        assert_eq!(d.spec.class, Class::Load);
        // jr $ra = 0x03e00008
        let d = m.decode(0x03e0_0008).unwrap();
        assert_eq!(d.spec.name, "jr");
        assert_eq!(d.spec.class, Class::IndirectJump);
        // jal 0x100 = 0x0c000040
        let d = m.decode(0x0c00_0040).unwrap();
        assert_eq!(d.spec.name, "jal");
        assert_eq!(d.spec.class, Class::DirectJump);
        assert!(d.spec.links);
        // beq $zero, $zero, +1
        let d = m.decode(0x1000_0001).unwrap();
        assert_eq!(d.spec.name, "beq");
        assert_eq!(d.spec.class, Class::Branch);
        // sw $t0, 0($sp)
        let d = m.decode(0xafa8_0000).unwrap();
        assert_eq!(d.spec.name, "sw");
        assert_eq!(d.spec.class, Class::Store);
    }

    #[test]
    fn alpha_decode_spot_checks() {
        let m = alpha_machine().unwrap();
        // lda r1, 8(r2) : opcode 8, ra=1, rb=2, disp=8
        let w = (8 << 26) | (1 << 21) | (2 << 16) | 8;
        let d = m.decode(w).unwrap();
        assert_eq!(d.spec.name, "lda");
        assert_eq!(d.spec.class, Class::Computation);
        // ldl r3, 0(r4)
        let w = (40 << 26) | (3 << 21) | (4 << 16);
        assert_eq!(m.decode(w).unwrap().spec.name, "ldl");
        // ret (opcode 26, jkind=2)
        let w = (26 << 26) | (2 << 14);
        let d = m.decode(w).unwrap();
        assert_eq!(d.spec.name, "ret");
        assert_eq!(d.spec.class, Class::IndirectJump);
        // bsr links
        let w = 52 << 26;
        assert!(m.decode(w).unwrap().spec.links);
    }

    #[test]
    fn mips_reads_writes() {
        let m = mips_machine().unwrap();
        // addu $2, $4, $5
        let d = m.decode(0x0085_1021).unwrap();
        let reads = m.reads(&d);
        assert!(reads.contains(&("R".into(), 4)));
        assert!(reads.contains(&("R".into(), 5)));
        assert_eq!(m.writes(&d), vec![("R".into(), 2)]);
        // sw reads both address base and the stored value.
        let d = m.decode(0xafa8_0000).unwrap();
        let reads = m.reads(&d);
        assert!(reads.contains(&("R".into(), 29)));
        assert!(reads.contains(&("R".into(), 8)));
        assert!(m.writes(&d).is_empty());
    }

    #[test]
    fn mips_static_targets() {
        let m = mips_machine().unwrap();
        // beq $0, $0, +1 at 0x1000: target = pc + 4 + (1 << 2).
        let d = m.decode(0x1000_0001).unwrap();
        assert_eq!(m.static_target(&d, 0x1000), Some(0x1008));
        // bne with a negative displacement (-2).
        let d = m.decode(0x1485_fffe).unwrap();
        assert_eq!(d.spec.name, "bne");
        assert_eq!(m.static_target(&d, 0x1000), Some(0x1000 + 4 - 8));
        // jal 0x100: pseudo-absolute within the current 256 MB region.
        let d = m.decode(0x0c00_0040).unwrap();
        assert_eq!(m.static_target(&d, 0x1000), Some(0x100));
        // jr $ra has no static target; addu has none at all.
        let d = m.decode(0x03e0_0008).unwrap();
        assert_eq!(m.static_target(&d, 0x1000), None);
        let d = m.decode(0x0085_1021).unwrap();
        assert_eq!(m.static_target(&d, 0x1000), None);
    }

    #[test]
    fn sparc_static_targets() {
        let m = sparc_machine().unwrap();
        // call .+16 — disp30 of 4.
        let d = m.decode(0x4000_0004).unwrap();
        assert_eq!(m.static_target(&d, 0x2000), Some(0x2010));
        // bne .+16 — conditional targets resolve too.
        let d = m.decode(0x3280_0004).unwrap();
        assert_eq!(m.static_target(&d, 0x2000), Some(0x2010));
    }

    #[test]
    fn mips_divide_semantics() {
        struct NoMem;
        impl eel_isa::Memory for NoMem {
            fn load(&mut self, _: u32, _: u32) -> Option<u32> {
                None
            }
            fn store(&mut self, _: u32, _: u32, _: u32) -> Option<()> {
                None
            }
        }
        let m = mips_machine().unwrap();
        let div = 0x008f_001a; // div $4, $15 (funct 26)
        let divu = 0x008f_001b;
        let cases: [(u32, u32); 6] = [
            (7, 2),
            (0x8000_0000, 2),
            ((-7i32) as u32, 2),
            (7, (-2i32) as u32),
            (0x8000_0000, (-1i32) as u32),
            (0xffff_fff1, 3),
        ];
        for (a, b) in cases {
            let mut st = SpawnState::new(0x1000);
            st.r[4] = a;
            st.r[15] = b;
            let d = m.decode(div).unwrap();
            assert_eq!(m.execute(&d, &mut st, &mut NoMem).unwrap(), SpawnEvent::Ok);
            // LO/HI mirror i64 truncating division clamped to i32, with a
            // consistent remainder (a == q*b + r).
            let q = ((a as i32 as i64) / (b as i32 as i64)).clamp(i32::MIN as i64, i32::MAX as i64)
                as i32;
            assert_eq!(st.lo, q as u32, "div {a:#x}/{b:#x} quotient");
            assert_eq!(
                st.hi,
                (a as i32).wrapping_sub(q.wrapping_mul(b as i32)) as u32,
                "div {a:#x}/{b:#x} remainder"
            );
            let mut st = SpawnState::new(0x1000);
            st.r[4] = a;
            st.r[15] = b;
            let d = m.decode(divu).unwrap();
            assert_eq!(m.execute(&d, &mut st, &mut NoMem).unwrap(), SpawnEvent::Ok);
            assert_eq!(st.lo, a / b, "divu {a:#x}/{b:#x} quotient");
            assert_eq!(st.hi, a % b, "divu {a:#x}/{b:#x} remainder");
        }
        // Division by zero surfaces as the DivZero event, like SPARC sdiv.
        let mut st = SpawnState::new(0x1000);
        st.r[4] = 5;
        let d = m.decode(div).unwrap();
        assert_eq!(
            m.execute(&d, &mut st, &mut NoMem).unwrap(),
            SpawnEvent::DivZero
        );
        // div now reports HI and LO as written, so liveness sees both.
        let writes = m.writes(&d);
        assert!(writes.contains(&("HI".into(), 0)));
        assert!(writes.contains(&("LO".into(), 0)));
    }

    #[test]
    fn errors_display() {
        for e in [
            SpawnError::Parse {
                line: 3,
                message: "x".into(),
            },
            SpawnError::Semantic("y".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
