//! Parser for the spawn machine-description language.

use crate::ast::*;
use crate::SpawnError;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u32),
    Punct(&'static str),
}

const PUNCTS: &[&str] = &[
    ":=", "&&", "||", ">>u", ">>s", "!=", "..", "<<", "(", ")", "[", "]", "{", "}", ",", ";", ":",
    "?", "@", "=", "&", "|", "^", "+", "-", "*", "/",
];

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, SpawnError> {
    let mut out = Vec::new();
    for (li, raw) in src.lines().enumerate() {
        let line = li + 1;
        // `!` starts a comment unless it is the `!=` operator.
        let mut comment_at = raw.len();
        let bytes = raw.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'!' && bytes.get(i + 1) != Some(&b'=') {
                comment_at = i;
                break;
            }
        }
        let text = &raw[..comment_at];
        let mut rest = text;
        'outer: while !rest.trim_start().is_empty() {
            rest = rest.trim_start();
            let c = rest.chars().next().unwrap();
            if c.is_ascii_digit() {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_alphanumeric())
                    .unwrap_or(rest.len());
                let token = &rest[..end];
                let v = if let Some(h) = token.strip_prefix("0x") {
                    u32::from_str_radix(h, 16)
                } else if let Some(b) = token.strip_prefix("0b") {
                    u32::from_str_radix(b, 2)
                } else {
                    token.parse()
                }
                .map_err(|_| SpawnError::Parse {
                    line,
                    message: format!("bad number {token:?}"),
                })?;
                out.push((line, Tok::Num(v)));
                rest = &rest[end..];
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
                    .unwrap_or(rest.len());
                out.push((line, Tok::Ident(rest[..end].to_string())));
                rest = &rest[end..];
                continue;
            }
            for p in PUNCTS {
                if let Some(tail) = rest.strip_prefix(p) {
                    // `>>u`/`>>s` must not swallow `>> u`-less contexts;
                    // plain `>>` is not an operator in this language.
                    out.push((line, Tok::Punct(p)));
                    rest = tail;
                    continue 'outer;
                }
            }
            return Err(SpawnError::Parse {
                line,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(out)
}

/// Parses a machine description.
///
/// # Errors
///
/// [`SpawnError::Parse`] with the offending line.
pub fn parse(src: &str) -> Result<Description, SpawnError> {
    let toks = lex(src)?;
    let mut p = P { toks, at: 0 };
    let mut d = Description {
        word_bits: 32,
        ..Description::default()
    };
    while let Some(kw) = p.peek_ident() {
        match kw.as_str() {
            "machine" => {
                p.bump();
                d.machine = p.ident()?;
            }
            "word" => {
                p.bump();
                d.word_bits = p.num()?;
            }
            "fields" => {
                p.bump();
                loop {
                    let name = p.ident()?;
                    let lo = p.num()?;
                    p.expect(":")?;
                    let hi = p.num()?;
                    d.fields.push(FieldDecl { name, lo, hi });
                    if !p.eat(",") {
                        break;
                    }
                }
            }
            "registers" => {
                p.bump();
                while matches!(p.peek_ident().as_deref(), Some("int") | Some("cc")) {
                    let kind = if p.ident()? == "int" {
                        RegKind::Int
                    } else {
                        RegKind::Cc
                    };
                    let name = p.ident()?;
                    let count = if p.eat("[") {
                        let n = p.num()?;
                        p.expect("]")?;
                        n
                    } else {
                        1
                    };
                    let w = p.ident()?;
                    if w != "width" {
                        return p.err("expected `width`");
                    }
                    let width = p.num()?;
                    d.registers.push(RegDecl {
                        kind,
                        name,
                        count,
                        width,
                    });
                }
            }
            "val" => {
                p.bump();
                let name = p.ident()?;
                p.expect_kw("is")?;
                let e = p.expr(&d)?;
                d.vals.push((name, e));
            }
            "cons" => {
                p.bump();
                let name = p.ident()?;
                p.expect_kw("is")?;
                let c = p.constraint(1)?;
                d.conses.push((name, c));
            }
            "pat" => {
                p.bump();
                let names = p.name_vector()?;
                p.expect_kw("is")?;
                let cons = p.constraint(names.len())?;
                let class_override = if p.peek_ident().as_deref() == Some("class") {
                    p.bump();
                    Some(p.ident()?)
                } else {
                    None
                };
                d.patterns.push(Pattern {
                    names,
                    cons,
                    class_override,
                });
            }
            "def" => {
                p.bump();
                let name = p.ident()?;
                p.expect("(")?;
                let mut params = Vec::new();
                if !p.eat(")") {
                    loop {
                        params.push(p.ident()?);
                        if !p.eat(",") {
                            break;
                        }
                    }
                    p.expect(")")?;
                }
                p.expect_kw("is")?;
                let body = p.stmts(&d, &params)?;
                d.defs.push(SemDef { name, params, body });
            }
            "sem" => {
                p.bump();
                let names = p.name_vector()?;
                p.expect_kw("is")?;
                // Lookahead: `ident @` means a def application.
                let body = if p.is_apply() {
                    let func = p.ident()?;
                    let mut arg_vectors = Vec::new();
                    while p.eat("@") {
                        arg_vectors.push(p.name_vector()?);
                    }
                    SemBody::Apply { func, arg_vectors }
                } else {
                    SemBody::Direct(p.stmts(&d, &[])?)
                };
                d.sems.push(Sem { names, body });
            }
            other => {
                return p.err(format!("unexpected keyword {other:?}"));
            }
        }
    }
    validate(&d)?;
    Ok(d)
}

fn validate(d: &Description) -> Result<(), SpawnError> {
    let mut seen = std::collections::HashSet::new();
    for p in &d.patterns {
        for n in &p.names {
            if !seen.insert(n.clone()) {
                return Err(SpawnError::Semantic(format!("duplicate instruction {n:?}")));
            }
        }
        for c in &p.cons {
            check_cons(d, c, p.names.len())?;
        }
    }
    for s in &d.sems {
        for n in &s.names {
            if !seen.contains(n) {
                return Err(SpawnError::Semantic(format!(
                    "sem for unknown instruction {n:?}"
                )));
            }
        }
        if let SemBody::Apply { func, arg_vectors } = &s.body {
            let def = d
                .def(func)
                .ok_or_else(|| SpawnError::Semantic(format!("unknown def {func:?}")))?;
            if arg_vectors.len() != def.params.len() {
                return Err(SpawnError::Semantic(format!(
                    "{func}: {} argument vectors for {} parameters",
                    arg_vectors.len(),
                    def.params.len()
                )));
            }
            for v in arg_vectors {
                if v.len() != s.names.len() {
                    return Err(SpawnError::Semantic(format!(
                        "{func}: argument vector length {} != instruction count {}",
                        v.len(),
                        s.names.len()
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_cons(d: &Description, c: &Cons, n: usize) -> Result<(), SpawnError> {
    match c {
        Cons::Field { field, value, .. } => {
            if d.field(field).is_none() {
                return Err(SpawnError::Semantic(format!("unknown field {field:?}")));
            }
            if let ConsValue::PerInstruction(vs) = value {
                if vs.len() != n {
                    return Err(SpawnError::Semantic(format!(
                        "matrix for {field:?} has {} values for {} instructions",
                        vs.len(),
                        n
                    )));
                }
            }
            Ok(())
        }
        Cons::Named(name) => {
            if d.cons(name).is_none() {
                return Err(SpawnError::Semantic(format!("unknown constraint {name:?}")));
            }
            Ok(())
        }
        Cons::Any(alts) => {
            for alt in alts {
                for c in alt {
                    check_cons(d, c, n)?;
                }
            }
            Ok(())
        }
    }
}

struct P {
    toks: Vec<(usize, Tok)>,
    at: usize,
}

impl P {
    fn line(&self) -> usize {
        self.toks.get(self.at).map_or(0, |(l, _)| *l)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SpawnError> {
        Err(SpawnError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.clone()),
            _ => None,
        }
    }

    fn bump(&mut self) {
        self.at += 1;
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<(), SpawnError> {
        if self.eat(p) {
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {:?}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SpawnError> {
        if self.peek_ident().as_deref() == Some(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SpawnError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn num(&mut self) -> Result<u32, SpawnError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.bump();
                Ok(n)
            }
            other => self.err(format!("expected number, found {other:?}")),
        }
    }

    fn name_vector(&mut self) -> Result<Vec<String>, SpawnError> {
        if self.eat("[") {
            let mut names = Vec::new();
            while !self.eat("]") {
                names.push(self.ident()?);
            }
            if names.is_empty() {
                return self.err("empty name vector");
            }
            Ok(names)
        } else {
            Ok(vec![self.ident()?])
        }
    }

    /// Is the upcoming sem body a `f @ [...]` application?
    fn is_apply(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(_)))
            && matches!(self.toks.get(self.at + 1), Some((_, Tok::Punct("@"))))
    }

    // ---- constraints ---------------------------------------------------

    fn constraint(&mut self, n: usize) -> Result<Vec<Cons>, SpawnError> {
        let mut terms = vec![self.cons_term(n)?];
        while self.eat("&&") {
            terms.push(self.cons_term(n)?);
        }
        Ok(terms)
    }

    fn cons_term(&mut self, n: usize) -> Result<Cons, SpawnError> {
        if self.eat("(") {
            let mut alts = vec![self.constraint(n)?];
            while self.eat("||") {
                alts.push(self.constraint(n)?);
            }
            self.expect(")")?;
            return Ok(Cons::Any(alts));
        }
        let name = self.ident()?;
        // Either `field (& mask)? = value(s)` or a named constraint.
        let mask = if self.eat("&") {
            Some(self.num()?)
        } else {
            None
        };
        if mask.is_none() && !matches!(self.peek(), Some(Tok::Punct("="))) {
            return Ok(Cons::Named(name));
        }
        self.expect("=")?;
        let value = if self.eat("[") {
            let mut values = Vec::new();
            while !self.eat("]") {
                let v = self.num()?;
                if self.eat("..") {
                    let hi = self.num()?;
                    for x in v..=hi {
                        values.push(x);
                    }
                } else {
                    values.push(v);
                }
            }
            if n > 1 || values.len() > 1 {
                ConsValue::PerInstruction(values)
            } else {
                ConsValue::One(values[0])
            }
        } else {
            ConsValue::One(self.num()?)
        };
        Ok(Cons::Field {
            field: name,
            mask,
            value,
        })
    }

    // ---- statements ------------------------------------------------------

    fn stmts(&mut self, d: &Description, params: &[String]) -> Result<Vec<Stmt>, SpawnError> {
        let mut out = vec![self.par_stmt(d, params)?];
        while self.eat(";") {
            out.push(self.par_stmt(d, params)?);
        }
        Ok(out)
    }

    fn par_stmt(&mut self, d: &Description, params: &[String]) -> Result<Stmt, SpawnError> {
        let first = self.simple_stmt(d, params)?;
        if !matches!(self.peek(), Some(Tok::Punct(","))) {
            return Ok(first);
        }
        let mut group = vec![first];
        while self.eat(",") {
            group.push(self.simple_stmt(d, params)?);
        }
        Ok(Stmt::Par(group))
    }

    fn simple_stmt(&mut self, d: &Description, params: &[String]) -> Result<Stmt, SpawnError> {
        match self.peek_ident().as_deref() {
            Some("if") => {
                self.bump();
                let cond = self.expr_in(d, params)?;
                self.expect("{")?;
                let then = self.stmts(d, params)?;
                self.expect("}")?;
                let els = if self.peek_ident().as_deref() == Some("else") {
                    self.bump();
                    self.expect("{")?;
                    let e = self.stmts(d, params)?;
                    self.expect("}")?;
                    e
                } else {
                    Vec::new()
                };
                return Ok(Stmt::If(cond, then, els));
            }
            Some("annul") => {
                self.bump();
                return Ok(Stmt::Annul);
            }
            Some("trap") => {
                self.bump();
                let e = self.expr_in(d, params)?;
                return Ok(Stmt::Trap(e));
            }
            _ => {}
        }
        // Assignment.
        let lv = self.lvalue(d, params)?;
        self.expect(":=")?;
        let e = self.expr_in(d, params)?;
        Ok(Stmt::Assign(lv, e))
    }

    fn lvalue(&mut self, d: &Description, params: &[String]) -> Result<LValue, SpawnError> {
        let name = self.ident()?;
        if name == "npc" {
            return Ok(LValue::Npc);
        }
        if name == "mem" {
            self.expect("[")?;
            let addr = self.expr_in(d, params)?;
            self.expect("]")?;
            self.expect(":")?;
            let w = self.num()?;
            return Ok(LValue::Mem(Box::new(addr), w));
        }
        if self.eat("[") {
            let idx = self.expr_in(d, params)?;
            self.expect("]")?;
            return Ok(LValue::Reg(name, Some(Box::new(idx))));
        }
        Ok(LValue::Reg(name, None))
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self, d: &Description) -> Result<Expr, SpawnError> {
        self.expr_in(d, &[])
    }

    fn expr_in(&mut self, d: &Description, params: &[String]) -> Result<Expr, SpawnError> {
        // Ternary is lowest.
        let c = self.bin(d, params, 0)?;
        if self.eat("?") {
            let a = self.expr_in(d, params)?;
            self.expect(":")?;
            let b = self.expr_in(d, params)?;
            return Ok(Expr::Cond(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }

    fn bin(
        &mut self,
        d: &Description,
        params: &[String],
        level: usize,
    ) -> Result<Expr, SpawnError> {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LogOr)],
            &[("&&", BinOp::LogAnd)],
            &[("=", BinOp::Eq), ("!=", BinOp::Ne)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[
                ("<<", BinOp::Shl),
                (">>u", BinOp::Shru),
                (">>s", BinOp::Shrs),
            ],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul)],
        ];
        if level >= LEVELS.len() {
            return self.primary(d, params);
        }
        let mut lhs = self.bin(d, params, level + 1)?;
        'outer: loop {
            for (p, op) in LEVELS[level] {
                if matches!(self.peek(), Some(Tok::Punct(q)) if q == p) {
                    self.bump();
                    let rhs = self.bin(d, params, level + 1)?;
                    lhs = Expr::Bin(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn primary(&mut self, d: &Description, params: &[String]) -> Result<Expr, SpawnError> {
        if self.eat("(") {
            let e = self.expr_in(d, params)?;
            self.expect(")")?;
            return Ok(e);
        }
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                match name.as_str() {
                    "pc" => return Ok(Expr::Pc),
                    "sx" => {
                        self.expect("(")?;
                        let f = self.ident()?;
                        self.expect(")")?;
                        if d.field(&f).is_none() {
                            return self.err(format!("sx of unknown field {f:?}"));
                        }
                        return Ok(Expr::SxField(f));
                    }
                    "sxm" => {
                        self.expect("(")?;
                        let e = self.expr_in(d, params)?;
                        self.expect(",")?;
                        let bits = self.num()?;
                        self.expect(")")?;
                        return Ok(Expr::Sxm(Box::new(e), bits));
                    }
                    "mem" => {
                        self.expect("[")?;
                        let addr = self.expr_in(d, params)?;
                        self.expect("]")?;
                        self.expect(":")?;
                        let w = self.num()?;
                        return Ok(Expr::Mem(Box::new(addr), w));
                    }
                    _ => {}
                }
                if self.eat("(") {
                    let mut args = Vec::new();
                    if !self.eat(")") {
                        loop {
                            args.push(self.expr_in(d, params)?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.expect(")")?;
                    }
                    return Ok(Expr::Apply(name, args));
                }
                if self.eat("[") {
                    let idx = self.expr_in(d, params)?;
                    self.expect("]")?;
                    return Ok(Expr::Reg(name, Some(Box::new(idx))));
                }
                if params.contains(&name) {
                    Ok(Expr::Param(name))
                } else if d.field(&name).is_some() {
                    Ok(Expr::Field(name))
                } else if d.registers.iter().any(|r| r.name == name) {
                    Ok(Expr::Reg(name, None))
                } else if d.val(&name).is_some() {
                    Ok(Expr::Val(name))
                } else {
                    // Unknown bare name — tolerate as a val reference that
                    // may be declared later; re-validated at analysis time.
                    Ok(Expr::Val(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_sparc_description() {
        let d = parse(include_str!("../descriptions/sparc.spawn")).unwrap();
        assert_eq!(d.machine, "sparc");
        assert_eq!(d.word_bits, 32);
        assert!(d.fields.len() >= 12);
        assert!(d.patterns.len() >= 20);
        // All 16 integer branches in the matrix pattern.
        let branches = d
            .patterns
            .iter()
            .find(|p| p.names.contains(&"bne".to_string()))
            .unwrap();
        assert_eq!(branches.names.len(), 16);
        // Every non-overridden pattern has semantics.
        let with_sem: std::collections::HashSet<&str> = d
            .sems
            .iter()
            .flat_map(|s| s.names.iter().map(|n| n.as_str()))
            .collect();
        for p in &d.patterns {
            if p.class_override.is_some() || p.names[0] == "unimp" || p.names[0] == "ticc" {
                continue;
            }
            for n in &p.names {
                if n == "ticc" || n == "unimp" {
                    continue;
                }
                assert!(with_sem.contains(n.as_str()), "{n} lacks semantics");
            }
        }
    }

    #[test]
    fn field_extraction() {
        let f = FieldDecl {
            name: "op".into(),
            lo: 30,
            hi: 31,
        };
        assert_eq!(f.width(), 2);
        assert_eq!(f.extract(0xc000_0000), 3);
        assert_eq!(f.extract(0x4000_0000), 1);
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse("machine x\nbogus stuff\n").unwrap_err();
        match err {
            SpawnError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_matrices() {
        let src = "machine m\nfields f 0:3\npat [a b] is f = [1 2 3]\n";
        assert!(matches!(parse(src), Err(SpawnError::Semantic(_))));
    }

    #[test]
    fn rejects_duplicate_instructions() {
        let src = "machine m\nfields f 0:3\npat a is f = 1\npat a is f = 2\n";
        assert!(matches!(parse(src), Err(SpawnError::Semantic(_))));
    }

    #[test]
    fn rejects_unknown_fields() {
        let src = "machine m\nfields f 0:3\npat a is g = 1\n";
        assert!(matches!(parse(src), Err(SpawnError::Semantic(_))));
    }
}
