//! The spawn-derived machine layer.
//!
//! From a parsed [`Description`], [`Machine::build`] derives what the
//! paper says spawn extracts (§4): "a classification for each instruction
//! (jump, call, store, invalid, etc.) ... registers that each instruction
//! reads and writes and literal values in instruction fields ... even
//! C++ [here: an interpreter and Rust source] to replicate the
//! computation in most instructions."

use crate::ast::*;
use crate::SpawnError;
use std::collections::HashMap;

/// Machine-level instruction classes derivable from semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Unconditionally assigns `npc` from a PC-relative constant.
    DirectJump,
    /// Unconditionally assigns `npc` from a register expression.
    IndirectJump,
    /// Conditionally assigns `npc`.
    Branch,
    /// Reads memory.
    Load,
    /// Writes memory.
    Store,
    /// May trap (system call gateway).
    System,
    /// Pure computation.
    Computation,
    /// No semantics: data masquerading as code.
    Invalid,
}

/// How an instruction decodes: the matched spec plus extracted fields.
#[derive(Debug, Clone)]
pub struct Decoded<'m> {
    /// The matched instruction.
    pub spec: &'m InsnSpec,
    /// The raw word.
    pub word: u32,
}

/// One derived instruction.
#[derive(Debug, Clone)]
pub struct InsnSpec {
    /// Instruction name from the description.
    pub name: String,
    /// Derived (or overridden) class.
    pub class: Class,
    /// Matcher terms (conjunction).
    pub(crate) matcher: Vec<MTerm>,
    /// Fully parameter-substituted semantics, if given.
    pub(crate) sem: Option<Vec<Stmt>>,
    /// Whether the instruction links (assigns `pc` to a register) while
    /// transferring — distinguishes calls from plain jumps (Figure 6's
    /// shim then resolves the SPARC overloading by operand).
    pub links: bool,
}

#[derive(Debug, Clone)]
pub(crate) enum MTerm {
    Cmp {
        lo: u32,
        width: u32,
        mask: Option<u32>,
        value: u32,
    },
    Any(Vec<Vec<MTerm>>),
}

impl MTerm {
    fn matches(&self, word: u32) -> bool {
        match self {
            MTerm::Cmp {
                lo,
                width,
                mask,
                value,
            } => {
                let mut f = (word >> lo) & ((1u64 << width) - 1) as u32;
                if let Some(m) = mask {
                    f &= m;
                }
                f == *value
            }
            MTerm::Any(alts) => alts.iter().any(|conj| conj.iter().all(|t| t.matches(word))),
        }
    }
}

/// The derived machine: decoder, classifier, analyzer, evaluator input.
#[derive(Debug)]
pub struct Machine {
    desc: Description,
    insns: Vec<InsnSpec>,
}

impl Machine {
    /// Derives the machine layer from a description.
    ///
    /// # Errors
    ///
    /// [`SpawnError::Semantic`] for unresolved names or bad applications.
    pub fn build(desc: Description) -> Result<Machine, SpawnError> {
        // Per-instruction semantics: resolve `sem` bindings (with def
        // application) into substituted statement lists.
        let mut sem_of: HashMap<String, Vec<Stmt>> = HashMap::new();
        for sem in &desc.sems {
            match &sem.body {
                SemBody::Direct(stmts) => {
                    for n in &sem.names {
                        sem_of.insert(n.clone(), stmts.clone());
                    }
                }
                SemBody::Apply { func, arg_vectors } => {
                    let def = desc
                        .def(func)
                        .ok_or_else(|| SpawnError::Semantic(format!("unknown def {func:?}")))?;
                    for (k, n) in sem.names.iter().enumerate() {
                        let bindings: HashMap<&str, &str> = def
                            .params
                            .iter()
                            .map(|p| p.as_str())
                            .zip(arg_vectors.iter().map(|v| v[k].as_str()))
                            .collect();
                        let body = def.body.iter().map(|s| subst_stmt(s, &bindings)).collect();
                        sem_of.insert(n.clone(), body);
                    }
                }
            }
        }

        let mut insns = Vec::new();
        for pat in &desc.patterns {
            for (k, name) in pat.names.iter().enumerate() {
                let matcher = pat
                    .cons
                    .iter()
                    .map(|c| lower_cons(&desc, c, k))
                    .collect::<Result<Vec<_>, _>>()?;
                let sem = sem_of.get(name).cloned();
                let (mut class, links) = match &sem {
                    Some(stmts) => derive_class(&desc, stmts),
                    None => (Class::Invalid, false),
                };
                if let Some(ovr) = &pat.class_override {
                    class = match ovr.as_str() {
                        "branch" => Class::Branch,
                        "load" => Class::Load,
                        "store" => Class::Store,
                        "jump" => Class::IndirectJump,
                        "call" => Class::DirectJump,
                        "system" => Class::System,
                        "computation" => Class::Computation,
                        other => {
                            return Err(SpawnError::Semantic(format!(
                                "unknown class override {other:?}"
                            )))
                        }
                    };
                }
                insns.push(InsnSpec {
                    name: name.clone(),
                    class,
                    matcher,
                    sem,
                    links,
                });
            }
        }
        Ok(Machine { desc, insns })
    }

    /// The underlying description.
    pub fn description(&self) -> &Description {
        &self.desc
    }

    /// All derived instructions.
    pub fn instructions(&self) -> &[InsnSpec] {
        &self.insns
    }

    /// Decodes a word: the first matching instruction, or `None` for an
    /// invalid encoding.
    pub fn decode(&self, word: u32) -> Option<Decoded<'_>> {
        self.insns
            .iter()
            .find(|i| i.matcher.iter().all(|t| t.matches(word)))
            .map(|spec| Decoded { spec, word })
    }

    /// Extracts a named field from a word.
    ///
    /// # Panics
    ///
    /// Panics on an unknown field name (a tool bug, not input data).
    pub fn field(&self, name: &str, word: u32) -> u32 {
        self.desc
            .field(name)
            .unwrap_or_else(|| panic!("unknown field {name}"))
            .extract(word)
    }

    /// Registers read by this instruction instance: `(set name, index)`.
    /// Indices resolve through the word's fields; scalar sets use index 0.
    pub fn reads(&self, d: &Decoded<'_>) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        if let Some(sem) = &d.spec.sem {
            for s in sem {
                collect_stmt_regs(&self.desc, s, d.word, true, &mut out);
            }
        }
        out.sort();
        out.dedup();
        out.retain(|(set, i)| !(set == "R" && *i == 0));
        out
    }

    /// Registers written by this instruction instance.
    pub fn writes(&self, d: &Decoded<'_>) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        if let Some(sem) = &d.spec.sem {
            for s in sem {
                collect_stmt_regs(&self.desc, s, d.word, false, &mut out);
            }
        }
        out.sort();
        out.dedup();
        out.retain(|(set, i)| !(set == "R" && *i == 0));
        out
    }

    /// Symbolic (Rust-source) read set for code generation: register
    /// references with index expressions rendered over `field_*(word)`
    /// calls. Conditional operands are included from both arms
    /// (conservative), matching what generated analysis code can know
    /// statically.
    pub fn symbolic_reads(&self, name: &str) -> Vec<(String, String)> {
        self.symbolic_regs(name, true)
    }

    /// Symbolic write set (see [`Machine::symbolic_reads`]).
    pub fn symbolic_writes(&self, name: &str) -> Vec<(String, String)> {
        self.symbolic_regs(name, false)
    }

    fn symbolic_regs(&self, name: &str, reads: bool) -> Vec<(String, String)> {
        let Some(spec) = self.insns.iter().find(|i| i.name == name) else {
            return Vec::new();
        };
        let Some(sem) = &spec.sem else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for s in sem {
            collect_symbolic(&self.desc, s, reads, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The statically-known control-transfer target of this instance at
    /// `pc`, derived from the semantics: the first `npc :=` assignment
    /// (conditional or not) whose right-hand side depends only on
    /// instruction fields, constants, and `pc`. `None` for indirect
    /// transfers (register targets) and non-transfers.
    ///
    /// This is how spawn-derived analyses compute branch and call targets
    /// without any handwritten per-ISA target arithmetic.
    pub fn static_target(&self, d: &Decoded<'_>, pc: u32) -> Option<u32> {
        fn find(desc: &Description, stmts: &[Stmt], word: u32, pc: u32) -> Option<u32> {
            for s in stmts {
                match s {
                    Stmt::Assign(LValue::Npc, e) => {
                        if let Some(t) = eval_static_expr(desc, e, word, pc) {
                            return Some(t);
                        }
                    }
                    Stmt::If(_, a, b) => {
                        if let Some(t) = find(desc, a, word, pc).or_else(|| find(desc, b, word, pc))
                        {
                            return Some(t);
                        }
                    }
                    Stmt::Par(g) => {
                        if let Some(t) = find(desc, g, word, pc) {
                            return Some(t);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        d.spec
            .sem
            .as_ref()
            .and_then(|sem| find(&self.desc, sem, d.word, pc))
    }

    /// Memory access width in bytes, if the instruction touches memory.
    pub fn mem_width(&self, d: &Decoded<'_>) -> Option<u32> {
        fn find_stmt(s: &Stmt) -> Option<u32> {
            match s {
                Stmt::Assign(LValue::Mem(_, w), _) => Some(*w),
                Stmt::Assign(_, e) => find_expr(e),
                Stmt::If(c, a, b) => find_expr(c)
                    .or_else(|| a.iter().find_map(find_stmt))
                    .or_else(|| b.iter().find_map(find_stmt)),
                Stmt::Par(g) => g.iter().find_map(find_stmt),
                Stmt::Trap(e) => find_expr(e),
                Stmt::Annul => None,
            }
        }
        fn find_expr(e: &Expr) -> Option<u32> {
            match e {
                Expr::Mem(_, w) => Some(*w),
                Expr::Sxm(e, _) => find_expr(e),
                Expr::Bin(_, a, b) => find_expr(a).or_else(|| find_expr(b)),
                Expr::Cond(c, a, b) => find_expr(c)
                    .or_else(|| find_expr(a))
                    .or_else(|| find_expr(b)),
                Expr::Apply(_, args) => args.iter().find_map(find_expr),
                _ => None,
            }
        }
        d.spec
            .sem
            .as_ref()
            .and_then(|sem| sem.iter().find_map(find_stmt))
    }
}

/// Substitutes def parameters (which bind builtin names) through a
/// statement.
fn subst_stmt(s: &Stmt, bind: &HashMap<&str, &str>) -> Stmt {
    match s {
        Stmt::Assign(lv, e) => Stmt::Assign(subst_lv(lv, bind), subst_expr(e, bind)),
        Stmt::If(c, a, b) => Stmt::If(
            subst_expr(c, bind),
            a.iter().map(|s| subst_stmt(s, bind)).collect(),
            b.iter().map(|s| subst_stmt(s, bind)).collect(),
        ),
        Stmt::Annul => Stmt::Annul,
        Stmt::Trap(e) => Stmt::Trap(subst_expr(e, bind)),
        Stmt::Par(g) => Stmt::Par(g.iter().map(|s| subst_stmt(s, bind)).collect()),
    }
}

fn subst_lv(lv: &LValue, bind: &HashMap<&str, &str>) -> LValue {
    match lv {
        LValue::Reg(n, idx) => LValue::Reg(
            n.clone(),
            idx.as_ref().map(|e| Box::new(subst_expr(e, bind))),
        ),
        LValue::Npc => LValue::Npc,
        LValue::Mem(e, w) => LValue::Mem(Box::new(subst_expr(e, bind)), *w),
    }
}

fn subst_expr(e: &Expr, bind: &HashMap<&str, &str>) -> Expr {
    match e {
        Expr::Param(p) => match bind.get(p.as_str()) {
            Some(b) => Expr::Val((*b).to_string()),
            None => e.clone(),
        },
        Expr::Apply(f, args) => {
            let f2 = bind
                .get(f.as_str())
                .map(|b| (*b).to_string())
                .unwrap_or_else(|| f.clone());
            Expr::Apply(f2, args.iter().map(|a| subst_expr(a, bind)).collect())
        }
        Expr::Sxm(e, b) => Expr::Sxm(Box::new(subst_expr(e, bind)), *b),
        Expr::Reg(n, idx) => Expr::Reg(
            n.clone(),
            idx.as_ref().map(|e| Box::new(subst_expr(e, bind))),
        ),
        Expr::Mem(e, w) => Expr::Mem(Box::new(subst_expr(e, bind)), *w),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_expr(a, bind)),
            Box::new(subst_expr(b, bind)),
        ),
        Expr::Cond(c, a, b) => Expr::Cond(
            Box::new(subst_expr(c, bind)),
            Box::new(subst_expr(a, bind)),
            Box::new(subst_expr(b, bind)),
        ),
        other => other.clone(),
    }
}

fn lower_cons(desc: &Description, c: &Cons, k: usize) -> Result<MTerm, SpawnError> {
    match c {
        Cons::Field { field, mask, value } => {
            let f = desc
                .field(field)
                .ok_or_else(|| SpawnError::Semantic(format!("unknown field {field:?}")))?;
            let v = match value {
                ConsValue::One(v) => *v,
                ConsValue::PerInstruction(vs) => *vs.get(k).ok_or_else(|| {
                    SpawnError::Semantic(format!("matrix too short for {field:?}"))
                })?,
            };
            Ok(MTerm::Cmp {
                lo: f.lo,
                width: f.width(),
                mask: *mask,
                value: v,
            })
        }
        Cons::Named(name) => {
            let terms = desc
                .cons(name)
                .ok_or_else(|| SpawnError::Semantic(format!("unknown constraint {name:?}")))?;
            let lowered = terms
                .iter()
                .map(|t| lower_cons(desc, t, k))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(MTerm::Any(vec![lowered]))
        }
        Cons::Any(alts) => {
            let lowered = alts
                .iter()
                .map(|conj| conj.iter().map(|t| lower_cons(desc, t, k)).collect())
                .collect::<Result<Vec<_>, _>>()?;
            Ok(MTerm::Any(lowered))
        }
    }
}

/// Derives the class (and link behavior) from semantics.
fn derive_class(desc: &Description, stmts: &[Stmt]) -> (Class, bool) {
    let mut traps = false;
    let mut npc_uncond = None::<bool>; // Some(indirect?)
    let mut npc_cond = false;
    let mut loads = false;
    let mut stores = false;
    let mut links = false;

    fn expr_uses_reg(desc: &Description, e: &Expr) -> bool {
        match e {
            Expr::Reg(..) => true,
            Expr::Val(n) => desc.val(n).map(|v| expr_uses_reg(desc, v)).unwrap_or(false),
            Expr::Sxm(e, _) => expr_uses_reg(desc, e),
            Expr::Mem(e, _) => expr_uses_reg(desc, e),
            Expr::Bin(_, a, b) => expr_uses_reg(desc, a) || expr_uses_reg(desc, b),
            Expr::Cond(c, a, b) => {
                expr_uses_reg(desc, c) || expr_uses_reg(desc, a) || expr_uses_reg(desc, b)
            }
            Expr::Apply(_, args) => args.iter().any(|a| expr_uses_reg(desc, a)),
            _ => false,
        }
    }

    fn expr_uses_pc(e: &Expr) -> bool {
        match e {
            Expr::Pc => true,
            Expr::Sxm(e, _) | Expr::Mem(e, _) => expr_uses_pc(e),
            Expr::Bin(_, a, b) => expr_uses_pc(a) || expr_uses_pc(b),
            Expr::Cond(c, a, b) => expr_uses_pc(c) || expr_uses_pc(a) || expr_uses_pc(b),
            Expr::Apply(_, args) => args.iter().any(expr_uses_pc),
            _ => false,
        }
    }

    fn expr_loads(desc: &Description, e: &Expr) -> bool {
        match e {
            Expr::Mem(..) => true,
            Expr::Val(n) => desc.val(n).map(|v| expr_loads(desc, v)).unwrap_or(false),
            Expr::Sxm(e, _) => expr_loads(desc, e),
            Expr::Bin(_, a, b) => expr_loads(desc, a) || expr_loads(desc, b),
            Expr::Cond(c, a, b) => {
                expr_loads(desc, c) || expr_loads(desc, a) || expr_loads(desc, b)
            }
            Expr::Apply(_, args) => args.iter().any(|a| expr_loads(desc, a)),
            _ => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        desc: &Description,
        s: &Stmt,
        conditional: bool,
        traps: &mut bool,
        npc_uncond: &mut Option<bool>,
        npc_cond: &mut bool,
        loads: &mut bool,
        stores: &mut bool,
        links: &mut bool,
    ) {
        match s {
            Stmt::Assign(LValue::Npc, e) => {
                if conditional {
                    *npc_cond = true;
                } else {
                    *npc_uncond = Some(expr_uses_reg(desc, e));
                }
            }
            Stmt::Assign(LValue::Mem(..), e) => {
                *stores = true;
                if expr_loads(desc, e) {
                    *loads = true;
                }
            }
            Stmt::Assign(LValue::Reg(..), e) => {
                if expr_loads(desc, e) {
                    *loads = true;
                }
                if expr_uses_pc(e) {
                    *links = true;
                }
            }
            Stmt::If(_, a, b) => {
                for s in a.iter().chain(b) {
                    walk(
                        desc, s, true, traps, npc_uncond, npc_cond, loads, stores, links,
                    );
                }
            }
            Stmt::Trap(_) => *traps = true,
            Stmt::Annul => {}
            Stmt::Par(g) => {
                for s in g {
                    walk(
                        desc,
                        s,
                        conditional,
                        traps,
                        npc_uncond,
                        npc_cond,
                        loads,
                        stores,
                        links,
                    );
                }
            }
        }
    }
    for s in stmts {
        walk(
            desc,
            s,
            false,
            &mut traps,
            &mut npc_uncond,
            &mut npc_cond,
            &mut loads,
            &mut stores,
            &mut links,
        );
    }

    let class = if traps {
        Class::System
    } else if let Some(indirect) = npc_uncond {
        if indirect {
            Class::IndirectJump
        } else {
            Class::DirectJump
        }
    } else if npc_cond {
        Class::Branch
    } else if stores {
        Class::Store
    } else if loads {
        Class::Load
    } else {
        Class::Computation
    };
    (class, links)
}

/// Accumulates register reads or writes for one instance.
fn collect_stmt_regs(
    desc: &Description,
    s: &Stmt,
    word: u32,
    reads: bool,
    out: &mut Vec<(String, u32)>,
) {
    match s {
        Stmt::Assign(lv, e) => {
            if reads {
                collect_expr_regs(desc, e, word, out);
                // Indices of written registers are *read* as fields, not
                // register reads; nothing to add for the lvalue except a
                // memory address computation.
                if let LValue::Mem(a, _) = lv {
                    collect_expr_regs(desc, a, word, out);
                }
            } else if let LValue::Reg(set, idx) = lv {
                let i = idx
                    .as_ref()
                    .and_then(|e| eval_field_expr(desc, e, word))
                    .unwrap_or(0);
                out.push((set.clone(), i));
            }
        }
        Stmt::If(c, a, b) => {
            if reads {
                collect_expr_regs(desc, c, word, out);
            }
            for s in a.iter().chain(b) {
                collect_stmt_regs(desc, s, word, reads, out);
            }
        }
        Stmt::Trap(e) => {
            if reads {
                collect_expr_regs(desc, e, word, out);
            }
        }
        Stmt::Annul => {}
        Stmt::Par(g) => {
            for s in g {
                collect_stmt_regs(desc, s, word, reads, out);
            }
        }
    }
}

fn collect_expr_regs(desc: &Description, e: &Expr, word: u32, out: &mut Vec<(String, u32)>) {
    match e {
        Expr::Reg(set, idx) => {
            let i = idx
                .as_ref()
                .and_then(|e| eval_field_expr(desc, e, word))
                .unwrap_or(0);
            out.push((set.clone(), i));
        }
        Expr::Val(n) => {
            if let Some(v) = desc.val(n) {
                collect_expr_regs(desc, v, word, out);
            }
        }
        Expr::Sxm(e, _) | Expr::Mem(e, _) => collect_expr_regs(desc, e, word, out),
        Expr::Bin(_, a, b) => {
            collect_expr_regs(desc, a, word, out);
            collect_expr_regs(desc, b, word, out);
        }
        Expr::Cond(c, a, b) => {
            // Evaluate field-only conditions (like `i = 1`) to prune the
            // untaken arm — this is what lets `src2` report rs2 only in
            // register form.
            if let Some(cv) = eval_field_expr(desc, c, word) {
                if cv != 0 {
                    collect_expr_regs(desc, a, word, out);
                } else {
                    collect_expr_regs(desc, b, word, out);
                }
            } else {
                collect_expr_regs(desc, c, word, out);
                collect_expr_regs(desc, a, word, out);
                collect_expr_regs(desc, b, word, out);
            }
        }
        Expr::Apply(f, args) => {
            // Constant condition tests (`always`, `n`) read nothing; a
            // production spawn would constant-fold them away.
            if f == "always" || f == "n" {
                return;
            }
            for a in args {
                collect_expr_regs(desc, a, word, out);
            }
        }
        _ => {}
    }
}

/// Evaluates an expression that depends only on instruction fields and
/// constants. `None` if it touches registers/memory/pc.
pub(crate) fn eval_field_expr(desc: &Description, e: &Expr, word: u32) -> Option<u32> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Field(f) => desc.field(f).map(|fd| fd.extract(word)),
        Expr::SxField(f) => desc.field(f).map(|fd| {
            let v = fd.extract(word);
            let sh = 32 - fd.width();
            (((v << sh) as i32) >> sh) as u32
        }),
        Expr::Sxm(e, bits) => eval_field_expr(desc, e, word).map(|v| {
            let sh = 32 - bits;
            (((v << sh) as i32) >> sh) as u32
        }),
        Expr::Val(n) => desc.val(n).and_then(|v| eval_field_expr(desc, v, word)),
        Expr::Bin(op, a, b) => {
            let a = eval_field_expr(desc, a, word)?;
            let b = eval_field_expr(desc, b, word)?;
            Some(crate::eval::apply_binop(*op, a, b))
        }
        Expr::Cond(c, a, b) => {
            let c = eval_field_expr(desc, c, word)?;
            if c != 0 {
                eval_field_expr(desc, a, word)
            } else {
                eval_field_expr(desc, b, word)
            }
        }
        _ => None,
    }
}

/// Like [`eval_field_expr`] but additionally resolves `pc`, for static
/// control-transfer target computation.
fn eval_static_expr(desc: &Description, e: &Expr, word: u32, pc: u32) -> Option<u32> {
    match e {
        Expr::Pc => Some(pc),
        Expr::Num(n) => Some(*n),
        Expr::Field(f) => desc.field(f).map(|fd| fd.extract(word)),
        Expr::SxField(f) => desc.field(f).map(|fd| {
            let v = fd.extract(word);
            let sh = 32 - fd.width();
            (((v << sh) as i32) >> sh) as u32
        }),
        Expr::Sxm(e, bits) => eval_static_expr(desc, e, word, pc).map(|v| {
            let sh = 32 - bits;
            (((v << sh) as i32) >> sh) as u32
        }),
        Expr::Val(n) => desc
            .val(n)
            .and_then(|v| eval_static_expr(desc, v, word, pc)),
        Expr::Bin(op, a, b) => {
            let a = eval_static_expr(desc, a, word, pc)?;
            let b = eval_static_expr(desc, b, word, pc)?;
            Some(crate::eval::apply_binop(*op, a, b))
        }
        Expr::Cond(c, a, b) => {
            let c = eval_static_expr(desc, c, word, pc)?;
            if c != 0 {
                eval_static_expr(desc, a, word, pc)
            } else {
                eval_static_expr(desc, b, word, pc)
            }
        }
        _ => None,
    }
}

/// Renders an index expression as Rust source over `field_*` extractors;
/// `None` when it depends on run-time state.
fn render_index(desc: &Description, e: &Expr) -> Option<String> {
    match e {
        Expr::Num(n) => Some(n.to_string()),
        Expr::Field(f) => desc.field(f).map(|_| format!("field_{f}(word)")),
        Expr::Bin(op, a, b) => {
            let (a, b) = (render_index(desc, a)?, render_index(desc, b)?);
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Or => "|",
                BinOp::And => "&",
                BinOp::Xor => "^",
                _ => return None,
            };
            Some(format!("({a} {op} {b})"))
        }
        Expr::Val(n) => desc.val(n).and_then(|v| render_index(desc, v)),
        _ => None,
    }
}

fn collect_symbolic(desc: &Description, s: &Stmt, reads: bool, out: &mut Vec<(String, String)>) {
    match s {
        Stmt::Assign(lv, e) => {
            if reads {
                collect_symbolic_expr(desc, e, out);
                if let LValue::Mem(a, _) = lv {
                    collect_symbolic_expr(desc, a, out);
                }
            } else if let LValue::Reg(set, idx) = lv {
                let rendered = idx
                    .as_ref()
                    .and_then(|e| render_index(desc, e))
                    .unwrap_or_else(|| "0".to_string());
                out.push((set.clone(), rendered));
            }
        }
        Stmt::If(c, a, b) => {
            if reads {
                collect_symbolic_expr(desc, c, out);
            }
            for s in a.iter().chain(b) {
                collect_symbolic(desc, s, reads, out);
            }
        }
        Stmt::Trap(e) => {
            if reads {
                collect_symbolic_expr(desc, e, out);
            }
        }
        Stmt::Annul => {}
        Stmt::Par(g) => {
            for s in g {
                collect_symbolic(desc, s, reads, out);
            }
        }
    }
}

fn collect_symbolic_expr(desc: &Description, e: &Expr, out: &mut Vec<(String, String)>) {
    match e {
        Expr::Reg(set, idx) => {
            let rendered = idx
                .as_ref()
                .and_then(|e| render_index(desc, e))
                .unwrap_or_else(|| "0".to_string());
            out.push((set.clone(), rendered));
        }
        Expr::Val(n) => {
            if let Some(v) = desc.val(n) {
                collect_symbolic_expr(desc, v, out);
            }
        }
        Expr::Sxm(e, _) | Expr::Mem(e, _) => collect_symbolic_expr(desc, e, out),
        Expr::Bin(_, a, b) => {
            collect_symbolic_expr(desc, a, out);
            collect_symbolic_expr(desc, b, out);
        }
        Expr::Cond(c, a, b) => {
            collect_symbolic_expr(desc, c, out);
            collect_symbolic_expr(desc, a, out);
            collect_symbolic_expr(desc, b, out);
        }
        Expr::Apply(f, args) => {
            if f == "always" || f == "n" {
                return;
            }
            for a in args {
                collect_symbolic_expr(desc, a, out);
            }
        }
        _ => {}
    }
}
