//! The spawn semantic evaluator: executes description semantics against a
//! machine state, replicating instruction computation exactly as the
//! paper claims spawn-generated code does (§4). Differentially tested
//! against the handwritten `eel_isa::step`.

use crate::ast::*;
use crate::machine::{Decoded, Machine};
use crate::SpawnError;
use eel_isa::Memory;

/// Machine state for spawn evaluation (mirrors `eel_isa::MachineState`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnState {
    /// Integer registers (`R[0]` pinned to zero).
    pub r: [u32; 32],
    /// Condition codes (N|Z|V|C in the low nibble).
    pub icc: u8,
    /// The `Y` register.
    pub y: u32,
    /// Current PC.
    pub pc: u32,
    /// Next PC.
    pub npc: u32,
    /// Annul flag for the next instruction.
    pub annul: bool,
    /// MIPS multiply/divide high result (`HI`); unused by SPARC semantics.
    pub hi: u32,
    /// MIPS multiply/divide low result (`LO`); unused by SPARC semantics.
    pub lo: u32,
}

impl SpawnState {
    /// Fresh state at an entry point.
    pub fn new(entry: u32) -> SpawnState {
        SpawnState {
            r: [0; 32],
            icc: 0,
            y: 0,
            pc: entry,
            npc: entry + 4,
            annul: false,
            hi: 0,
            lo: 0,
        }
    }
}

/// Evaluation outcome (mirrors `eel_isa::StepEvent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnEvent {
    /// Normal completion.
    Ok,
    /// Trap taken with this number.
    Trap(u32),
    /// No semantics (illegal instruction).
    Illegal,
    /// Misaligned or failed memory access.
    MemFault(u32),
    /// Division by zero.
    DivZero,
    /// Misaligned control-transfer target.
    BadJump(u32),
}

/// A pending state update (parallel statements commit together).
enum Update {
    Reg(String, u32, u32),
    Npc(u32),
    Mem(u32, u32, u32),
    Annul,
    Trap(u32),
}

/// Applies a binary operator (shared with field-expression folding).
pub(crate) fn apply_binop(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b & 31),
        BinOp::Shru => a.wrapping_shr(b & 31),
        BinOp::Shrs => ((a as i32).wrapping_shr(b & 31)) as u32,
        BinOp::Eq => (a == b) as u32,
        BinOp::Ne => (a != b) as u32,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as u32,
        BinOp::LogOr => ((a != 0) || (b != 0)) as u32,
    }
}

impl Machine {
    /// Executes one decoded instruction's semantics against the state,
    /// advancing PC/nPC exactly like the hardware model.
    ///
    /// # Errors
    ///
    /// [`SpawnError::Semantic`] for malformed semantics (unknown builtin,
    /// register set, or value) — description bugs, not data.
    pub fn execute<M: Memory>(
        &self,
        d: &Decoded<'_>,
        state: &mut SpawnState,
        mem: &mut M,
    ) -> Result<SpawnEvent, SpawnError> {
        if state.annul {
            state.annul = false;
            state.pc = state.npc;
            state.npc = state.npc.wrapping_add(4);
            return Ok(SpawnEvent::Ok);
        }
        let Some(sem) = &d.spec.sem else {
            return Ok(SpawnEvent::Illegal);
        };
        let mut ev = Evaluator {
            machine: self,
            word: d.word,
            state,
            mem,
            npc_override: None,
            annul: false,
            trap: None,
        };
        let mut updates = Vec::new();
        for s in sem {
            match ev.stmt(s, &mut updates) {
                Ok(()) => {}
                Err(EvalStop::Event(e)) => return Ok(e),
                Err(EvalStop::Bug(e)) => return Err(e),
            }
            // `;` = sequential: commit between statements.
            if let Some(e) = ev.commit(&mut updates)? {
                return Ok(e);
            }
        }
        let (npc_override, annul) = (ev.npc_override, ev.annul);
        let trap = ev.trap;
        // Advance PC/nPC.
        let next_npc = match npc_override {
            Some(t) => {
                if t % 4 != 0 {
                    return Ok(SpawnEvent::BadJump(t));
                }
                t
            }
            None => state.npc.wrapping_add(4),
        };
        state.pc = state.npc;
        state.npc = next_npc;
        state.annul = annul;
        if let Some(n) = trap {
            return Ok(SpawnEvent::Trap(n & 0x7f));
        }
        Ok(SpawnEvent::Ok)
    }
}

enum EvalStop {
    Event(SpawnEvent),
    Bug(SpawnError),
}

impl From<SpawnError> for EvalStop {
    fn from(e: SpawnError) -> EvalStop {
        EvalStop::Bug(e)
    }
}

struct Evaluator<'a, M: Memory> {
    machine: &'a Machine,
    word: u32,
    state: &'a mut SpawnState,
    mem: &'a mut M,
    // Accumulated control effects (applied once at the end).
    npc_override: Option<u32>,
    annul: bool,
    trap: Option<u32>,
}

impl<'a, M: Memory> Evaluator<'a, M> {
    fn stmt(&mut self, s: &Stmt, updates: &mut Vec<Update>) -> Result<(), EvalStop> {
        match s {
            Stmt::Assign(lv, e) => {
                let v = self.expr(e)?;
                match lv {
                    LValue::Reg(set, idx) => {
                        let i = match idx {
                            Some(ie) => self.expr(ie)?,
                            None => 0,
                        };
                        updates.push(Update::Reg(set.clone(), i, v));
                    }
                    LValue::Npc => updates.push(Update::Npc(v)),
                    LValue::Mem(a, w) => {
                        let addr = self.expr(a)?;
                        updates.push(Update::Mem(addr, *w, v));
                    }
                }
                Ok(())
            }
            Stmt::If(c, a, b) => {
                let cv = self.expr(c)?;
                let arm = if cv != 0 { a } else { b };
                for s in arm {
                    self.stmt(s, updates)?;
                }
                Ok(())
            }
            Stmt::Annul => {
                updates.push(Update::Annul);
                Ok(())
            }
            Stmt::Trap(e) => {
                let n = self.expr(e)?;
                updates.push(Update::Trap(n));
                Ok(())
            }
            Stmt::Par(g) => {
                // All right-hand sides were computed against the pre-state
                // already because commits only happen between `;` groups.
                for s in g {
                    self.stmt(s, updates)?;
                }
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<u32, EvalStop> {
        Ok(match e {
            Expr::Num(n) => *n,
            Expr::Pc => self.state.pc,
            Expr::Field(f) => self.machine.field(f, self.word),
            Expr::SxField(f) => {
                let fd = self
                    .machine
                    .description()
                    .field(f)
                    .ok_or_else(|| SpawnError::Semantic(format!("unknown field {f:?}")))?;
                let v = fd.extract(self.word);
                let sh = 32 - fd.width();
                (((v << sh) as i32) >> sh) as u32
            }
            Expr::Sxm(e, bits) => {
                let v = self.expr(e)?;
                let sh = 32 - bits;
                (((v << sh) as i32) >> sh) as u32
            }
            Expr::Reg(set, idx) => {
                let i = match idx {
                    Some(ie) => self.expr(ie)?,
                    None => 0,
                };
                self.read_reg(set, i)?
            }
            Expr::Val(n) => {
                let v = self
                    .machine
                    .description()
                    .val(n)
                    .cloned()
                    .ok_or_else(|| SpawnError::Semantic(format!("unknown value {n:?}")))?;
                self.expr(&v)?
            }
            Expr::Param(p) => {
                return Err(EvalStop::Bug(SpawnError::Semantic(format!(
                    "unsubstituted parameter {p:?}"
                ))))
            }
            Expr::Mem(a, w) => {
                let addr = self.expr(a)?;
                if addr % w != 0 {
                    return Err(EvalStop::Event(SpawnEvent::MemFault(addr)));
                }
                self.mem
                    .load(addr, *w)
                    .ok_or(EvalStop::Event(SpawnEvent::MemFault(addr)))?
            }
            Expr::Apply(f, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.builtin(f, &vals)?
            }
            Expr::Bin(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                apply_binop(*op, a, b)
            }
            Expr::Cond(c, a, b) => {
                if self.expr(c)? != 0 {
                    self.expr(a)?
                } else {
                    self.expr(b)?
                }
            }
        })
    }

    fn read_reg(&self, set: &str, i: u32) -> Result<u32, EvalStop> {
        match set {
            "R" => Ok(if i == 0 {
                0
            } else {
                self.state.r[(i & 31) as usize]
            }),
            "ICC" => Ok(self.state.icc as u32),
            "Y" => Ok(self.state.y),
            "HI" => Ok(self.state.hi),
            "LO" => Ok(self.state.lo),
            other => Err(EvalStop::Bug(SpawnError::Semantic(format!(
                "unknown register set {other:?}"
            )))),
        }
    }

    fn builtin(&self, name: &str, args: &[u32]) -> Result<u32, EvalStop> {
        let bin = |f: fn(u32, u32) -> u32| -> Result<u32, EvalStop> {
            if args.len() != 2 {
                return Err(EvalStop::Bug(SpawnError::Semantic(format!(
                    "{name} expects 2 arguments"
                ))));
            }
            Ok(f(args[0], args[1]))
        };
        // Condition-code tests: a bound test name applied to the cc value.
        if let Some(cond) = cond_by_suffix(name) {
            let cc = args.first().copied().unwrap_or(0) as u8;
            return Ok(eel_isa::eval_cond(cond, cc) as u32);
        }
        match name {
            "fadd" => bin(u32::wrapping_add),
            "fsub" => bin(u32::wrapping_sub),
            "fand" => bin(|a, b| a & b),
            "for" => bin(|a, b| a | b),
            "fxor" => bin(|a, b| a ^ b),
            "fandn" => bin(|a, b| a & !b),
            "forn" => bin(|a, b| a | !b),
            "fxnor" => bin(|a, b| !(a ^ b)),
            "fnor" => bin(|a, b| !(a | b)),
            "lts" => bin(|a, b| ((a as i32) < (b as i32)) as u32),
            "ltu" => bin(|a, b| (a < b) as u32),
            "addflags" => bin(|a, b| flags_of(eel_isa::AluOp::Add, a, b)),
            "subflags" => bin(|a, b| flags_of(eel_isa::AluOp::Sub, a, b)),
            "logflags" => {
                let x = args[0];
                let mut f = 0u32;
                if x & 0x8000_0000 != 0 {
                    f |= 0b1000;
                }
                if x == 0 {
                    f |= 0b0100;
                }
                Ok(f)
            }
            "mulhiu" => bin(|a, b| ((a as u64 * b as u64) >> 32) as u32),
            "mulhis" => bin(|a, b| ((a as i32 as i64 * b as i32 as i64) as u64 >> 32) as u32),
            "divuflags" | "divsflags" => {
                let (y, a, b) = (args[0], args[1], args[2]);
                if b == 0 {
                    return Err(EvalStop::Event(SpawnEvent::DivZero));
                }
                let op = if name == "divuflags" {
                    eel_isa::AluOp::Udiv
                } else {
                    eel_isa::AluOp::Sdiv
                };
                match eel_isa::eval_alu(op, true, a, b, y) {
                    Ok((_, Some(f), _)) => Ok(f as u32),
                    _ => Err(EvalStop::Event(SpawnEvent::DivZero)),
                }
            }
            "divu" | "divs" => {
                let (y, a, b) = (args[0], args[1], args[2]);
                if b == 0 {
                    return Err(EvalStop::Event(SpawnEvent::DivZero));
                }
                if name == "divu" {
                    let dividend = ((y as u64) << 32) | a as u64;
                    Ok((dividend / b as u64).min(u32::MAX as u64) as u32)
                } else {
                    let dividend = (((y as u64) << 32) | a as u64) as i64;
                    let q = dividend / b as i32 as i64;
                    Ok(q.clamp(i32::MIN as i64, i32::MAX as i64) as u32)
                }
            }
            "rems" | "remu" => {
                // 32-bit division remainder: a - trunc(a/b)*b, with the
                // quotient clamped exactly as `divs`/`divu` clamp it, so
                // LO/HI pairs stay consistent (INT_MIN rem -1 included).
                let (a, b) = (args[0], args[1]);
                if b == 0 {
                    return Err(EvalStop::Event(SpawnEvent::DivZero));
                }
                if name == "remu" {
                    Ok(a % b)
                } else {
                    let q = ((a as i32 as i64) / (b as i32 as i64))
                        .clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                    Ok((a as i32).wrapping_sub(q.wrapping_mul(b as i32)) as u32)
                }
            }
            "test" => {
                // test(cond_field, cc): dynamic condition evaluation.
                let cond = eel_isa::Cond::from_bits(args[0]);
                Ok(eel_isa::eval_cond(cond, args[1] as u8) as u32)
            }
            other => Err(EvalStop::Bug(SpawnError::Semantic(format!(
                "unknown builtin {other:?}"
            )))),
        }
    }
}

/// Computes SPARC condition codes for add/sub (shared with eel-isa via its
/// public `eval_alu`).
fn flags_of(op: eel_isa::AluOp, a: u32, b: u32) -> u32 {
    match eel_isa::eval_alu(op, true, a, b, 0) {
        Ok((_, Some(f), _)) => f as u32,
        _ => 0,
    }
}

fn cond_by_suffix(name: &str) -> Option<eel_isa::Cond> {
    use eel_isa::Cond;
    Some(match name {
        "n" => Cond::Never,
        "e" => Cond::Eq,
        "le" => Cond::Le,
        "l" => Cond::Lt,
        "leu" => Cond::Leu,
        "cs" => Cond::CarrySet,
        "neg" => Cond::Neg,
        "vs" => Cond::OverflowSet,
        "always" => Cond::Always,
        "ne" => Cond::Ne,
        "g" => Cond::Gt,
        "ge" => Cond::Ge,
        "gu" => Cond::Gtu,
        "cc" => Cond::CarryClear,
        "pos" => Cond::Pos,
        "vc" => Cond::OverflowClear,
        _ => return None,
    })
}

impl<'a, M: Memory> Evaluator<'a, M> {
    fn commit(&mut self, updates: &mut Vec<Update>) -> Result<Option<SpawnEvent>, SpawnError> {
        for u in updates.drain(..) {
            match u {
                Update::Reg(set, i, v) => match set.as_str() {
                    "R" => {
                        if i != 0 {
                            self.state.r[(i & 31) as usize] = v;
                        }
                    }
                    "ICC" => self.state.icc = (v & 0xf) as u8,
                    "Y" => self.state.y = v,
                    "HI" => self.state.hi = v,
                    "LO" => self.state.lo = v,
                    other => {
                        return Err(SpawnError::Semantic(format!(
                            "unknown register set {other:?}"
                        )))
                    }
                },
                Update::Npc(t) => self.npc_override = Some(t),
                Update::Mem(addr, w, v) => {
                    if addr % w != 0 {
                        return Ok(Some(SpawnEvent::MemFault(addr)));
                    }
                    if self.mem.store(addr, w, v).is_none() {
                        return Ok(Some(SpawnEvent::MemFault(addr)));
                    }
                }
                Update::Annul => self.annul = true,
                Update::Trap(n) => self.trap = Some(n),
            }
        }
        Ok(None)
    }
}
