//! The SPARC convention shim — the reproduction of Figure 6.
//!
//! Spawn is deliberately "unaware of a system's subroutine and system
//! call conventions, so these instructions require additional processing
//! to distinguish overloaded instruction uses" (§4). The paper's Figure 6
//! shows the annotated C++ that resolves, e.g., SPARC's three overloaded
//! uses of `jmpl`. This module is that code: a small, handwritten layer on
//! top of the derived [`Machine`] that produces EEL's final
//! machine-independent categories.

use crate::machine::{Class, Decoded, Machine};
use eel_isa::Category;

/// Resolves a spawn-decoded SPARC instruction to its EEL category,
/// including the convention-dependent `jmpl` overloading (Figure 6).
pub fn category(machine: &Machine, d: &Decoded<'_>) -> Category {
    match d.spec.class {
        Class::Invalid => Category::Invalid,
        Class::System => Category::SystemCall,
        Class::Branch => Category::Branch,
        // `ba`/`bn` derive as unconditional direct jumps but are branches
        // in EEL's category scheme (PC-relative with a displacement).
        Class::DirectJump if !d.spec.links => Category::Branch,
        Class::DirectJump => Category::Call,
        Class::IndirectJump => {
            // Figure 6's overload resolution for jmpl.
            let rd = machine.field("rd", d.word);
            let rs1 = machine.field("rs1", d.word);
            let i = machine.field("i", d.word);
            let simm13 = machine.field("simm13", d.word);
            if rd == 15 {
                Category::IndirectCall
            } else if rd == 0 && (rs1 == 15 || rs1 == 31) && i == 1 && simm13 == 8 {
                Category::Return
            } else {
                Category::IndirectJump
            }
        }
        Class::Load => Category::Load,
        Class::Store => Category::Store,
        Class::Computation => Category::Computation,
    }
}
