//! AST for spawn machine descriptions.
//!
//! Mirrors the structure of the paper's Figure 7: field declarations,
//! register sets, named value bindings (`val`), named encoding constraints
//! (`cons`), encoding patterns (`pat`, possibly in matrix form over a
//! bracketed name vector), semantic functions (`def`) and their
//! instantiation over instruction vectors (`sem ... is f @ [args]`).

/// A bit-field declaration: `name lo:hi` (inclusive, LSB = 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Lowest bit.
    pub lo: u32,
    /// Highest bit (inclusive).
    pub hi: u32,
}

impl FieldDecl {
    /// Field width in bits.
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Extracts this field from a word.
    pub fn extract(&self, word: u32) -> u32 {
        (word >> self.lo) & ((1u64 << self.width()) - 1) as u32
    }
}

/// Register-set kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegKind {
    /// General integer registers.
    Int,
    /// Condition codes.
    Cc,
}

/// A register-set declaration: `int R[32] width 32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDecl {
    /// Kind.
    pub kind: RegKind,
    /// Set name (`R`, `ICC`, `Y`).
    pub name: String,
    /// Number of registers (1 for scalars).
    pub count: u32,
    /// Bit width of each.
    pub width: u32,
}

/// One term of an encoding constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cons {
    /// `field (& mask)? = value` — for matrix patterns the value is
    /// [`ConsValue::PerInstruction`].
    Field {
        /// Field name.
        field: String,
        /// Optional mask applied before comparison.
        mask: Option<u32>,
        /// Required value(s).
        value: ConsValue,
    },
    /// Reference to a named `cons`.
    Named(String),
    /// Disjunction (parenthesized `a || b`).
    Any(Vec<Vec<Cons>>),
}

/// The right side of a field constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsValue {
    /// A single required value.
    One(u32),
    /// The matrix form: instruction *k* of the pattern vector requires
    /// value `values[k]` (Figure 7's `cond=[0..15]`).
    PerInstruction(Vec<u32>),
}

/// An encoding pattern: one or many instructions sharing a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Instruction names (one per matrix column).
    pub names: Vec<String>,
    /// Conjunction of constraint terms.
    pub cons: Vec<Cons>,
    /// Optional class override (for decode-only instructions whose
    /// semantics are out of scope, e.g. floating point).
    pub class_override: Option<String>,
}

/// Expressions in semantic (RTL) definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u32),
    /// The program counter.
    Pc,
    /// An instruction field (zero-extended).
    Field(String),
    /// `sx(field)` — the field, sign-extended by its declared width.
    SxField(String),
    /// `sxm(e, bits)` — sign-extend an expression from `bits` bits.
    Sxm(Box<Expr>, u32),
    /// A register: `R[e]` or a scalar set (`Y`, `ICC`).
    Reg(String, Option<Box<Expr>>),
    /// A named `val` binding.
    Val(String),
    /// A semantic-function parameter (after `def` binding).
    Param(String),
    /// Memory read: `mem[e]:width`.
    Mem(Box<Expr>, u32),
    /// Builtin or parameter application: `f(args)`.
    Apply(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Binary operators in semantic expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` (low 32 bits)
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>u` (logical)
    Shru,
    /// `>>s` (arithmetic)
    Shrs,
    /// `=` (yields 0/1)
    Eq,
    /// `!=`
    Ne,
    /// `&&` (logical)
    LogAnd,
    /// `||` (logical)
    LogOr,
}

/// Assignment targets in semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A register (indexed or scalar set).
    Reg(String, Option<Box<Expr>>),
    /// The next-PC (a control transfer).
    Npc,
    /// Memory: `mem[e]:width`.
    Mem(Box<Expr>, u32),
}

/// Semantic statements. `;` sequences; `,` runs in parallel (the paper's
/// timing notation) — the evaluator honors parallel reads-before-writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lv := e`.
    Assign(LValue, Expr),
    /// `if e { ... } else { ... }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Annul the following instruction (delay-slot annulment).
    Annul,
    /// Raise a trap with the given number.
    Trap(Expr),
    /// A parallel group (`a , b`): right-hand sides all read pre-state.
    Par(Vec<Stmt>),
}

/// A `def name(params) is stmts` semantic function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A `sem` binding: either direct statements or a `def` application over
/// per-instruction argument vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemBody {
    /// Direct statements (shared by every named instruction).
    Direct(Vec<Stmt>),
    /// `f @ [a1 ...] @ [b1 ...]`: instruction *k* gets `f(ak, bk, ...)`.
    Apply {
        /// The `def` name.
        func: String,
        /// One vector per parameter.
        arg_vectors: Vec<Vec<String>>,
    },
}

/// A `sem` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sem {
    /// Instruction names being given semantics.
    pub names: Vec<String>,
    /// The body.
    pub body: SemBody,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Description {
    /// Machine name.
    pub machine: String,
    /// Instruction word size in bits (32 for all shipped machines).
    pub word_bits: u32,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Register sets.
    pub registers: Vec<RegDecl>,
    /// Named value bindings.
    pub vals: Vec<(String, Expr)>,
    /// Named constraints.
    pub conses: Vec<(String, Vec<Cons>)>,
    /// Encoding patterns.
    pub patterns: Vec<Pattern>,
    /// Semantic functions.
    pub defs: Vec<SemDef>,
    /// Semantic bindings.
    pub sems: Vec<Sem>,
}

impl Description {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a named value binding.
    pub fn val(&self, name: &str) -> Option<&Expr> {
        self.vals.iter().find(|(n, _)| n == name).map(|(_, e)| e)
    }

    /// Looks up a named constraint.
    pub fn cons(&self, name: &str) -> Option<&[Cons]> {
        self.conses
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Looks up a semantic function.
    pub fn def(&self, name: &str) -> Option<&SemDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// All instruction names declared by patterns.
    pub fn instruction_names(&self) -> Vec<&str> {
        self.patterns
            .iter()
            .flat_map(|p| p.names.iter().map(|s| s.as_str()))
            .collect()
    }
}
