//! Seeded random Wisc program generation.
//!
//! Used to fuzz the whole stack: generated programs are interpreted (the
//! oracle), compiled, emulated, and round-tripped through EEL's editor —
//! all four must agree. Generation is constructed to terminate: loops are
//! bounded `for` loops over fresh counters, recursion is never emitted,
//! divisors are forced nonzero, and array indices are masked into range.

use eel_cc::ast::{BinOp, Expr, Function, GlobalDecl, LValue, Program, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of functions besides `main`.
    pub functions: usize,
    /// Statements per function body (before nesting).
    pub stmts_per_fn: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Number of global scalars.
    pub globals: usize,
    /// Number of global arrays (each 64 elements, power of two).
    pub arrays: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            functions: 4,
            stmts_per_fn: 8,
            max_depth: 3,
            globals: 3,
            arrays: 2,
        }
    }
}

/// Array length for generated arrays (power of two so `& (len-1)` masks
/// indices into range).
const ARRAY_LEN: u32 = 64;

/// Generates a random, terminating, well-defined program.
pub fn random_program(seed: u64, config: &GenConfig) -> Program {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        config: *config,
        counter: 0,
    };
    g.program()
}

struct Gen {
    rng: StdRng,
    config: GenConfig,
    counter: u32,
}

/// What a generated function may reference.
#[derive(Clone)]
struct Scope {
    locals: Vec<String>,
    /// Callable function names with their arities (only *earlier*
    /// functions are callable, so call graphs are acyclic — termination).
    callables: Vec<(String, usize)>,
    globals: Vec<String>,
    arrays: Vec<String>,
    depth: usize,
    /// Nesting depth of enclosing loops (break/continue legality).
    loops: usize,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn program(&mut self) -> Program {
        let mut p = Program::default();
        for i in 0..self.config.globals {
            p.globals.push(GlobalDecl {
                name: format!("g{i}"),
                count: 1,
                init: self.rng.gen_range(-50..50),
            });
        }
        for i in 0..self.config.arrays {
            p.globals.push(GlobalDecl {
                name: format!("arr{i}"),
                count: ARRAY_LEN,
                init: 0,
            });
        }
        let globals: Vec<String> = (0..self.config.globals).map(|i| format!("g{i}")).collect();
        let arrays: Vec<String> = (0..self.config.arrays).map(|i| format!("arr{i}")).collect();

        let mut callables: Vec<(String, usize)> = Vec::new();
        for i in 0..self.config.functions {
            let name = format!("f{i}");
            let arity = self.rng.gen_range(0..=3);
            let params: Vec<String> = (0..arity).map(|k| format!("p{k}")).collect();
            let mut scope = Scope {
                locals: params.clone(),
                callables: callables.clone(),
                globals: globals.clone(),
                arrays: arrays.clone(),
                depth: 0,
                loops: 0,
            };
            let mut body = self.block(&mut scope);
            body.push(Stmt::Return(self.expr(&scope, 0)));
            p.functions.push(Function {
                name: name.clone(),
                params,
                body,
            });
            callables.push((name, arity));
        }
        // main: calls into the generated functions and aggregates.
        let mut scope = Scope {
            locals: Vec::new(),
            callables,
            globals,
            arrays,
            depth: 0,
            loops: 0,
        };
        let mut body = self.block(&mut scope);
        body.push(Stmt::Return(self.expr(&scope, 0)));
        p.functions.push(Function {
            name: "main".into(),
            params: Vec::new(),
            body,
        });
        p
    }

    fn block(&mut self, scope: &mut Scope) -> Vec<Stmt> {
        let n = self.rng.gen_range(2..=self.config.stmts_per_fn.max(3));
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.stmt(scope));
        }
        out
    }

    fn stmt(&mut self, scope: &mut Scope) -> Stmt {
        let deep = scope.depth >= self.config.max_depth;
        // break/continue only inside loops, and rarely.
        if scope.loops > 0 && self.rng.gen_bool(0.04) {
            return if self.rng.gen_bool(0.5) {
                Stmt::Break
            } else {
                Stmt::Continue
            };
        }
        let choice = if deep {
            self.rng.gen_range(0..5)
        } else {
            self.rng.gen_range(0..9)
        };
        match choice {
            0 => {
                let name = self.fresh("v");
                let init = self.expr(scope, 0);
                scope.locals.push(name.clone());
                Stmt::Var(name, Some(init))
            }
            1 | 2 => {
                let value = self.expr(scope, 0);
                Stmt::Assign(self.lvalue(scope), value)
            }
            3 => Stmt::Print(self.expr(scope, 0)),
            4 => Stmt::Expr(self.expr(scope, 0)),
            5 => {
                // Bounded for loop with a fresh counter, never reassigned.
                let i = self.fresh("i");
                let bound = self.rng.gen_range(1..8);
                scope.locals.push(i.clone());
                let mut inner = scope.clone();
                inner.depth += 1;
                inner.loops += 1;
                // The loop variable must not be assigned inside; the
                // generator only assigns through `lvalue`, which draws
                // from `locals` — exclude the counter.
                let saved = inner.locals.clone();
                inner.locals.retain(|n| n != &i);
                if inner.locals.is_empty() {
                    inner.locals.push(i.clone()); // reads are fine
                }
                let body_scope = &mut Scope {
                    locals: saved,
                    ..inner.clone()
                };
                body_scope.loops = inner.loops;
                body_scope.locals.retain(|n| n != &i);
                let body = self.block_no_assign_to(body_scope, &i);
                Stmt::For(
                    Box::new(Stmt::Var(i.clone(), Some(Expr::Num(0)))),
                    Expr::Bin(
                        BinOp::Lt,
                        Box::new(Expr::Var(i.clone())),
                        Box::new(Expr::Num(bound)),
                    ),
                    Box::new(Stmt::Assign(
                        LValue::Var(i.clone()),
                        Expr::Bin(BinOp::Add, Box::new(Expr::Var(i)), Box::new(Expr::Num(1))),
                    )),
                    body,
                )
            }
            6 => {
                // Each arm gets its own scope clone: a `var` declared in
                // one arm must not be referenced from the other (it would
                // read an undeclared variable on that path).
                let cond = self.expr(scope, 0);
                let mut then_scope = scope.clone();
                then_scope.depth += 1;
                let then = self.block(&mut then_scope);
                let els = if self.rng.gen_bool(0.5) {
                    let mut else_scope = scope.clone();
                    else_scope.depth += 1;
                    self.block(&mut else_scope)
                } else {
                    Vec::new()
                };
                Stmt::If(cond, then, els)
            }
            7 => {
                // Dense switch: exercises dispatch tables. Each case body
                // gets a fresh scope (no cross-case variable leaks).
                let ncases = self.rng.gen_range(4..9);
                let scrutinee = Expr::Bin(
                    BinOp::Rem,
                    Box::new(self.expr(scope, 1)),
                    Box::new(Expr::Num(ncases + 2)),
                );
                let cases = (0..ncases)
                    .map(|v| {
                        let mut case_scope = scope.clone();
                        case_scope.depth += 1;
                        (v, self.block(&mut case_scope))
                    })
                    .collect();
                let mut default_scope = scope.clone();
                default_scope.depth += 1;
                let default = self.block(&mut default_scope);
                Stmt::Switch(scrutinee, cases, default)
            }
            _ => {
                let value = self.expr(scope, 0);
                Stmt::Assign(self.lvalue(scope), value)
            }
        }
    }

    /// A block in which `banned` is never an assignment target (protects
    /// loop counters so loops terminate).
    fn block_no_assign_to(&mut self, scope: &mut Scope, banned: &str) -> Vec<Stmt> {
        let mut body = self.block(scope);
        fn scrub(stmts: &mut [Stmt], banned: &str) {
            for s in stmts.iter_mut() {
                match s {
                    Stmt::Assign(LValue::Var(n), _) if n == banned => {
                        *s = Stmt::Expr(Expr::Num(0));
                    }
                    Stmt::If(_, a, b) => {
                        scrub(a, banned);
                        scrub(b, banned);
                    }
                    Stmt::For(_, _, _, b) | Stmt::While(_, b) => scrub(b, banned),
                    Stmt::Switch(_, cases, d) => {
                        for (_, b) in cases.iter_mut() {
                            scrub(b, banned);
                        }
                        scrub(d, banned);
                    }
                    _ => {}
                }
            }
        }
        scrub(&mut body, banned);
        body
    }

    fn lvalue(&mut self, scope: &Scope) -> LValue {
        let pick = self.rng.gen_range(0..3);
        if pick == 0 && !scope.arrays.is_empty() {
            let a = scope.arrays[self.rng.gen_range(0..scope.arrays.len())].clone();
            let idx = self.masked_index(scope);
            LValue::Index(a, idx)
        } else if pick == 1 && !scope.globals.is_empty() {
            LValue::Global(scope.globals[self.rng.gen_range(0..scope.globals.len())].clone())
        } else if !scope.locals.is_empty() {
            LValue::Var(scope.locals[self.rng.gen_range(0..scope.locals.len())].clone())
        } else if !scope.globals.is_empty() {
            LValue::Global(scope.globals[0].clone())
        } else {
            LValue::Var("spill".into()) // unreachable with default configs
        }
    }

    /// `expr & (ARRAY_LEN - 1)` — always a valid index.
    fn masked_index(&mut self, scope: &Scope) -> Expr {
        Expr::Bin(
            BinOp::And,
            Box::new(self.expr(scope, 2)),
            Box::new(Expr::Num((ARRAY_LEN - 1) as i32)),
        )
    }

    fn expr(&mut self, scope: &Scope, depth: u32) -> Expr {
        if depth >= 3 {
            return self.leaf(scope);
        }
        match self.rng.gen_range(0..10) {
            0..=2 => self.leaf(scope),
            3 => Expr::Neg(Box::new(self.expr(scope, depth + 1))),
            4 => Expr::Not(Box::new(self.expr(scope, depth + 1))),
            5 if !scope.callables.is_empty() => {
                let (name, arity) =
                    scope.callables[self.rng.gen_range(0..scope.callables.len())].clone();
                let args = (0..arity).map(|_| self.expr(scope, depth + 1)).collect();
                Expr::Call(name, args)
            }
            6 => {
                // Division by a guaranteed-nonzero value.
                let divisor = Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Bin(
                        BinOp::And,
                        Box::new(self.expr(scope, depth + 1)),
                        Box::new(Expr::Num(7)),
                    )),
                    Box::new(Expr::Num(1)),
                );
                let op = if self.rng.gen_bool(0.5) {
                    BinOp::Div
                } else {
                    BinOp::Rem
                };
                Expr::Bin(op, Box::new(self.expr(scope, depth + 1)), Box::new(divisor))
            }
            _ => {
                let op = *[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::LogAnd,
                    BinOp::LogOr,
                    BinOp::Shl,
                    BinOp::Shr,
                ]
                .get(self.rng.gen_range(0..16usize))
                .unwrap();
                let lhs = self.expr(scope, depth + 1);
                let rhs = if matches!(op, BinOp::Shl | BinOp::Shr) {
                    // Bounded shift counts.
                    Expr::Bin(
                        BinOp::And,
                        Box::new(self.expr(scope, depth + 1)),
                        Box::new(Expr::Num(15)),
                    )
                } else {
                    self.expr(scope, depth + 1)
                };
                Expr::Bin(op, Box::new(lhs), Box::new(rhs))
            }
        }
    }

    fn leaf(&mut self, scope: &Scope) -> Expr {
        match self.rng.gen_range(0..4) {
            0 => Expr::Num(self.rng.gen_range(-100..100)),
            1 if !scope.locals.is_empty() => {
                Expr::Var(scope.locals[self.rng.gen_range(0..scope.locals.len())].clone())
            }
            2 if !scope.globals.is_empty() => {
                Expr::Global(scope.globals[self.rng.gen_range(0..scope.globals.len())].clone())
            }
            3 if !scope.arrays.is_empty() => {
                let a = scope.arrays[self.rng.gen_range(0..scope.arrays.len())].clone();
                let idx = self.masked_index(scope);
                Expr::Index(a, Box::new(idx))
            }
            _ => Expr::Num(self.rng.gen_range(0..50)),
        }
    }
}
