//! The fixed workload suite: SPEC92-shaped Wisc programs.
//!
//! The paper measured EEL over the SPEC92 benchmarks compiled by gcc and
//! SunPro (§3.3: 1,325/1,244 indirect jumps, 11,975/16,613 routines) and
//! instrumented `spim` for Table 1. These programs reproduce the *code
//! shapes* those measurements depend on: dispatch-table-heavy interpreter
//! loops, recursion, pointer dispatch, sorting, and bit-twiddling — each
//! deterministic, self-checking, and scalable.

/// A named workload. Expected behavior comes from the `eel-cc`
/// interpreter oracle, so workloads need no hardcoded answers.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (styled after the SPEC92 program it is shaped on).
    pub name: &'static str,
    /// Wisc source text.
    pub source: String,
}

/// The interpreter workload (shaped on `spim`, Table 1's subject): a
/// fetch–decode–execute loop over a synthetic bytecode with a dense
/// `switch` — the canonical dispatch-table producer.
pub fn spim_like(steps: u32) -> Workload {
    let source = format!(
        r#"
        global regs[8];
        global prog[64];
        global pc;
        global cycles;

        fn load_program() {{
            var i;
            // Synthetic bytecode: op = i*7 % 9, operands derived from i.
            for (i = 0; i < 64; i = i + 1) {{
                prog[i] = (i * 7 % 9) * 256 + (i % 8) * 16 + (i * 3 % 8);
            }}
        }}

        fn step() {{
            var insn = prog[pc & 63];
            var op = insn / 256;
            var a = (insn / 16) % 8;
            var b = insn % 8;
            pc = pc + 1;
            switch (op) {{
                case 0: {{ regs[a] = regs[a] + regs[b]; }}
                case 1: {{ regs[a] = regs[a] - regs[b]; }}
                case 2: {{ regs[a] = regs[a] * 3 + b; }}
                case 3: {{ regs[a] = regs[b]; }}
                case 4: {{ if (regs[a] > regs[b]) {{ pc = pc + 2; }} }}
                case 5: {{ regs[a] = regs[a] & regs[b]; }}
                case 6: {{ regs[a] = regs[a] | (b + 1); }}
                case 7: {{ regs[a] = regs[a] ^ regs[b]; }}
                default: {{ regs[0] = regs[0] + 1; }}
            }}
            cycles = cycles + 1;
            return 0;
        }}

        fn main() {{
            var i;
            load_program();
            for (i = 0; i < {steps}; i = i + 1) {{ step(); }}
            var sum = 0;
            for (i = 0; i < 8; i = i + 1) {{
                sum = sum ^ regs[i] + i;
            }}
            print(sum);
            return sum & 255;
        }}
    "#
    );
    Workload {
        name: "spim",
        source,
    }
}

/// Compression-shaped workload (`compress`): byte-stream transform with
/// table lookups and bit manipulation.
pub fn compress_like(bytes: u32) -> Workload {
    let source = format!(
        r#"
        global input[256];
        global dict[256];
        global output;

        fn hash(x, y) {{ return ((x * 31 + y) & 255); }}

        fn main() {{
            var i;
            for (i = 0; i < 256; i = i + 1) {{
                input[i] = (i * 17 + 5) & 255;
                dict[i] = 0;
            }}
            var prev = 0;
            var emitted = 0;
            for (i = 0; i < {bytes}; i = i + 1) {{
                var c = input[i & 255];
                var h = hash(prev, c);
                if (dict[h] == c) {{
                    emitted = emitted + 1;
                }} else {{
                    dict[h] = c;
                    output = output + c;
                    emitted = emitted + 2;
                }}
                prev = c;
            }}
            print(output);
            print(emitted);
            return (output ^ emitted) & 255;
        }}
    "#
    );
    Workload {
        name: "compress",
        source,
    }
}

/// Sorting/comparison-shaped workload (`eqntott`): repeated quicksort-like
/// partitioning with comparison-heavy inner loops.
pub fn eqntott_like(n: u32) -> Workload {
    let source = format!(
        r#"
        global data[512];

        fn partition(lo, hi) {{
            var pivot = data[hi & 511];
            var i = lo - 1;
            var j;
            for (j = lo; j < hi; j = j + 1) {{
                if (data[j & 511] <= pivot) {{
                    i = i + 1;
                    var t = data[i & 511];
                    data[i & 511] = data[j & 511];
                    data[j & 511] = t;
                }}
            }}
            var t2 = data[(i + 1) & 511];
            data[(i + 1) & 511] = data[hi & 511];
            data[hi & 511] = t2;
            return i + 1;
        }}

        fn qsort(lo, hi) {{
            if (lo < hi) {{
                var p = partition(lo, hi);
                qsort(lo, p - 1);
                qsort(p + 1, hi);
            }}
            return 0;
        }}

        fn main() {{
            var i;
            for (i = 0; i < {n}; i = i + 1) {{
                data[i] = (i * 193 + 7) % 1000;
            }}
            qsort(0, {n} - 1);
            var checksum = 0;
            var sorted = 1;
            for (i = 1; i < {n}; i = i + 1) {{
                if (data[i - 1] > data[i]) {{ sorted = 0; }}
                checksum = checksum + data[i] * i;
            }}
            print(sorted);
            print(checksum);
            return sorted * 100 + (checksum & 63);
        }}
    "#
    );
    Workload {
        name: "eqntott",
        source,
    }
}

/// Bitset-manipulation workload (`espresso`): logic-minimization-shaped
/// sweeps over packed bit vectors.
pub fn espresso_like(rounds: u32) -> Workload {
    let source = format!(
        r#"
        global cubes[128];

        fn popcount(x) {{
            var n = 0;
            while (x != 0) {{
                n = n + (x & 1);
                x = (x >> 1) & 2147483647;
            }}
            return n;
        }}

        fn main() {{
            var i; var r;
            for (i = 0; i < 128; i = i + 1) {{
                cubes[i] = i * 2654435761;
            }}
            var cover = 0;
            for (r = 0; r < {rounds}; r = r + 1) {{
                for (i = 1; i < 128; i = i + 1) {{
                    var merged = cubes[i] & cubes[i - 1];
                    if (popcount(merged) > 8) {{
                        cubes[i] = merged | (r & 255);
                        cover = cover + 1;
                    }} else {{
                        cubes[i] = cubes[i] ^ (cubes[i - 1] >> 3);
                    }}
                }}
            }}
            print(cover);
            return cover & 255;
        }}
    "#
    );
    Workload {
        name: "espresso",
        source,
    }
}

/// Interpreter-with-pointers workload (`li`): recursive expression
/// evaluation dispatched through function pointers (lisp-eval shaped).
pub fn li_like(depth: u32) -> Workload {
    let source = format!(
        r#"
        global nodes_op[64];
        global nodes_left[64];
        global nodes_right[64];
        global leaf_values[64];

        fn eval_leaf(n) {{ return leaf_values[n & 63]; }}
        fn eval_add(n) {{ return eval(nodes_left[n & 63]) + eval(nodes_right[n & 63]); }}
        fn eval_sub(n) {{ return eval(nodes_left[n & 63]) - eval(nodes_right[n & 63]); }}
        fn eval_mul(n) {{ return eval(nodes_left[n & 63]) * eval(nodes_right[n & 63]) % 9973; }}

        fn eval(n) {{
            var op = nodes_op[n & 63];
            if (op == 0) {{ return (*&eval_leaf)(n); }}
            if (op == 1) {{ return (*&eval_add)(n); }}
            if (op == 2) {{ return (*&eval_sub)(n); }}
            return (*&eval_mul)(n);
        }}

        fn main() {{
            var i;
            for (i = 0; i < 64; i = i + 1) {{
                leaf_values[i] = i * 7 % 101;
                if (i < 31) {{
                    nodes_op[i] = (i % 3) + 1;
                    nodes_left[i] = 2 * i + 1;
                    nodes_right[i] = 2 * i + 2;
                }} else {{
                    nodes_op[i] = 0;
                }}
            }}
            var total = 0;
            for (i = 0; i < {depth}; i = i + 1) {{
                total = (total + eval(0)) % 65536;
            }}
            print(total);
            return total & 255;
        }}
    "#
    );
    Workload { name: "li", source }
}

/// Spreadsheet-shaped workload (`sc`): cell recomputation with a `switch`
/// over formula kinds.
pub fn sc_like(passes: u32) -> Workload {
    let source = format!(
        r#"
        global cells[256];
        global kinds[256];

        fn recompute(i) {{
            var k = kinds[i & 255];
            switch (k) {{
                case 0: {{ return cells[i & 255]; }}
                case 1: {{ return cells[(i - 1) & 255] + cells[(i + 1) & 255]; }}
                case 2: {{ return cells[(i - 1) & 255] * 2; }}
                case 3: {{ return cells[(i + 1) & 255] - 1; }}
                case 4: {{ return (cells[(i - 1) & 255] + cells[(i + 1) & 255]) / 2; }}
                case 5: {{ return cells[i & 255] % 97; }}
                default: {{ return 0; }}
            }}
        }}

        fn main() {{
            var i; var p;
            for (i = 0; i < 256; i = i + 1) {{
                cells[i] = i * 3 + 1;
                kinds[i] = i % 7;
            }}
            for (p = 0; p < {passes}; p = p + 1) {{
                for (i = 0; i < 256; i = i + 1) {{
                    cells[i] = recompute(i) & 65535;
                }}
            }}
            var sum = 0;
            for (i = 0; i < 256; i = i + 1) {{ sum = (sum + cells[i]) & 1048575; }}
            print(sum);
            return sum & 255;
        }}
    "#
    );
    Workload { name: "sc", source }
}

/// Compiler-shaped workload (`gcc`): many small routines and a wide
/// instruction-selection `switch`.
pub fn gcc_like(units: u32) -> Workload {
    let source = format!(
        r#"
        global ir[512];
        global out;

        fn cost_reg(x) {{ return x & 3; }}
        fn cost_mem(x) {{ return (x & 7) + 4; }}
        fn cost_imm(x) {{ return 1; }}

        fn select(op, x) {{
            switch (op) {{
                case 0: {{ return cost_reg(x); }}
                case 1: {{ return cost_mem(x); }}
                case 2: {{ return cost_imm(x); }}
                case 3: {{ return cost_reg(x) + cost_mem(x); }}
                case 4: {{ return cost_mem(x) * 2; }}
                case 5: {{ return cost_reg(x + 1); }}
                case 6: {{ return cost_imm(x) + 2; }}
                case 7: {{ return cost_reg(x) ^ 1; }}
                case 8: {{ return cost_mem(x) - 1; }}
                case 9: {{ return cost_reg(x) + cost_imm(x); }}
                default: {{ return 99; }}
            }}
        }}

        fn main() {{
            var i; var u;
            for (i = 0; i < 512; i = i + 1) {{ ir[i] = i * 2246822519; }}
            for (u = 0; u < {units}; u = u + 1) {{
                for (i = 0; i < 512; i = i + 1) {{
                    var insn = ir[i];
                    out = out + select(((insn >> 8) & 15) % 11, insn & 255);
                }}
            }}
            print(out);
            return out & 255;
        }}
    "#
    );
    Workload {
        name: "gcc",
        source,
    }
}

/// The default suite at modest sizes (fast enough for tests; benches use
/// larger parameters).
pub fn suite() -> Vec<Workload> {
    suite_sized(1)
}

/// The suite scaled by a size factor.
pub fn suite_sized(scale: u32) -> Vec<Workload> {
    vec![
        spim_like(400 * scale),
        compress_like(600 * scale),
        eqntott_like(200.min(120 * scale).max(60)),
        espresso_like(6 * scale),
        li_like(40 * scale),
        sc_like(4 * scale),
        gcc_like(2 * scale),
    ]
}
