//! Wisc → MIPS-I code generation.
//!
//! The cross-ISA twin generator: compiles the same Wisc AST that
//! `eel-cc` compiles for SPARC into a MIPS-tagged WEF image, so every
//! workload in the suite exists for both machines and the
//! `eel_cc::interpret` oracle checks both backends.
//!
//! The code shape is a plain stack machine — every temporary lives on
//! the stack, expression results travel in `$v0` — which keeps the
//! generator small and makes the output a good analysis subject:
//! branches with architecturally-exposed delay slots (always filled with
//! `nop`), `jal`/`jr $ra` calls, and `addiu $sp,...; sw $ra,...`
//! prologues for eel-strip's MIPS signature.
//!
//! Two deliberate restrictions keep MIPS text block-relocatable (no
//! absolute code addresses escape into registers or data, so the
//! generic instrumenter can move blocks): `switch` compiles to a
//! compare chain instead of a dispatch table, and function pointers
//! (`&f`, `(*e)(..)`) are rejected with a clear error.
//!
//! Register conventions: `$v0` result, `$a0–$a2` syscall arguments,
//! `$t0–$t5` runtime scratch, `$sp`/`$ra` as usual. `$at`, `$k0`, `$k1`
//! are never emitted — `$k0`/`$k1` are reserved for instrumentation
//! counter code, exactly like `%g2`/`%g3` on the SPARC side.

use eel_cc::ast::{BinOp, Expr, Function, LValue, Program, Stmt};
use eel_exe::{Image, Machine, Symbol, DATA_BASE, TEXT_BASE};
use std::collections::HashMap;

// Register numbers.
const ZERO: u32 = 0;
const V0: u32 = 2;
const A0: u32 = 4;
const A1: u32 = 5;
const A2: u32 = 6;
const T0: u32 = 8;
const T1: u32 = 9;
const T2: u32 = 10;
const T3: u32 = 11;
const T4: u32 = 12;
const T5: u32 = 13;
const SP: u32 = 29;
const RA: u32 = 31;

/// System-call numbers (shared with `eel_emu::sys`).
const SYS_EXIT: u32 = 1;
const SYS_WRITE: u32 = 4;

// ---- encoders ----------------------------------------------------------

fn r_type(funct: u32, rs: u32, rt: u32, rd: u32, shamt: u32) -> u32 {
    (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn i_type(op: u32, rs: u32, rt: u32, imm: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm & 0xffff)
}

fn addu(rd: u32, rs: u32, rt: u32) -> u32 {
    r_type(33, rs, rt, rd, 0)
}

fn subu(rd: u32, rs: u32, rt: u32) -> u32 {
    r_type(35, rs, rt, rd, 0)
}

fn addiu(rt: u32, rs: u32, imm: i32) -> u32 {
    i_type(9, rs, rt, imm as u32)
}

fn lui(rt: u32, imm: u32) -> u32 {
    i_type(15, 0, rt, imm)
}

fn ori(rt: u32, rs: u32, imm: u32) -> u32 {
    i_type(13, rs, rt, imm)
}

fn lw(rt: u32, base: u32, off: i32) -> u32 {
    i_type(35, base, rt, off as u32)
}

fn sw(rt: u32, base: u32, off: i32) -> u32 {
    i_type(43, base, rt, off as u32)
}

fn sb(rt: u32, base: u32, off: i32) -> u32 {
    i_type(40, base, rt, off as u32)
}

fn sll(rd: u32, rt: u32, shamt: u32) -> u32 {
    r_type(0, 0, rt, rd, shamt)
}

fn jr(rs: u32) -> u32 {
    r_type(8, rs, 0, 0, 0)
}

const NOP: u32 = 0;
const SYSCALL: u32 = 12; // r_type funct 12, all fields zero

/// One emitted slot: either a finished word or a control transfer whose
/// displacement is patched once label addresses are known.
#[derive(Clone, Copy)]
enum Slot {
    Word(u32),
    /// I-type `beq`/`bne` *with its delay slot*: assembles to branch +
    /// `nop` when the displacement fits imm16, or relaxes to an
    /// inverted branch over a `j` (4 words) when it does not — random
    /// programs routinely exceed MIPS's ±128 KiB conditional reach.
    Branch {
        word: u32,
        label: usize,
    },
    /// J-type jump (target26 patched to a pseudo-absolute word address).
    Jump {
        word: u32,
        label: usize,
    },
}

/// The per-program emitter.
struct Emitter<'p> {
    program: &'p Program,
    code: Vec<Slot>,
    /// label id → slot index.
    labels: Vec<Option<usize>>,
    /// function name → entry label.
    fn_labels: HashMap<String, usize>,
    /// global name → (absolute address, element count).
    globals: HashMap<String, (u32, u32)>,
    /// Routine symbols as (name, entry label).
    routines: Vec<(String, usize)>,
    print_label: usize,
    print_buf: u32,
    errors: Vec<String>,
}

/// Per-function state.
struct Frame {
    /// local/param name → slot index (slot s lives at `4*s(sp)`).
    slots: HashMap<String, usize>,
    /// Total local slots (ra is stored at `4*slots_len(sp)`).
    nslots: usize,
    /// Words currently pushed on the eval stack (adjusts sp offsets).
    depth: usize,
    epilogue: usize,
    /// (continue target, break target) for enclosing loops.
    loop_labels: Vec<(usize, usize)>,
}

impl Frame {
    fn frame_size(&self) -> i32 {
        4 * (self.nslots as i32 + 1)
    }
}

/// Compiles a Wisc program to a MIPS-tagged WEF image.
///
/// # Errors
///
/// A human-readable message for unsupported constructs (function
/// pointers, indirect calls, too many distinct locals) or unresolved
/// names — the same classes of error `eel_cc` reports for SPARC.
pub fn compile_mips(program: &Program) -> Result<Image, String> {
    let _obs = eel_obs::span("progen.compile_mips");
    let mut e = Emitter {
        program,
        code: Vec::new(),
        labels: Vec::new(),
        fn_labels: HashMap::new(),
        globals: HashMap::new(),
        routines: Vec::new(),
        print_label: 0,
        print_buf: DATA_BASE,
        errors: Vec::new(),
    };
    e.run()
}

impl<'p> Emitter<'p> {
    fn run(&mut self) -> Result<Image, String> {
        if self.program.function("main").is_none() {
            return Err("no `main` function".into());
        }
        // Data layout: 16-byte print buffer, then globals.
        let mut data_off = 16u32;
        for g in &self.program.globals {
            self.globals
                .insert(g.name.clone(), (DATA_BASE + data_off, g.count));
            data_off += 4 * g.count.max(1);
        }
        // Pre-assign entry labels so forward calls resolve.
        self.print_label = self.new_label();
        for f in &self.program.functions {
            let l = self.new_label();
            self.fn_labels.insert(f.name.clone(), l);
        }

        self.emit_start();
        for f in &self.program.functions {
            self.emit_function(f)?;
        }
        self.emit_print_int();

        if !self.errors.is_empty() {
            return Err(self.errors.join("; "));
        }
        self.assemble(data_off)
    }

    // ---- emission primitives -------------------------------------------

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        self.labels[label] = Some(self.code.len());
    }

    fn word(&mut self, w: u32) {
        self.code.push(Slot::Word(w));
    }

    /// Emits a branch; the delay-slot `nop` is part of the slot so the
    /// assembler can relax it to a branch-over-jump when out of range.
    fn branch(&mut self, op: u32, rs: u32, rt: u32, label: usize) {
        debug_assert!(op == 4 || op == 5, "only beq/bne are relaxable");
        self.code.push(Slot::Branch {
            word: i_type(op, rs, rt, 0),
            label,
        });
    }

    fn beq(&mut self, rs: u32, rt: u32, label: usize) {
        self.branch(4, rs, rt, label);
    }

    fn bne(&mut self, rs: u32, rt: u32, label: usize) {
        self.branch(5, rs, rt, label);
    }

    /// Emits `j label` with a `nop` delay slot.
    fn jump(&mut self, label: usize) {
        self.code.push(Slot::Jump {
            word: 2 << 26,
            label,
        });
        self.word(NOP);
    }

    /// Emits `jal label` with a `nop` delay slot.
    fn call(&mut self, label: usize) {
        self.code.push(Slot::Jump {
            word: 3 << 26,
            label,
        });
        self.word(NOP);
    }

    /// Loads a 32-bit constant into `r`.
    fn li(&mut self, r: u32, v: i32) {
        if (-0x8000..0x8000).contains(&v) {
            self.word(addiu(r, ZERO, v));
        } else {
            self.word(lui(r, (v as u32) >> 16));
            if v as u32 & 0xffff != 0 {
                self.word(ori(r, r, v as u32 & 0xffff));
            }
        }
    }

    /// Splits an absolute address for `lui` + signed-offset addressing:
    /// returns `(hi, lo)` with `hi` pre-adjusted for sign-extension.
    fn hi_lo(addr: u32) -> (u32, i32) {
        let lo = (addr & 0xffff) as i32;
        let lo = if lo >= 0x8000 { lo - 0x10000 } else { lo };
        let hi = addr.wrapping_sub(lo as u32) >> 16;
        (hi, lo)
    }

    // ---- runtime routines ----------------------------------------------

    /// `__start`: call main, pass its result to `exit`.
    fn emit_start(&mut self) {
        let entry = self.new_label();
        self.bind(entry);
        self.routines.push(("__start".into(), entry));
        let main = self.fn_labels["main"];
        self.call(main);
        self.word(addu(A0, V0, ZERO));
        self.li(V0, SYS_EXIT as i32);
        self.word(SYSCALL);
        self.word(NOP);
    }

    /// `__print_int`: decimal + newline via `write`, digits built
    /// backward in the print buffer (the MIPS twin of the SPARC runtime).
    fn emit_print_int(&mut self) {
        let label = self.print_label;
        self.bind(label);
        self.routines.push(("__print_int".into(), label));
        let (digit, write) = (self.new_label(), self.new_label());
        let positive = self.new_label();
        // p = buf+15; *p = '\n' (10, which is also the divisor).
        self.li(T1, (self.print_buf + 15) as i32);
        self.li(T2, 10);
        self.word(sb(T2, T1, 0));
        // n = a0; t3 = n < 0; if so negate (0x8000_0000 stays put and is
        // handled as unsigned by divu below).
        self.word(addu(T0, A0, ZERO));
        self.word(r_type(42, T0, ZERO, T3, 0)); // slt t3, t0, zero
        self.beq(T3, ZERO, positive);
        self.word(subu(T0, ZERO, T0));
        self.bind(positive);
        self.bind(digit);
        self.word(r_type(27, T0, T2, 0, 0)); // divu t0, t2 → LO=q, HI=r
        self.word(r_type(16, 0, 0, T4, 0)); // mfhi t4
        self.word(addiu(T4, T4, 48)); // '0'
        self.word(addiu(T1, T1, -1));
        self.word(sb(T4, T1, 0));
        self.word(r_type(18, 0, 0, T0, 0)); // mflo t0
        self.bne(T0, ZERO, digit);
        self.beq(T3, ZERO, write);
        self.li(T4, 45); // '-'
        self.word(addiu(T1, T1, -1));
        self.word(sb(T4, T1, 0));
        self.bind(write);
        // write(1, p, buf+16 - p)
        self.li(A0, 1);
        self.word(addu(A1, T1, ZERO));
        self.li(T5, (self.print_buf + 16) as i32);
        self.word(subu(A2, T5, T1));
        self.li(V0, SYS_WRITE as i32);
        self.word(SYSCALL);
        self.word(jr(RA));
        self.word(NOP);
    }

    // ---- functions ------------------------------------------------------

    fn emit_function(&mut self, f: &Function) -> Result<(), String> {
        let entry = self.fn_labels[&f.name];
        self.bind(entry);
        self.routines.push((f.name.clone(), entry));

        // Slot assignment: params first, then every `var` in order of
        // first declaration (collected ahead of time so nested blocks
        // reuse one frame).
        let mut slots = HashMap::new();
        for p in &f.params {
            let n = slots.len();
            slots.entry(p.clone()).or_insert(n);
        }
        collect_vars(&f.body, &mut slots);
        let mut frame = Frame {
            nslots: slots.len(),
            slots,
            depth: 0,
            epilogue: self.new_label(),
            loop_labels: Vec::new(),
        };

        // Prologue: grow frame, save ra, spill incoming stack args into
        // their local slots. This is the MIPS prologue signature
        // (`addiu $sp,$sp,-imm` + `sw $ra,off($sp)`) eel-strip keys on.
        let fs = frame.frame_size();
        self.word(addiu(SP, SP, -fs));
        self.word(sw(RA, SP, 4 * frame.nslots as i32));
        let nargs = f.params.len() as i32;
        for (i, p) in f.params.iter().enumerate() {
            let slot = frame.slots[p] as i32;
            // Caller pushed args left-to-right: arg i sits above the new
            // frame at fs + 4*(nargs-1-i).
            self.word(lw(T0, SP, fs + 4 * (nargs - 1 - i as i32)));
            self.word(sw(T0, SP, 4 * slot));
        }

        for s in &f.body {
            self.stmt(s, &mut frame)?;
        }
        // Implicit `return 0`.
        self.li(V0, 0);
        self.bind(frame.epilogue);
        self.word(lw(RA, SP, 4 * frame.nslots as i32));
        self.word(addiu(SP, SP, fs));
        self.word(jr(RA));
        self.word(NOP);
        debug_assert_eq!(frame.depth, 0, "{}: unbalanced eval stack", f.name);
        Ok(())
    }

    // ---- eval-stack helpers --------------------------------------------

    fn push_v0(&mut self, frame: &mut Frame) {
        self.word(addiu(SP, SP, -4));
        self.word(sw(V0, SP, 0));
        frame.depth += 1;
    }

    fn pop(&mut self, frame: &mut Frame, r: u32) {
        self.word(lw(r, SP, 0));
        self.word(addiu(SP, SP, 4));
        frame.depth -= 1;
    }

    /// sp-relative offset of a local slot, adjusted for pushed temporaries.
    fn slot_off(frame: &Frame, slot: usize) -> i32 {
        4 * (slot as i32 + frame.depth as i32)
    }

    // ---- statements -----------------------------------------------------

    fn stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<(), String> {
        match s {
            Stmt::Var(name, init) => {
                let slot = *frame
                    .slots
                    .get(name)
                    .ok_or_else(|| format!("unslotted local {name:?}"))?;
                match init {
                    Some(e) => self.expr(e, frame)?,
                    None => self.li(V0, 0),
                }
                self.word(sw(V0, SP, Self::slot_off(frame, slot)));
            }
            Stmt::Assign(lv, e) => match lv {
                LValue::Var(name) => {
                    if let Some(&slot) = frame.slots.get(name) {
                        self.expr(e, frame)?;
                        self.word(sw(V0, SP, Self::slot_off(frame, slot)));
                    } else if self.globals.contains_key(name) {
                        self.assign_global(name, e, frame)?;
                    } else {
                        return Err(format!("assignment to undefined {name:?}"));
                    }
                }
                LValue::Global(name) => self.assign_global(name, e, frame)?,
                LValue::Index(name, idx) => {
                    let (addr, _) = *self
                        .globals
                        .get(name)
                        .ok_or_else(|| format!("unknown global {name:?}"))?;
                    self.expr(e, frame)?;
                    self.push_v0(frame);
                    self.expr(idx, frame)?;
                    self.word(sll(V0, V0, 2));
                    let (hi, lo) = Self::hi_lo(addr);
                    self.word(lui(T1, hi));
                    self.word(addu(T1, T1, V0));
                    self.pop(frame, T0);
                    self.word(sw(T0, T1, lo));
                }
            },
            Stmt::If(cond, then, els) => {
                let (l_else, l_end) = (self.new_label(), self.new_label());
                self.expr(cond, frame)?;
                self.beq(V0, ZERO, l_else);
                for s in then {
                    self.stmt(s, frame)?;
                }
                self.jump(l_end);
                self.bind(l_else);
                for s in els {
                    self.stmt(s, frame)?;
                }
                self.bind(l_end);
            }
            Stmt::While(cond, body) => {
                let (l_loop, l_end) = (self.new_label(), self.new_label());
                self.bind(l_loop);
                self.expr(cond, frame)?;
                self.beq(V0, ZERO, l_end);
                frame.loop_labels.push((l_loop, l_end));
                for s in body {
                    self.stmt(s, frame)?;
                }
                frame.loop_labels.pop();
                self.jump(l_loop);
                self.bind(l_end);
            }
            Stmt::For(init, cond, step, body) => {
                // Parser-desugared in practice; handled directly for
                // programmatically-built ASTs. `continue` targets the step.
                let (l_cond, l_step, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.stmt(init, frame)?;
                self.bind(l_cond);
                self.expr(cond, frame)?;
                self.beq(V0, ZERO, l_end);
                frame.loop_labels.push((l_step, l_end));
                for s in body {
                    self.stmt(s, frame)?;
                }
                frame.loop_labels.pop();
                self.bind(l_step);
                self.stmt(step, frame)?;
                self.jump(l_cond);
                self.bind(l_end);
            }
            Stmt::Switch(scrutinee, cases, default) => {
                // Compare chain, not a dispatch table: MIPS text stays
                // free of absolute code addresses (block-relocatable).
                self.expr(scrutinee, frame)?;
                let l_end = self.new_label();
                let l_default = self.new_label();
                let case_labels: Vec<usize> = cases.iter().map(|_| self.new_label()).collect();
                for ((k, _), &l) in cases.iter().zip(&case_labels) {
                    self.li(T0, *k);
                    self.beq(V0, T0, l);
                }
                self.jump(l_default);
                for ((_, body), &l) in cases.iter().zip(&case_labels) {
                    self.bind(l);
                    for s in body {
                        self.stmt(s, frame)?;
                    }
                    self.jump(l_end);
                }
                self.bind(l_default);
                for s in default {
                    self.stmt(s, frame)?;
                }
                self.bind(l_end);
            }
            Stmt::Return(e) => {
                self.expr(e, frame)?;
                self.jump(frame.epilogue);
            }
            Stmt::Break => {
                let (_, l_end) = *frame
                    .loop_labels
                    .last()
                    .ok_or_else(|| "break outside loop".to_string())?;
                self.jump(l_end);
            }
            Stmt::Continue => {
                let (l_cont, _) = *frame
                    .loop_labels
                    .last()
                    .ok_or_else(|| "continue outside loop".to_string())?;
                self.jump(l_cont);
            }
            Stmt::Print(e) => {
                self.expr(e, frame)?;
                self.word(addu(A0, V0, ZERO));
                let print = self.print_label;
                self.call(print);
            }
            Stmt::Expr(e) => {
                self.expr(e, frame)?;
            }
        }
        Ok(())
    }

    fn assign_global(&mut self, name: &str, e: &Expr, frame: &mut Frame) -> Result<(), String> {
        let (addr, _) = *self
            .globals
            .get(name)
            .ok_or_else(|| format!("unknown global {name:?}"))?;
        self.expr(e, frame)?;
        let (hi, lo) = Self::hi_lo(addr);
        self.word(lui(T1, hi));
        self.word(sw(V0, T1, lo));
        Ok(())
    }

    // ---- expressions ----------------------------------------------------

    /// Evaluates `e` into `$v0`.
    fn expr(&mut self, e: &Expr, frame: &mut Frame) -> Result<(), String> {
        match e {
            Expr::Num(n) => self.li(V0, *n),
            Expr::Var(name) => {
                if let Some(&slot) = frame.slots.get(name) {
                    self.word(lw(V0, SP, Self::slot_off(frame, slot)));
                } else if let Some(&(addr, _)) = self.globals.get(name) {
                    let (hi, lo) = Self::hi_lo(addr);
                    self.word(lui(V0, hi));
                    self.word(lw(V0, V0, lo));
                } else {
                    return Err(format!("undefined name {name:?}"));
                }
            }
            Expr::Global(name) => {
                let (addr, _) = *self
                    .globals
                    .get(name)
                    .ok_or_else(|| format!("unknown global {name:?}"))?;
                let (hi, lo) = Self::hi_lo(addr);
                self.word(lui(V0, hi));
                self.word(lw(V0, V0, lo));
            }
            Expr::Index(name, idx) => {
                let (addr, _) = *self
                    .globals
                    .get(name)
                    .ok_or_else(|| format!("unknown global {name:?}"))?;
                self.expr(idx, frame)?;
                self.word(sll(V0, V0, 2));
                let (hi, lo) = Self::hi_lo(addr);
                self.word(lui(T1, hi));
                self.word(addu(T1, T1, V0));
                self.word(lw(V0, T1, lo));
            }
            Expr::AddrOf(name) => {
                if self.program.function(name).is_some() {
                    return Err(format!(
                        "&{name}: function addresses are not yet supported on mips \
                         (text must stay block-relocatable)"
                    ));
                }
                let (addr, _) = *self
                    .globals
                    .get(name)
                    .ok_or_else(|| format!("unknown name {name:?}"))?;
                self.li(V0, addr as i32);
            }
            Expr::Call(name, args) => {
                let target = *self
                    .fn_labels
                    .get(name)
                    .ok_or_else(|| format!("call to undefined {name:?}"))?;
                let expect = self
                    .program
                    .function(name)
                    .map(|f| f.params.len())
                    .unwrap_or(0);
                if args.len() != expect {
                    return Err(format!("arity mismatch calling {name:?}"));
                }
                for a in args {
                    self.expr(a, frame)?;
                    self.push_v0(frame);
                }
                self.call(target);
                if !args.is_empty() {
                    self.word(addiu(SP, SP, 4 * args.len() as i32));
                    frame.depth -= args.len();
                }
            }
            Expr::CallPtr(..) => {
                return Err("indirect calls are not yet supported on mips \
                     (text must stay block-relocatable)"
                    .into());
            }
            Expr::Neg(inner) => {
                self.expr(inner, frame)?;
                self.word(subu(V0, ZERO, V0));
            }
            Expr::Not(inner) => {
                self.expr(inner, frame)?;
                self.word(i_type(11, V0, V0, 1)); // sltiu v0, v0, 1
            }
            Expr::Bin(op, lhs, rhs) => self.bin(*op, lhs, rhs, frame)?,
        }
        Ok(())
    }

    fn bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, frame: &mut Frame) -> Result<(), String> {
        // Short-circuit forms branch instead of evaluating eagerly.
        match op {
            BinOp::LogAnd => {
                let (l_false, l_end) = (self.new_label(), self.new_label());
                self.expr(lhs, frame)?;
                self.beq(V0, ZERO, l_false);
                self.expr(rhs, frame)?;
                self.word(r_type(43, ZERO, V0, V0, 0)); // sltu v0, zero, v0
                self.jump(l_end);
                self.bind(l_false);
                self.li(V0, 0);
                self.bind(l_end);
                return Ok(());
            }
            BinOp::LogOr => {
                let (l_true, l_end) = (self.new_label(), self.new_label());
                self.expr(lhs, frame)?;
                self.bne(V0, ZERO, l_true);
                self.expr(rhs, frame)?;
                self.word(r_type(43, ZERO, V0, V0, 0)); // sltu v0, zero, v0
                self.jump(l_end);
                self.bind(l_true);
                self.li(V0, 1);
                self.bind(l_end);
                return Ok(());
            }
            _ => {}
        }
        self.expr(lhs, frame)?;
        self.push_v0(frame);
        self.expr(rhs, frame)?;
        self.pop(frame, T0); // t0 = lhs, v0 = rhs
        match op {
            BinOp::Add => self.word(addu(V0, T0, V0)),
            BinOp::Sub => self.word(subu(V0, T0, V0)),
            BinOp::Mul => {
                self.word(r_type(24, T0, V0, 0, 0)); // mult
                self.word(r_type(18, 0, 0, V0, 0)); // mflo
            }
            BinOp::Div => {
                self.word(r_type(26, T0, V0, 0, 0)); // div → LO=q, HI=r
                self.word(r_type(18, 0, 0, V0, 0)); // mflo
            }
            BinOp::Rem => {
                self.word(r_type(26, T0, V0, 0, 0)); // div
                self.word(r_type(16, 0, 0, V0, 0)); // mfhi
            }
            BinOp::And => self.word(r_type(36, T0, V0, V0, 0)),
            BinOp::Or => self.word(r_type(37, T0, V0, V0, 0)),
            BinOp::Xor => self.word(r_type(38, T0, V0, V0, 0)),
            BinOp::Shl => self.word(r_type(4, V0, T0, V0, 0)), // sllv v0 = t0 << v0
            BinOp::Shr => self.word(r_type(7, V0, T0, V0, 0)), // srav
            BinOp::Eq => {
                self.word(r_type(38, T0, V0, V0, 0)); // xor
                self.word(i_type(11, V0, V0, 1)); // sltiu v0, v0, 1
            }
            BinOp::Ne => {
                self.word(r_type(38, T0, V0, V0, 0)); // xor
                self.word(r_type(43, ZERO, V0, V0, 0)); // sltu v0, zero, v0
            }
            BinOp::Lt => self.word(r_type(42, T0, V0, V0, 0)), // slt t0 < v0
            BinOp::Ge => {
                self.word(r_type(42, T0, V0, V0, 0));
                self.word(i_type(14, V0, V0, 1)); // xori
            }
            BinOp::Gt => self.word(r_type(42, V0, T0, V0, 0)), // slt v0 < t0
            BinOp::Le => {
                self.word(r_type(42, V0, T0, V0, 0));
                self.word(i_type(14, V0, V0, 1)); // xori
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
        }
        Ok(())
    }

    // ---- final assembly -------------------------------------------------

    fn assemble(&mut self, data_len: u32) -> Result<Image, String> {
        // Relaxation: a Branch slot is 2 words (branch + nop) when its
        // displacement fits imm16, else 4 (inverted branch over a `j`).
        // Expanding one branch can push another out of range, so iterate
        // to a fixed point; expansion is monotone, so it terminates.
        let nslots = self.code.len();
        let mut far = vec![false; nslots];
        let size = |slot: &Slot, far: bool| -> u32 {
            match slot {
                Slot::Branch { .. } if far => 4,
                Slot::Branch { .. } => 2,
                _ => 1,
            }
        };
        let mut offsets = vec![0u32; nslots + 1];
        loop {
            for (i, slot) in self.code.iter().enumerate() {
                offsets[i + 1] = offsets[i] + size(slot, far[i]);
            }
            let mut changed = false;
            for (i, slot) in self.code.iter().enumerate() {
                if let Slot::Branch { label, .. } = slot {
                    if far[i] {
                        continue;
                    }
                    let target =
                        self.labels[*label].ok_or_else(|| format!("unbound label {label}"))?;
                    let disp = offsets[target] as i64 - (offsets[i] as i64 + 1);
                    if !(-0x8000..0x8000).contains(&disp) {
                        far[i] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let addr_of = |slot: usize| TEXT_BASE + 4 * offsets[slot];
        let resolve = |label: usize| -> Result<u32, String> {
            self.labels[label]
                .map(addr_of)
                .ok_or_else(|| format!("unbound label {label}"))
        };
        let mut text = Vec::with_capacity(offsets[nslots] as usize * 4);
        for (i, slot) in self.code.iter().enumerate() {
            let pc = addr_of(i);
            match *slot {
                Slot::Word(w) => text.extend_from_slice(&w.to_be_bytes()),
                Slot::Branch { word, label } => {
                    let target = resolve(label)?;
                    if far[i] {
                        // Inverted condition (beq ^ bne is opcode bit
                        // 26) skips the jump; `j` reaches anywhere in
                        // the 256 MiB segment.
                        let inv = (word ^ (1 << 26)) | 3;
                        let j = (2 << 26) | ((target >> 2) & 0x03ff_ffff);
                        for w in [inv, NOP, j, NOP] {
                            text.extend_from_slice(&w.to_be_bytes());
                        }
                    } else {
                        let disp = (target as i64 - (pc as i64 + 4)) >> 2;
                        debug_assert!((-0x8000..0x8000).contains(&disp));
                        let b = word | (disp as u32 & 0xffff);
                        for w in [b, NOP] {
                            text.extend_from_slice(&w.to_be_bytes());
                        }
                    }
                }
                Slot::Jump { word, label } => {
                    let target = resolve(label)?;
                    let w = word | ((target >> 2) & 0x03ff_ffff);
                    text.extend_from_slice(&w.to_be_bytes());
                }
            }
        }

        let mut image = Image::new(TEXT_BASE, DATA_BASE).with_machine(Machine::Mips);
        image.text = text;
        image.entry = TEXT_BASE;
        let mut data = vec![0u8; data_len as usize];
        for g in &self.program.globals {
            if g.count == 1 {
                let off = (self.globals[&g.name].0 - DATA_BASE) as usize;
                data[off..off + 4].copy_from_slice(&g.init.to_be_bytes());
            }
        }
        image.data = data;
        for (name, label) in &self.routines {
            let addr = self.labels[*label]
                .map(addr_of)
                .ok_or_else(|| format!("unbound routine {name:?}"))?;
            image.symbols.push(Symbol::routine(name, addr));
        }
        image
            .symbols
            .push(Symbol::object("__print_buf", self.print_buf, 16));
        for g in &self.program.globals {
            let (addr, count) = self.globals[&g.name];
            image
                .symbols
                .push(Symbol::object(&format!("_{}", g.name), addr, 4 * count));
        }
        image.validate().map_err(|e| e.to_string())?;
        Ok(image)
    }
}

/// Collects every `var` declaration into the slot map (first-declaration
/// order, nested blocks included).
fn collect_vars(stmts: &[Stmt], slots: &mut HashMap<String, usize>) {
    for s in stmts {
        match s {
            Stmt::Var(name, _) => {
                let n = slots.len();
                slots.entry(name.clone()).or_insert(n);
            }
            Stmt::If(_, a, b) => {
                collect_vars(a, slots);
                collect_vars(b, slots);
            }
            Stmt::While(_, body) => collect_vars(body, slots),
            Stmt::For(init, _, step, body) => {
                collect_vars(std::slice::from_ref(init), slots);
                collect_vars(std::slice::from_ref(step), slots);
                collect_vars(body, slots);
            }
            Stmt::Switch(_, cases, default) => {
                for (_, body) in cases {
                    collect_vars(body, slots);
                }
                collect_vars(default, slots);
            }
            _ => {}
        }
    }
}
