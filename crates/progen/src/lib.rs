//! # eel-progen: workload generation for the EEL reproduction
//!
//! The paper's measurements run over SPEC92 binaries produced by two real
//! compilers, plus the `spim` simulator for Table 1. This crate supplies
//! the reproduction's equivalents:
//!
//! * [`suite`]: a fixed, deterministic set of SPEC92-shaped Wisc programs
//!   (interpreter loops with dispatch tables, quicksort, bit-set sweeps,
//!   pointer-dispatched evaluation, spreadsheet recomputation).
//! * [`random_program`]: a seeded generator of terminating, well-defined
//!   Wisc programs for differential fuzzing of the entire stack.
//! * [`degrade_symbols`]: fabricates the *misleading symbol tables* §3.1
//!   complains about (temp/debug labels, hidden routines) so the
//!   refinement analysis has something real to refine.
//!
//! ## Example
//!
//! ```
//! use eel_progen::{suite, compile};
//!
//! let workload = &suite()[0]; // the spim-like interpreter
//! let image = compile(workload, eel_cc::Personality::Gcc)?;
//! let out = eel_emu::run_image(&image)?;
//! assert!(out.executed > 1_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod gen;
pub mod mips;
mod suite;

pub use gen::{random_program, GenConfig};
pub use mips::compile_mips;
pub use suite::{
    compress_like, eqntott_like, espresso_like, gcc_like, li_like, sc_like, spim_like, suite,
    suite_sized, Workload,
};

use eel_cc::{CcError, Options, Personality};
use eel_exe::{Image, Machine, Symbol, SymbolKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compiles a workload with the given compiler personality.
///
/// # Errors
///
/// Propagates compiler errors (a workload bug).
pub fn compile(w: &Workload, personality: Personality) -> Result<Image, CcError> {
    eel_cc::compile_str(
        &w.source,
        &Options {
            personality,
            ..Options::default()
        },
    )
}

/// Compiles a workload for the named machine.
///
/// SPARC goes through `eel-cc` with the requested compiler personality;
/// MIPS goes through the [`mips`] twin generator (personality is
/// irrelevant there — one code shape). This is the entry `wisc
/// --machine` uses, so every suite workload exists as a byte-comparable
/// pair of images differing only in ISA.
///
/// # Errors
///
/// Compiler errors for SPARC; unsupported-construct or semantic errors
/// (reported as [`CcError::Semantic`]) for MIPS. Alpha is not yet
/// generatable.
pub fn compile_machine(
    w: &Workload,
    personality: Personality,
    machine: Machine,
) -> Result<Image, CcError> {
    match machine {
        Machine::Sparc => compile(w, personality),
        Machine::Mips => {
            let program = eel_cc::parse(&w.source)?;
            compile_mips(&program).map_err(CcError::Semantic)
        }
        Machine::Alpha => Err(CcError::Semantic(
            "no alpha code generator yet (add one following docs/MACHINES.md)".into(),
        )),
    }
}

/// Makes an image's symbol table realistically unreliable (§3.1):
///
/// * drops a fraction of routine symbols (hidden routines),
/// * adds compiler-temporary and debugging labels in the text segment,
/// * adds a `Routine`-kinded label pointing into the middle of a routine
///   (an "internal label" stage 1 must discard as a branch target, or
///   treat as a multi-entry point).
///
/// `main`/`__start` symbols are preserved so the program stays loadable.
pub fn degrade_symbols(image: &mut Image, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = ["__start"];
    image.symbols.retain(|s| {
        s.kind != SymbolKind::Routine || keep.contains(&s.name.as_str()) || rng.gen_bool(0.7)
    });
    // Junk labels.
    let text_len = image.text.len() as u32;
    for i in 0..4u32 {
        let addr = image.text_addr + (rng.gen_range(0..text_len.max(4)) & !3);
        image.symbols.push(Symbol {
            name: format!("Ltmp.{i}"),
            value: addr,
            size: 0,
            kind: if i % 2 == 0 {
                SymbolKind::Temp
            } else {
                SymbolKind::Debug
            },
            global: false,
        });
    }
}

/// Produces a *near-duplicate twin* of an image by bumping one ALU
/// immediate inside a single routine — the workload for the per-routine
/// fragment cache: every other routine's bytes (and therefore its
/// content key) are untouched, so an incremental analysis recomputes
/// exactly one routine.
///
/// Eligible routines are those whose extent (taken from the symbol
/// table, sorted by address so the choice is deterministic) contains at
/// least one format-3 ALU instruction with an immediate operand; `k`
/// indexes into that list modulo its length, so any `k` names *some*
/// routine whenever one is eligible. The immediate is bumped by one
/// (decremented at the simm13 ceiling), which keeps the word a valid
/// instruction of the same shape — the twin is meant to be *analyzed*,
/// not executed.
///
/// Returns the mutated routine's name and the patched address, or
/// `None` when no routine contains an ALU immediate.
pub fn mutate_routine(image: &mut Image, k: usize) -> Option<(String, u32)> {
    use eel_isa::{Op, Src2};

    if image.machine == Machine::Mips {
        return mutate_routine_mips(image, k);
    }

    // Symbol sizes are 0 in WEF images; a routine's extent runs to the
    // next routine symbol (or the end of text), like §3.1 discovery.
    let mut starts: Vec<(String, u32)> = image
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Routine)
        .map(|s| (s.name.clone(), s.value))
        .collect();
    starts.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let text_end = image.text_addr + image.text.len() as u32;
    let mut routines: Vec<(String, u32, u32)> = Vec::with_capacity(starts.len());
    for i in 0..starts.len() {
        let end = starts.get(i + 1).map_or(text_end, |n| n.1);
        let (name, start) = starts[i].clone();
        routines.push((name, start, end));
    }

    // A routine is eligible with its first ALU-immediate word. Text
    // addresses in dispatch tables decode as format-0 words, never as
    // format-3 ALU, so data-in-text is never patched by accident.
    let mut eligible: Vec<(String, u32, eel_isa::Insn)> = Vec::new();
    for (name, start, end) in routines {
        let hit = (start..end).step_by(4).find_map(|addr| {
            let insn = eel_isa::decode(image.word_at(addr)?);
            match insn.op {
                Op::Alu {
                    src2: Src2::Imm(_), ..
                } => Some((addr, insn)),
                _ => None,
            }
        });
        if let Some((addr, insn)) = hit {
            eligible.push((name, addr, insn));
        }
    }
    if eligible.is_empty() {
        return None;
    }
    let (name, addr, insn) = eligible.swap_remove(k % eligible.len());
    let Op::Alu {
        op,
        cc,
        rd,
        rs1,
        src2: Src2::Imm(v),
    } = insn.op
    else {
        unreachable!("eligibility filtered for ALU immediates");
    };
    let bumped = if Src2::fits_simm13(v + 1) {
        v + 1
    } else {
        v - 1
    };
    let word = eel_isa::encode(&Op::Alu {
        op,
        cc,
        rd,
        rs1,
        src2: Src2::Imm(bumped),
    });
    let at = (addr - image.text_addr) as usize;
    image.text[at..at + 4].copy_from_slice(&word.to_be_bytes());
    Some((name, addr))
}

/// The MIPS twin-mutation path: bumps the imm16 of one `addiu` (opcode
/// 9) whose destination is not `$sp` — the stack-pointer adjusts encode
/// frame shape, so patching one would desynchronize prologue and
/// epilogue; any other `addiu` is a pure data constant in this backend.
fn mutate_routine_mips(image: &mut Image, k: usize) -> Option<(String, u32)> {
    let mut starts: Vec<(String, u32)> = image
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Routine)
        .map(|s| (s.name.clone(), s.value))
        .collect();
    starts.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let text_end = image.text_addr + image.text.len() as u32;
    let mut eligible: Vec<(String, u32, u32)> = Vec::new();
    for i in 0..starts.len() {
        let end = starts.get(i + 1).map_or(text_end, |n| n.1);
        let (name, start) = starts[i].clone();
        let hit = (start..end).step_by(4).find_map(|addr| {
            let word = image.word_at(addr)?;
            let is_addiu = word >> 26 == 9;
            let rt = (word >> 16) & 31;
            (is_addiu && rt != 29).then_some((addr, word))
        });
        if let Some((addr, word)) = hit {
            eligible.push((name, addr, word));
        }
    }
    if eligible.is_empty() {
        return None;
    }
    let (name, addr, word) = eligible.swap_remove(k % eligible.len());
    let imm = word as u16 as i16;
    let bumped = if imm == i16::MAX { imm - 1 } else { imm + 1 };
    let patched = (word & 0xffff_0000) | (bumped as u16 as u32);
    let at = (addr - image.text_addr) as usize;
    image.text[at..at + 4].copy_from_slice(&patched.to_be_bytes());
    Some((name, addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_cc::{interpret, parse};

    /// Every fixed workload: interpreter oracle == compiled execution,
    /// under both compiler personalities.
    #[test]
    fn suite_agrees_with_oracle() {
        for w in suite() {
            let program = parse(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let oracle =
                interpret(&program, 200_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for personality in [Personality::Gcc, Personality::SunPro] {
                let image = compile(&w, personality).unwrap();
                let out = eel_emu::run_image(&image)
                    .unwrap_or_else(|e| panic!("{} ({personality:?}): {e}", w.name));
                assert_eq!(
                    out.exit_code, oracle.exit_code as u32,
                    "{} exit ({personality:?})",
                    w.name
                );
                assert_eq!(out.output_str(), oracle.output, "{} output", w.name);
            }
        }
    }

    /// The suite contains dispatch tables (its reason for existing).
    #[test]
    fn suite_has_indirect_jumps() {
        let mut tables = 0;
        for w in suite() {
            let image = compile(&w, Personality::Gcc).unwrap();
            let mut exec = eel_core::Executable::from_image(image).unwrap();
            exec.read_contents().unwrap();
            for id in exec.all_routine_ids() {
                let cfg = exec.build_cfg(id).unwrap();
                tables += cfg
                    .indirect_jumps()
                    .filter(|(_, r)| matches!(r, eel_core::JumpResolution::Table { .. }))
                    .count();
            }
        }
        assert!(tables >= 3, "suite produced only {tables} dispatch tables");
    }

    /// Random programs: interpreter == compiled == EEL-edited, across
    /// seeds and personalities. This is the whole-stack fuzzer.
    #[test]
    fn random_programs_differential() {
        let config = GenConfig::default();
        for seed in 0..25u64 {
            let program = random_program(seed, &config);
            let oracle = match interpret(&program, 5_000_000) {
                Ok(o) => o,
                Err(eel_cc::InterpError::StepLimit) => continue, // too slow, skip
                Err(e) => panic!("seed {seed}: oracle failed: {e}"),
            };
            for personality in [Personality::Gcc, Personality::SunPro] {
                let options = Options {
                    personality,
                    ..Options::default()
                };
                let image = match eel_cc::compile_ast(&program, &options) {
                    Ok(i) => i,
                    Err(eel_cc::CcError::Semantic(m)) if m.contains("too deep") => continue,
                    Err(e) => panic!("seed {seed}: compile failed: {e}"),
                };
                let direct = eel_emu::run_image(&image)
                    .unwrap_or_else(|e| panic!("seed {seed} ({personality:?}): {e}"));
                assert_eq!(
                    direct.exit_code, oracle.exit_code as u32,
                    "seed {seed} exit ({personality:?})"
                );
                assert_eq!(direct.output_str(), oracle.output, "seed {seed} output");

                // Round-trip through the editor.
                let mut exec = eel_core::Executable::from_image(image).unwrap();
                exec.read_contents().unwrap();
                let edited = exec
                    .write_edited()
                    .unwrap_or_else(|e| panic!("seed {seed} edit ({personality:?}): {e}"));
                let after = eel_emu::run_image(&edited)
                    .unwrap_or_else(|e| panic!("seed {seed} edited run: {e}"));
                assert_eq!(after.exit_code, direct.exit_code, "seed {seed} edited exit");
                assert_eq!(after.output, direct.output, "seed {seed} edited output");
            }
        }
    }

    /// Degraded symbol tables: hidden routines exist, and EEL still
    /// round-trips the program correctly.
    #[test]
    fn degraded_symbols_still_edit_correctly() {
        for seed in 0..5u64 {
            let w = &suite()[seed as usize % suite().len()];
            let mut image = compile(w, Personality::Gcc).unwrap();
            let before = eel_emu::run_image(&image).unwrap();
            degrade_symbols(&mut image, seed);
            let mut exec = eel_core::Executable::from_image(image).unwrap();
            exec.read_contents().unwrap();
            let edited = exec.write_edited().unwrap();
            let after = eel_emu::run_image(&edited)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_eq!(before.exit_code, after.exit_code, "{} seed {seed}", w.name);
            assert_eq!(before.output, after.output, "{} seed {seed}", w.name);
        }
    }

    /// A mutated twin differs from its base in exactly one word, inside
    /// the named routine, deterministically for a given `k`.
    #[test]
    fn mutate_routine_changes_exactly_one_word() {
        let base = compile(&suite()[0], Personality::Gcc).unwrap();
        for k in [0usize, 1, 5] {
            let mut twin = base.clone();
            let (name, addr) = mutate_routine(&mut twin, k).expect("suite has ALU immediates");
            let diffs: Vec<usize> = base
                .text
                .iter()
                .zip(&twin.text)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert!(!diffs.is_empty(), "k={k}: the twin differs");
            let word = (addr - base.text_addr) as usize;
            assert!(
                diffs.iter().all(|&i| i / 4 * 4 == word),
                "k={k}: every changed byte is in the patched word"
            );
            let sym = twin
                .symbols
                .iter()
                .find(|s| s.name == name && s.kind == SymbolKind::Routine)
                .expect("mutated routine is a symbol");
            assert!(addr >= sym.value, "k={k}: patch lands at or after {name}");
            // Determinism: the same k produces the same twin.
            let mut again = base.clone();
            assert_eq!(mutate_routine(&mut again, k), Some((name, addr)));
            assert_eq!(again.text, twin.text);
        }
    }

    /// True when a MIPS compile error is one of the documented
    /// unsupported constructs (function pointers / indirect calls)
    /// rather than a backend bug.
    fn mips_unsupported(e: &CcError) -> bool {
        matches!(e, CcError::Semantic(m) if m.contains("not yet supported on mips"))
    }

    /// Fixed workloads on the second ISA: interpreter oracle == MIPS
    /// execution, through the spawn-derived emulator. Workloads that use
    /// function pointers are skipped (documented restriction), but most
    /// of the suite must compile.
    #[test]
    fn suite_agrees_with_oracle_on_mips() {
        let mut ran = 0;
        for w in suite() {
            let program = parse(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let image = match compile_machine(&w, Personality::Gcc, Machine::Mips) {
                Ok(i) => i,
                Err(e) if mips_unsupported(&e) => continue,
                Err(e) => panic!("{}: mips compile failed: {e}", w.name),
            };
            assert_eq!(image.machine, Machine::Mips, "{}", w.name);
            let oracle =
                interpret(&program, 200_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let out =
                eel_emu::run_image(&image).unwrap_or_else(|e| panic!("{} (mips): {e}", w.name));
            assert_eq!(out.exit_code, oracle.exit_code as u32, "{} exit", w.name);
            assert_eq!(out.output_str(), oracle.output, "{} output", w.name);
            ran += 1;
        }
        assert!(ran >= 4, "only {ran} suite workloads compiled for mips");
    }

    /// Random programs on MIPS: interpreter == compiled execution across
    /// seeds. Programs using function pointers are skipped; the rest must
    /// agree exactly (exit code and printed output).
    #[test]
    fn random_programs_differential_mips() {
        let config = GenConfig::default();
        let mut ran = 0;
        for seed in 0..25u64 {
            let program = random_program(seed, &config);
            let oracle = match interpret(&program, 5_000_000) {
                Ok(o) => o,
                Err(eel_cc::InterpError::StepLimit) => continue, // too slow, skip
                Err(e) => panic!("seed {seed}: oracle failed: {e}"),
            };
            let image = match compile_mips(&program) {
                Ok(i) => i,
                Err(m) if m.contains("not yet supported on mips") => continue,
                Err(m) => panic!("seed {seed}: mips compile failed: {m}"),
            };
            let out =
                eel_emu::run_image(&image).unwrap_or_else(|e| panic!("seed {seed} (mips): {e}"));
            assert_eq!(out.exit_code, oracle.exit_code as u32, "seed {seed} exit");
            assert_eq!(out.output_str(), oracle.output, "seed {seed} output");
            ran += 1;
        }
        assert!(ran >= 10, "only {ran} random programs ran on mips");
    }

    /// The MIPS mutation path: one word changes, execution still starts
    /// (frame shape preserved because `addiu $sp` is never patched).
    #[test]
    fn mutate_routine_mips_changes_one_word() {
        let base = compile_machine(&suite()[1], Personality::Gcc, Machine::Mips).unwrap();
        for k in [0usize, 3] {
            let mut twin = base.clone();
            let (name, addr) = mutate_routine(&mut twin, k).expect("mips addiu exists");
            let diffs: Vec<usize> = base
                .text
                .iter()
                .zip(&twin.text)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert!(!diffs.is_empty(), "k={k}");
            let word = (addr - base.text_addr) as usize;
            assert!(diffs.iter().all(|&i| i / 4 * 4 == word), "k={k}");
            assert!(
                twin.symbols
                    .iter()
                    .any(|s| s.name == name && s.kind == SymbolKind::Routine),
                "k={k}: {name} is a routine symbol"
            );
            let mut again = base.clone();
            assert_eq!(mutate_routine(&mut again, k), Some((name, addr)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(42, &GenConfig::default());
        let b = random_program(42, &GenConfig::default());
        assert_eq!(a, b);
        let c = random_program(43, &GenConfig::default());
        assert_ne!(a, c);
    }
}
