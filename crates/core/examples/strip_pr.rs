//! Reproduces the EXPERIMENTS.md stripped-discovery table: routine-start
//! precision/recall of inference-based discovery against the unstripped
//! twin's symbol table, over the fixed progen suite (both compiler
//! personalities) and the 40-function random images that compile.
//!
//! ```text
//! cargo run --release -p eel-core --example strip_pr
//! ```

use eel_core::Executable;
use std::collections::BTreeSet;

fn starts(image: &eel_exe::Image) -> BTreeSet<u32> {
    let mut exec = Executable::from_image(image.clone()).unwrap();
    exec.read_contents().unwrap();
    exec.all_routine_ids()
        .into_iter()
        .map(|id| exec.routine(id).start())
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    for pers in [eel_cc::Personality::Gcc, eel_cc::Personality::SunPro] {
        for w in eel_progen::suite() {
            let image = eel_progen::compile(&w, pers).unwrap();
            let truth = starts(&image);
            let mut stripped = image.clone();
            stripped.strip();
            let inferred = starts(&stripped);
            rows.push((format!("{}/{:?}", w.name, pers), truth, inferred));
        }
    }
    let config = eel_progen::GenConfig {
        functions: 40,
        stmts_per_fn: 6,
        max_depth: 2,
        globals: 4,
        arrays: 2,
    };
    let mut compiled = 0;
    for seed in 0..64u64 {
        let program = eel_progen::random_program(seed, &config);
        let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) else {
            continue;
        };
        compiled += 1;
        let truth = starts(&image);
        let mut stripped = image.clone();
        stripped.strip();
        rows.push((format!("random(seed {seed})"), truth, starts(&stripped)));
    }
    eprintln!("compiled {compiled}/64 random seeds");

    let (mut sum_truth, mut sum_inferred, mut sum_tp) = (0usize, 0usize, 0usize);
    for (name, truth, inferred) in rows {
        let tp = inferred.intersection(&truth).count();
        sum_truth += truth.len();
        sum_inferred += inferred.len();
        sum_tp += tp;
        let tp = tp as f64;
        let p = if inferred.is_empty() {
            1.0
        } else {
            tp / inferred.len() as f64
        };
        let r = if truth.is_empty() {
            1.0
        } else {
            tp / truth.len() as f64
        };
        let f1 = if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
        println!(
            "{name}\ttruth={}\tinferred={}\ttp={tp}\tP={p:.3}\tR={r:.3}\tF1={f1:.3}",
            truth.len(),
            inferred.len()
        );
    }
    let p = sum_tp as f64 / sum_inferred as f64;
    let r = sum_tp as f64 / sum_truth as f64;
    println!(
        "TOTAL\ttruth={sum_truth}\tinferred={sum_inferred}\ttp={sum_tp}\tP={p:.3}\tR={r:.3}\tF1={:.3}",
        2.0 * p * r / (p + r)
    );
}
