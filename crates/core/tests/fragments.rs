//! Per-routine fragment probing: content keys, hit validation, and the
//! replay of discovery side effects that keeps a probed batch
//! byte-identical to an unprobed one.

use eel_cc::{compile_str, Options};
use eel_core::{Analysis, Executable, FragmentMeta, Routine};
use std::collections::HashMap;
use std::sync::Arc;

fn program() -> &'static str {
    r#"
    global data[32];
    fn helper(x) { data[x & 31] = x; return data[x & 31] * 2; }
    fn double(x) { return x + x; }
    fn main() {
        var i; var t = 0;
        for (i = 0; i < 12; i = i + 1) { t = t + helper(i) + double(i); }
        return t & 255;
    }"#
}

fn analysis() -> Arc<Analysis> {
    let image = compile_str(program(), &Options::default()).unwrap();
    Arc::new(Analysis::compute(Arc::new(image)).unwrap())
}

/// One routine-table row: name, start, end, entries, hidden.
type TableRow = (String, u32, u32, Vec<u32>, bool);

/// Routine-table fingerprint: everything later passes consume.
fn table(exec: &Executable) -> Vec<TableRow> {
    exec.routines()
        .iter()
        .map(|r| {
            (
                r.name(),
                r.start(),
                r.end(),
                r.entries().to_vec(),
                r.is_hidden(),
            )
        })
        .collect()
}

/// Runs an unprobed batch and records each clean routine's would-be
/// fragment metadata under its content key.
fn record(a: &Arc<Analysis>) -> (HashMap<u64, FragmentMeta>, Vec<TableRow>) {
    let mut exec = Executable::from_analysis(a);
    let mut none = |_r: &Routine, _k: u64| None;
    let items = exec.build_all_cfgs_probed(1, &mut none).unwrap();
    let mut metas = HashMap::new();
    for it in &items {
        assert!(it.cfg.is_some(), "no probe: everything is built live");
        if it.clean {
            metas.insert(
                it.key,
                FragmentMeta {
                    start: it.routine.start(),
                    escapes: it.escapes.clone(),
                    splits: it.splits.clone(),
                },
            );
        }
    }
    (metas, table(&exec))
}

#[test]
fn validated_hits_replay_side_effects_exactly() {
    let a = analysis();
    let (metas, cold_table) = record(&a);
    assert!(!metas.is_empty(), "some routine must be cacheable");

    for threads in [1, 2, 4] {
        let mut exec = Executable::from_analysis(&a);
        let mut probe = |_r: &Routine, k: u64| metas.get(&k).cloned();
        let items = exec.build_all_cfgs_probed(threads, &mut probe).unwrap();
        let hits = items.iter().filter(|it| it.cfg.is_none()).count();
        assert_eq!(
            hits,
            metas.len(),
            "threads={threads}: every recorded routine is a hit"
        );
        // The replayed side effects must leave the routine table —
        // extents, entry points, split-off hidden routines — exactly as
        // the live builds did: later layout passes consume this state.
        assert_eq!(table(&exec), cold_table, "threads={threads}");
    }
}

#[test]
fn wrong_start_meta_is_rejected_and_rebuilt_live() {
    let a = analysis();
    let (metas, cold_table) = record(&a);

    // A lying probe: right key, wrong position. Rendered fragments embed
    // absolute addresses, so honoring this would corrupt the output.
    let mut exec = Executable::from_analysis(&a);
    let mut probe = |_r: &Routine, k: u64| {
        metas.get(&k).map(|m| FragmentMeta {
            start: m.start.wrapping_add(4),
            escapes: m.escapes.clone(),
            splits: m.splits.clone(),
        })
    };
    let items = exec.build_all_cfgs_probed(1, &mut probe).unwrap();
    assert!(
        items.iter().all(|it| it.cfg.is_some()),
        "every mispositioned fragment falls back to a live build"
    );
    assert_eq!(table(&exec), cold_table);
}

#[test]
fn fanout_skip_with_stitch_miss_still_builds_live() {
    // In the parallel path a fragment hit at fan-out time skips the
    // speculative build, leaving no memo entry. If the authoritative
    // stitch-time probe then *misses* (tier evicted between the two
    // probes, say), the routine must fall back to a live sequential
    // build — never a stale fragment, never a missing CFG.
    let a = analysis();
    let (metas, cold_table) = record(&a);
    assert!(!metas.is_empty());

    let mut exec = Executable::from_analysis(&a);
    let mut calls: HashMap<u64, u32> = HashMap::new();
    let mut probe = |_r: &Routine, k: u64| {
        let n = calls.entry(k).or_insert(0);
        *n += 1;
        // Hit only on the first probe of each key (the fan-out prelude);
        // miss at stitch.
        (*n == 1).then(|| metas.get(&k).cloned()).flatten()
    };
    let items = exec.build_all_cfgs_probed(4, &mut probe).unwrap();
    assert!(
        items.iter().all(|it| it.cfg.is_some()),
        "a stitch-time miss must produce a live build"
    );
    assert_eq!(table(&exec), cold_table);
}
