//! Inference-based routine discovery on stripped executables.
//!
//! The acceptance bar for the eel-strip subsystem: a `--strip`ped progen
//! image with a substantial routine population must analyze with high
//! routine-start F1 against its unstripped twin, and instrumenting the
//! stripped image must be emu-equivalent (identical non-zero block
//! counts) to instrumenting the twin.

use eel_cc::{Options, Personality};
use eel_core::{DiscoverySource, Executable, Snippet};
use eel_emu::Machine;
use eel_exe::Image;
use eel_progen::{compile, random_program, suite, GenConfig};
use std::collections::{BTreeMap, BTreeSet};

/// A deterministic progen image with a large routine population
/// (`functions` user functions plus `main` and the runtime).
fn big_image() -> Image {
    // Seed chosen so the program also terminates quickly under the
    // emulator (the instrumentation-equivalence tests below run it).
    let program = random_program(
        5,
        &GenConfig {
            functions: 40,
            stmts_per_fn: 6,
            max_depth: 2,
            globals: 4,
            arrays: 2,
        },
    );
    eel_cc::compile_ast(&program, &Options::default()).expect("progen program compiles")
}

fn routine_starts(image: Image) -> BTreeSet<u32> {
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    exec.all_routine_ids()
        .into_iter()
        .map(|id| exec.routine(id).start())
        .collect()
}

#[test]
fn stripped_routine_start_f1_is_at_least_095() {
    let image = big_image();
    let truth = routine_starts(image.clone());
    assert!(
        truth.len() >= 30,
        "ground-truth twin has only {} routines",
        truth.len()
    );

    let mut stripped = image;
    stripped.strip();
    assert!(stripped.is_stripped());
    let inferred = routine_starts(stripped);

    let tp = inferred.intersection(&truth).count() as f64;
    let precision = tp / inferred.len() as f64;
    let recall = tp / truth.len() as f64;
    let f1 = 2.0 * precision * recall / (precision + recall);
    assert!(
        f1 >= 0.95,
        "routine-start F1 {f1:.3} (precision {precision:.3}, recall {recall:.3}; \
         {} true, {} inferred)",
        truth.len(),
        inferred.len()
    );
}

/// Instruments every editable normal block with a counter and runs the
/// image, returning `(exit, output, block addr → count)` for the
/// non-zero counters. Keys are ORIGINAL text addresses, so the maps are
/// comparable across the stripped/unstripped twins even though the two
/// editors reserve counter storage independently.
fn block_profile(image: Image) -> (u32, Vec<u8>, BTreeMap<u32, u32>) {
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let mut sites: Vec<(u32, u32)> = Vec::new(); // (block addr, counter addr)
    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id).unwrap();
        let blocks: Vec<_> = cfg
            .blocks()
            .filter(|(_, b)| {
                b.kind == eel_core::BlockKind::Normal && b.editable && !b.insns.is_empty()
            })
            .map(|(bid, b)| (bid, b.addr))
            .collect();
        let base = exec.reserve_data(4 * blocks.len().max(1) as u32);
        for (k, (bid, addr)) in blocks.into_iter().enumerate() {
            let counter = base + 4 * k as u32;
            sites.push((addr, counter));
            cfg.add_code_at_block_start(bid, Snippet::counter_increment(counter))
                .unwrap();
        }
        exec.install_edits(cfg).unwrap();
    }
    let edited = exec.write_edited().unwrap();
    // Counters on every block roughly double the dynamic instruction
    // count; leave generous headroom over the ~3M-cycle base program.
    let mut machine = Machine::load(&edited).unwrap().with_step_limit(50_000_000);
    let outcome = machine.run().unwrap();
    let counts = sites
        .into_iter()
        .filter_map(|(addr, counter)| {
            let c = machine.read_word(counter);
            (c != 0).then_some((addr, c))
        })
        .collect();
    (outcome.exit_code, outcome.output, counts)
}

#[test]
fn stripped_twin_instrumentation_is_emu_equivalent() {
    let image = big_image();
    let mut stripped = image.clone();
    stripped.strip();

    let (exit_a, out_a, counts_a) = block_profile(image);
    let (exit_b, out_b, counts_b) = block_profile(stripped);
    assert_eq!(exit_a, exit_b, "exit codes diverge");
    assert_eq!(out_a, out_b, "print output diverges");
    // Identical non-zero block counts: every block the program actually
    // executes was found by inference and counted identically. (Zero
    // counters cover dead code — e.g. an uncalled runtime helper the
    // symbol table names but no instruction references.)
    assert_eq!(counts_a, counts_b, "dynamic block counts diverge");
    assert!(!counts_a.is_empty(), "profile counted nothing");
}

#[test]
fn suite_workloads_stay_emu_equivalent_when_stripped() {
    // The fixed suite exercises dispatch tables — the inference path
    // must route jump-table targets back into the sweep to keep these
    // twins equivalent.
    for w in suite().iter().take(3) {
        let image = compile(w, Personality::Gcc).unwrap();
        let mut stripped = image.clone();
        stripped.strip();
        let (exit_a, out_a, counts_a) = block_profile(image);
        let (exit_b, out_b, counts_b) = block_profile(stripped);
        assert_eq!(exit_a, exit_b, "{}: exit codes diverge", w.name);
        assert_eq!(out_a, out_b, "{}: print output diverges", w.name);
        assert_eq!(counts_a, counts_b, "{}: block counts diverge", w.name);
    }
}

#[test]
fn discovery_source_reports_symbols_vs_inference() {
    let image = big_image();
    let mut exec = Executable::from_image(image.clone()).unwrap();
    exec.read_contents().unwrap();
    assert_eq!(exec.discovery_source(), DiscoverySource::Symbols);
    assert!(exec
        .all_routine_ids()
        .into_iter()
        .all(|id| !exec.routine(id).is_inferred()));

    let mut stripped = image;
    stripped.strip();
    let mut exec = Executable::from_image(stripped).unwrap();
    exec.read_contents().unwrap();
    assert_eq!(exec.discovery_source(), DiscoverySource::Inferred);
    let ids = exec.all_routine_ids();
    assert!(ids.iter().all(|&id| exec.routine(id).is_inferred()));
    // Names cannot be recreated (§3.1): inferred routines carry the
    // conventional stripped-binary spelling.
    assert!(ids
        .iter()
        .any(|&id| exec.routine(id).name().starts_with("sub_")));
}

#[test]
fn strip_aware_flag_gates_inference() {
    let mut stripped = big_image();
    stripped.strip();

    // Legacy behavior (inference off): a symbol-less image still
    // analyzes — entry point plus transitively reachable call targets —
    // but finds strictly fewer routines than inference does.
    let mut legacy = Executable::from_image(stripped.clone()).unwrap();
    legacy.set_strip_aware(false);
    legacy.read_contents().unwrap();
    let legacy_count = legacy.all_routine_ids().len();

    let mut inferred = Executable::from_image(stripped).unwrap();
    inferred.read_contents().unwrap();
    let inferred_count = inferred.all_routine_ids().len();
    assert!(
        inferred_count >= legacy_count,
        "inference found {inferred_count} routines, legacy call-target \
         seeding found {legacy_count}"
    );
}
