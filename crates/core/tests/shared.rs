//! Regression tests for the shareable-analysis surgery: idempotent
//! `read_contents`, `Analysis`/`from_analysis` equivalence, and
//! cross-thread sharing.

use eel_cc::{compile_str, Options, Personality};
use eel_core::{Analysis, Executable};
use std::sync::Arc;

fn program() -> &'static str {
    r#"
    global data[32];
    fn helper(x) { data[x & 31] = x; return data[x & 31] * 2; }
    fn main() {
        var i; var t = 0;
        for (i = 0; i < 12; i = i + 1) { t = t + helper(i); }
        return t & 255;
    }"#
}

#[test]
fn read_contents_is_idempotent() {
    // The server calls analysis paths repeatedly on shared state; a
    // second read_contents must be a no-op, not a duplicate discovery
    // (or worse, duplicated routines).
    let image = compile_str(program(), &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let routines: Vec<String> = exec.routines().iter().map(|r| r.name()).collect();
    let entries: Vec<Vec<u32>> = exec
        .routines()
        .iter()
        .map(|r| r.entries().to_vec())
        .collect();

    exec.read_contents().unwrap();
    exec.read_contents().unwrap();
    let again: Vec<String> = exec.routines().iter().map(|r| r.name()).collect();
    let entries_again: Vec<Vec<u32>> = exec
        .routines()
        .iter()
        .map(|r| r.entries().to_vec())
        .collect();
    assert_eq!(routines, again, "repeat read_contents left routines alone");
    assert_eq!(entries, entries_again);
}

#[test]
fn from_analysis_matches_fresh_read_contents() {
    let image = compile_str(program(), &Options::default()).unwrap();

    let mut fresh = Executable::from_image(image.clone()).unwrap();
    fresh.read_contents().unwrap();

    let analysis = Analysis::compute(Arc::new(image)).unwrap();
    let shared = Executable::from_analysis(&analysis);

    let names = |e: &Executable| -> Vec<(String, Vec<u32>, bool)> {
        e.routines()
            .iter()
            .map(|r| (r.name(), r.entries().to_vec(), r.is_hidden()))
            .collect()
    };
    assert_eq!(names(&fresh), names(&shared));
    assert_eq!(analysis.routines().len(), fresh.routines().len());
}

#[test]
fn one_analysis_serves_concurrent_editors() {
    // The service's whole premise: one Analysis fans out to many threads,
    // each building its own Executable and editing independently, and
    // every edited executable still behaves like the original.
    for personality in [Personality::Gcc, Personality::SunPro] {
        let opts = Options {
            personality,
            ..Options::default()
        };
        let image = compile_str(program(), &opts).unwrap();
        let plain = eel_emu::run_image(&image).unwrap();
        let analysis = Arc::new(Analysis::compute(Arc::new(image)).unwrap());

        let mut handles = Vec::new();
        for _ in 0..4 {
            let analysis = Arc::clone(&analysis);
            handles.push(std::thread::spawn(move || {
                let mut exec = Executable::from_analysis(&analysis);
                for id in exec.all_routine_ids() {
                    let cfg = exec.build_cfg(id).unwrap();
                    exec.install_edits(cfg).unwrap();
                }
                exec.write_edited().unwrap()
            }));
        }
        for h in handles {
            let edited = h.join().expect("editor thread panicked");
            let outcome = eel_emu::run_image(&edited).unwrap();
            assert_eq!(outcome.exit_code, plain.exit_code);
            assert_eq!(outcome.output, plain.output);
        }
    }
}

#[test]
fn approx_bytes_tracks_image_size() {
    let small = compile_str("fn main() { return 1; }", &Options::default()).unwrap();
    let big = compile_str(program(), &Options::default()).unwrap();
    let a_small = Analysis::compute(Arc::new(small)).unwrap();
    let a_big = Analysis::compute(Arc::new(big)).unwrap();
    assert!(a_small.approx_bytes() > 0);
    assert!(
        a_big.approx_bytes() > a_small.approx_bytes(),
        "bigger program, bigger estimate"
    );
}

#[test]
fn approx_bytes_covers_names_pool_and_measured_retention() {
    let image = compile_str(program(), &Options::default()).unwrap();
    let analysis = Analysis::compute(Arc::new(image)).unwrap();
    let image = analysis.image();

    // The estimate must at least cover what we can count exactly: both
    // segments, every routine name (synthetic ones included — consumers
    // materialize those too), and one interned object per distinct word.
    let names: usize = analysis.routines().iter().map(|r| r.name().len()).sum();
    assert!(analysis.distinct_words() > 0);
    assert!(analysis.distinct_words() <= image.text.len() / 4);
    let floor = image.text.len() + image.data.len() + names + analysis.distinct_words() * 4;
    assert!(
        analysis.approx_bytes() > floor,
        "estimate {} must exceed the countable floor {floor}",
        analysis.approx_bytes()
    );

    // ROADMAP's cache-budget measurements put real retention at
    // ~1.7–1.9× text size; the old estimate sat well under that band
    // and starved the LRU. Keep the estimate at or above it (small
    // images carry proportionally more fixed overhead, so only the
    // lower bound is load-bearing).
    assert!(
        analysis.approx_bytes() as f64 >= 1.7 * image.text.len() as f64,
        "estimate {} must not undershoot 1.7x text ({} bytes)",
        analysis.approx_bytes(),
        image.text.len()
    );
}

#[test]
fn build_all_cfgs_matches_sequential_at_any_thread_count() {
    let image = compile_str(program(), &Options::default()).unwrap();
    let analysis = Analysis::compute(Arc::new(image)).unwrap();

    // The sequential truth: routine snapshot taken before each build,
    // exactly the pairs build_all_cfgs promises to reproduce.
    let mut seq = Executable::from_analysis(&analysis);
    let mut expected = Vec::new();
    for id in seq.all_routine_ids() {
        let routine = seq.routine(id).clone();
        let cfg = seq.build_cfg(id).unwrap();
        expected.push((routine, cfg.stats(), cfg.blocks().count(), cfg.edge_count()));
    }

    for threads in [0, 1, 2, 5] {
        let mut exec = Executable::from_analysis(&analysis);
        let built = exec.build_all_cfgs(threads).unwrap();
        assert_eq!(built.len(), expected.len(), "threads={threads}");
        for ((routine, cfg), (exp_routine, exp_stats, exp_blocks, exp_edges)) in
            built.iter().zip(&expected)
        {
            assert_eq!(routine, exp_routine, "threads={threads}");
            assert_eq!(&cfg.stats(), exp_stats, "threads={threads}");
            assert_eq!(cfg.blocks().count(), *exp_blocks, "threads={threads}");
            assert_eq!(cfg.edge_count(), *exp_edges, "threads={threads}");
        }
    }
}
