//! Regression tests for the shareable-analysis surgery: idempotent
//! `read_contents`, `Analysis`/`from_analysis` equivalence, and
//! cross-thread sharing.

use eel_cc::{compile_str, Options, Personality};
use eel_core::{Analysis, Executable};
use std::sync::Arc;

fn program() -> &'static str {
    r#"
    global data[32];
    fn helper(x) { data[x & 31] = x; return data[x & 31] * 2; }
    fn main() {
        var i; var t = 0;
        for (i = 0; i < 12; i = i + 1) { t = t + helper(i); }
        return t & 255;
    }"#
}

#[test]
fn read_contents_is_idempotent() {
    // The server calls analysis paths repeatedly on shared state; a
    // second read_contents must be a no-op, not a duplicate discovery
    // (or worse, duplicated routines).
    let image = compile_str(program(), &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let routines: Vec<String> = exec.routines().iter().map(|r| r.name()).collect();
    let entries: Vec<Vec<u32>> = exec
        .routines()
        .iter()
        .map(|r| r.entries().to_vec())
        .collect();

    exec.read_contents().unwrap();
    exec.read_contents().unwrap();
    let again: Vec<String> = exec.routines().iter().map(|r| r.name()).collect();
    let entries_again: Vec<Vec<u32>> = exec
        .routines()
        .iter()
        .map(|r| r.entries().to_vec())
        .collect();
    assert_eq!(routines, again, "repeat read_contents left routines alone");
    assert_eq!(entries, entries_again);
}

#[test]
fn from_analysis_matches_fresh_read_contents() {
    let image = compile_str(program(), &Options::default()).unwrap();

    let mut fresh = Executable::from_image(image.clone()).unwrap();
    fresh.read_contents().unwrap();

    let analysis = Analysis::compute(Arc::new(image)).unwrap();
    let shared = Executable::from_analysis(&analysis);

    let names = |e: &Executable| -> Vec<(String, Vec<u32>, bool)> {
        e.routines()
            .iter()
            .map(|r| (r.name(), r.entries().to_vec(), r.is_hidden()))
            .collect()
    };
    assert_eq!(names(&fresh), names(&shared));
    assert_eq!(analysis.routines().len(), fresh.routines().len());
}

#[test]
fn one_analysis_serves_concurrent_editors() {
    // The service's whole premise: one Analysis fans out to many threads,
    // each building its own Executable and editing independently, and
    // every edited executable still behaves like the original.
    for personality in [Personality::Gcc, Personality::SunPro] {
        let opts = Options {
            personality,
            ..Options::default()
        };
        let image = compile_str(program(), &opts).unwrap();
        let plain = eel_emu::run_image(&image).unwrap();
        let analysis = Arc::new(Analysis::compute(Arc::new(image)).unwrap());

        let mut handles = Vec::new();
        for _ in 0..4 {
            let analysis = Arc::clone(&analysis);
            handles.push(std::thread::spawn(move || {
                let mut exec = Executable::from_analysis(&analysis);
                for id in exec.all_routine_ids() {
                    let cfg = exec.build_cfg(id).unwrap();
                    exec.install_edits(cfg).unwrap();
                }
                exec.write_edited().unwrap()
            }));
        }
        for h in handles {
            let edited = h.join().expect("editor thread panicked");
            let outcome = eel_emu::run_image(&edited).unwrap();
            assert_eq!(outcome.exit_code, plain.exit_code);
            assert_eq!(outcome.output, plain.output);
        }
    }
}

#[test]
fn approx_bytes_tracks_image_size() {
    let small = compile_str("fn main() { return 1; }", &Options::default()).unwrap();
    let big = compile_str(program(), &Options::default()).unwrap();
    let a_small = Analysis::compute(Arc::new(small)).unwrap();
    let a_big = Analysis::compute(Arc::new(big)).unwrap();
    assert!(a_small.approx_bytes() > 0);
    assert!(
        a_big.approx_bytes() > a_small.approx_bytes(),
        "bigger program, bigger estimate"
    );
}
