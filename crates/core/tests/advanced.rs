//! Advanced feature tests: call graphs, whole-routine register freeing,
//! snippet call-backs and run-time routine calls, multi-entry routines,
//! and the pathological shapes §3 worries about (branches into delay
//! slots, data between routines).

use eel_cc::{compile_str, Options};
use eel_core::{CallGraph, Executable, Snippet};
use eel_emu::{run_image, Machine};
use eel_isa::Reg;

// ------------------------------------------------------------- call graph

#[test]
fn call_graph_reflects_program_structure() {
    let src = r#"
        fn leaf(x) { return x + 1; }
        fn middle(x) { return leaf(x) * 2; }
        fn recur(n) { if (n <= 0) { return 0; } return recur(n - 1) + 1; }
        fn main() { return middle(3) + recur(4); }
    "#;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let graph = CallGraph::build(&mut exec).unwrap();

    let id_of = |name: &str| {
        exec.all_routine_ids()
            .into_iter()
            .find(|&id| exec.routine(id).name() == name)
            .unwrap()
    };
    let (main, middle, leaf, recur) = (
        id_of("main"),
        id_of("middle"),
        id_of("leaf"),
        id_of("recur"),
    );

    assert!(graph.callees(main).contains(&middle));
    assert!(graph.callees(main).contains(&recur));
    assert!(graph.callees(middle).contains(&leaf));
    assert!(graph.callers(leaf).contains(&middle));
    assert!(graph.reachable(main, leaf), "main → middle → leaf");
    assert!(!graph.reachable(leaf, main), "leaves don't call back");
    assert_eq!(graph.recursive_routines(), vec![recur]);
}

#[test]
fn call_graph_flags_unknown_indirect_sites() {
    let src = r#"
        fn f(x) { return x; }
        fn main() {
            var p = &f;
            return (*p)(7);
        }"#;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let graph = CallGraph::build(&mut exec).unwrap();
    assert!(
        !graph.unknown_sites().is_empty(),
        "the pointer call is an interprocedural blind spot"
    );
}

// ------------------------------------------------------ register freeing

#[test]
fn free_registers_finds_untouched_registers() {
    // A tiny leaf routine touches almost nothing: plenty of free regs.
    let image = eel_asm::assemble("main:\n mov 1, %o0\n mov 1, %g1\n ta 0\n nop\n").unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let id = exec.all_routine_ids()[0];
    let cfg = exec.build_cfg(id).unwrap();
    let free = cfg.free_registers();
    // %l0-%l7 are clobbered by callees in general, but this routine makes
    // no calls... the convention surface is still excluded, so what's
    // left is the %i bank and %g6/%g7-style scratch outside the call
    // surface. At minimum, something must be free here.
    assert!(!free.is_empty(), "{free}");
    for r in free.iter() {
        assert!(r.is_gpr());
        assert_ne!(r, Reg::SP);
        assert_ne!(r, Reg::G0);
    }
}

#[test]
fn free_registers_excludes_used_ones() {
    let src = "fn main() { var a = 1; var b = 2; return a * b; }";
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let cfg = exec.build_cfg(main_id).unwrap();
    let free = cfg.free_registers();
    // The eval stack uses %l0/%l1: they must not be reported free.
    assert!(!free.contains(Reg(16)));
    assert!(!free.contains(Reg::SP));
    assert!(!free.contains(Reg::O0));
}

// -------------------------------------------- snippet call-back plumbing

#[test]
fn snippet_callback_backpatches_final_addresses() {
    // The paper's call-back use case: record where instrumentation landed
    // for later backpatching. The callback receives the FINAL address.
    // (Arc/Mutex rather than Rc/RefCell: callbacks are Send so CFGs can
    // cross threads in the parallel analysis kernel.)
    use std::sync::{Arc, Mutex};

    let image = compile_str("fn main() { return 9; }", &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let counter = exec.reserve_data(4);
    let landed = Arc::new(Mutex::new(Vec::new()));
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let mut cfg = exec.build_cfg(main_id).unwrap();
    let entry = cfg.entry_block();
    let sink = Arc::clone(&landed);
    let snippet = Snippet::counter_increment(counter).with_callback(Box::new(
        move |insns, addr, assignment| {
            sink.lock()
                .unwrap()
                .push((addr, insns.len(), assignment.map.len()));
        },
    ));
    cfg.add_code_at_block_start(entry, snippet).unwrap();
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();

    let calls = landed.lock().unwrap().clone();
    assert_eq!(calls.len(), 1, "one placement, one call-back");
    let (addr, len, mapped) = calls[0];
    assert!(edited.in_text(addr), "final address is a text address");
    assert_eq!(len, 4, "the counter body");
    assert_eq!(mapped, 2, "two scavenged registers assigned");
    assert_eq!(run_image(&edited).unwrap().exit_code, 9);
}

#[test]
fn snippet_calls_into_added_runtime_routine() {
    // §5: tools add whole routines ("another program") and call them from
    // snippets.
    let image = compile_str(
        "fn main() { var i; var t = 0; \
           for (i = 0; i < 5; i = i + 1) { t = t + i; } return t; }",
        &Options::default(),
    )
    .unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let cell = exec.reserve_data(4);
    // A runtime routine that bumps a cell by 7 each call, preserving
    // everything it touches.
    exec.add_runtime_routine(
        "__bump7",
        &format!(
            r#"
        __bump7:
            st %g6, [%sp - 120]
            st %g7, [%sp - 128]
            sethi %hi({cell}), %g6
            ld [%lo({cell}) + %g6], %g7
            add %g7, 7, %g7
            st %g7, [%lo({cell}) + %g6]
            ld [%sp - 120], %g6
            ld [%sp - 128], %g7
            retl
            nop
        "#
        ),
    );
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let mut cfg = exec.build_cfg(main_id).unwrap();
    let entry = cfg.entry_block();
    let snippet = Snippet::from_asm("st %o7, [%sp - 112]\n call .\n nop\n ld [%sp - 112], %o7\n")
        .unwrap()
        .with_call(1, "__bump7");
    cfg.add_code_at_block_start(entry, snippet).unwrap();
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, 10);
    assert_eq!(machine.read_word(cell), 7, "runtime routine ran once");
}

// ------------------------------------------------- multi-entry routines

#[test]
fn multi_entry_routine_from_interprocedural_branch() {
    // `helper` branches into the middle of `shared` (a second entry
    // point, the Fortran-ENTRY shape §3.1 describes). EEL must register
    // the extra entry and keep both paths working after editing.
    let image = eel_asm::assemble(
        r#"
        .global main
        .global shared
        .global helper
    main:
        sub %sp, 16, %sp
        st %o7, [%sp + 4]
        call shared          ! full entry: 100 + 5
        mov 5, %o0
        mov %o0, %l0
        call helper          ! enters shared mid-way: 7 + 1000
        mov 7, %o0
        add %l0, %o0, %o0
        ld [%sp + 4], %o7
        mov 1, %g1
        ta 0
        add %sp, 16, %sp
    shared:
        add %o0, 100, %o0
    shared_mid:
        retl
        add %o0, 1000, %o0
    helper:
        ba shared_mid        ! interprocedural branch → extra entry
        nop
    "#,
    )
    .unwrap();
    let baseline = run_image(&image).unwrap();
    assert_eq!(baseline.exit_code, 5 + 100 + 1000 + 7 + 1000);

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    // Building helper's CFG registers shared_mid as an entry of shared.
    let helper = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "helper")
        .unwrap();
    let _ = exec.build_cfg(helper).unwrap();
    let shared = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "shared")
        .unwrap();
    assert!(
        exec.routine(shared).entries().len() >= 2,
        "interprocedural branch target became an entry: {:?}",
        exec.routine(shared).entries()
    );
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, baseline.exit_code);
}

// -------------------------------------------- pathological code shapes

#[test]
fn branch_into_delay_slot_is_handled() {
    // Jumping INTO a delay slot: the delay instruction is both a slot
    // (after the call) and a block in its own right. EEL duplicates it;
    // behavior must be preserved through editing.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        sub %sp, 16, %sp
        st %o7, [%sp + 4]
        call target
        mov 1, %l0           ! delay slot, ALSO branched to below
        cmp %l0, 1
        bne slotter
        nop
        ba done
        nop
    slotter:
        ba done              ! displacement patched below to hit the slot
        nop
    done:
        mov %l0, %o0
        ld [%sp + 4], %o7
        mov 1, %g1
        ta 0
        add %sp, 16, %sp
    target:
        retl
        nop
    "#,
    )
    .unwrap();
    // NB: `slot` label can't be defined twice in asm source; simulate the
    // shape by hand instead: patch the `ba slot` displacement to point at
    // the delay-slot address.
    let mut image = image;
    let slotter = image.find_symbol("slotter").unwrap().value;
    let main = image.find_symbol("main").unwrap().value;
    let delay_addr = main + 12; // the `mov 1, %l0`
    let ba = eel_isa::encode(&eel_isa::Op::Branch {
        cond: eel_isa::Cond::Always,
        annul: false,
        disp22: ((delay_addr as i64 - slotter as i64) / 4) as i32,
        fp: false,
    });
    image.patch_word(slotter, ba);
    let baseline = run_image(&image).unwrap();

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, baseline.exit_code);
}

#[test]
fn data_padding_between_routines_survives() {
    // Unreached words between routines (alignment padding, small data)
    // are preserved verbatim by relayout.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        mov 33, %o0
        mov 1, %g1
        ta 0
        nop
        retl
        nop
        .word 0xdeadbeef, 0x00000000
        .global after
    after:
        retl
        mov 1, %o0
    "#,
    )
    .unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, 33);
    // The pad word is still somewhere in the text.
    let found = edited.text_words().any(|(_, w)| w == 0xdeadbeef);
    assert!(found, "padding word preserved");
}

// --------------------------------------- Figure 3 edge-count semantics

#[test]
fn annulled_branch_edges_count_exactly() {
    // A backward `bne,a` loop branch: its delay slot executes only on
    // taken iterations (Figure 3). Instrument the taken and fall edges;
    // the counts must be exactly the loop trip counts, and the delay-slot
    // `add` must contribute only on taken paths.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        mov 0, %l0          ! counter
        mov 0, %l1          ! accumulated by the delay slot
    loop:
        add %l0, 1, %l0
        cmp %l0, 10
        bne,a loop          ! taken 9 times, falls through once
        add %l1, 1, %l1     ! annulled slot: runs on TAKEN iterations only
        mov %l1, %o0
        mov 1, %g1
        ta 0
        nop
    "#,
    )
    .unwrap();
    let baseline = run_image(&image).unwrap();
    assert_eq!(baseline.exit_code, 9, "delay add ran once per taken branch");

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let taken_c = exec.reserve_data(4);
    let fall_c = exec.reserve_data(4);
    let id = exec.all_routine_ids()[0];
    let mut cfg = exec.build_cfg(id).unwrap();
    // Find the bne,a block and its taken/fall out-edges.
    let (bid, _) = cfg
        .blocks()
        .find(|(_, b)| {
            b.terminator()
                .map(|t| matches!(t.insn.op, eel_isa::Op::Branch { annul: true, .. }))
                .unwrap_or(false)
        })
        .expect("the annulled branch block");
    let succ: Vec<_> = cfg.block(bid).succ().to_vec();
    let mut edited = 0;
    for e in succ {
        let edge = cfg.edge(e).clone();
        let counter = match edge.kind {
            eel_core::EdgeKind::Taken => taken_c,
            eel_core::EdgeKind::Fall => fall_c,
            _ => continue,
        };
        cfg.add_code_along(e, Snippet::counter_increment(counter))
            .unwrap();
        edited += 1;
    }
    assert_eq!(edited, 2, "both directions instrumented");
    exec.install_edits(cfg).unwrap();
    let edited_image = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited_image).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, 9, "semantics preserved under edge edits");
    assert_eq!(machine.read_word(taken_c), 9, "taken-edge count");
    assert_eq!(machine.read_word(fall_c), 1, "fall-edge count");
}
