//! Property-based tests over eel-core: CFG structural invariants,
//! dominator correctness against a naive definition, and an edit-fuzzing
//! battery (random instrumentation placements must preserve behavior).

use eel_cc::{compile_ast, Options, Personality};
use eel_core::{BlockKind, Dominators, EdgeKind, Executable, Liveness, Snippet};
use eel_emu::run_image;
use eel_progen::{random_program, GenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_all(image: eel_exe::Image) -> (Executable, Vec<eel_core::Cfg>) {
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let mut cfgs = Vec::new();
    for id in exec.all_routine_ids() {
        cfgs.push(exec.build_cfg(id).unwrap());
    }
    (exec, cfgs)
}

/// Naive dominator check: `a` dominates `b` iff `b` is unreachable from
/// the entry once `a` is removed.
fn naive_dominates(cfg: &eel_core::Cfg, a: eel_core::BlockId, b: eel_core::BlockId) -> bool {
    if a == b {
        return true;
    }
    let mut seen = vec![false; cfg.block_count()];
    let mut stack = vec![cfg.entry_block()];
    seen[cfg.entry_block().index()] = true;
    if cfg.entry_block() == a {
        return true; // entry dominates everything reachable
    }
    while let Some(x) = stack.pop() {
        for &e in cfg.block(x).succ() {
            let to = cfg.edge(e).to;
            if to == a || seen[to.index()] {
                continue;
            }
            seen[to.index()] = true;
            stack.push(to);
        }
    }
    !seen[b.index()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// CFG structural invariants over random compiled programs.
    #[test]
    fn cfg_structural_invariants(seed in 0u64..500) {
        let program = random_program(seed, &GenConfig::default());
        let Ok(image) = compile_ast(&program, &Options::default()) else {
            return Ok(());
        };
        let (_, cfgs) = build_all(image);
        for cfg in &cfgs {
            for (bid, block) in cfg.blocks() {
                // Edge lists are mutually consistent.
                for &e in block.succ() {
                    prop_assert_eq!(cfg.edge(e).from, bid);
                    prop_assert!(cfg.block(cfg.edge(e).to).pred().contains(&e));
                }
                for &e in block.pred() {
                    prop_assert_eq!(cfg.edge(e).to, bid);
                    prop_assert!(cfg.block(cfg.edge(e).from).succ().contains(&e));
                }
                match block.kind {
                    BlockKind::DelaySlot => {
                        prop_assert_eq!(block.insns.len(), 1);
                        prop_assert_eq!(block.pred().len(), 1);
                    }
                    BlockKind::CallSurrogate | BlockKind::Entry | BlockKind::Exit => {
                        prop_assert!(block.insns.is_empty());
                    }
                    BlockKind::Normal => {
                        prop_assert!(!block.insns.is_empty());
                        // Only the last instruction may be a control
                        // transfer.
                        for ia in &block.insns[..block.insns.len() - 1] {
                            prop_assert!(!ia.insn.is_control_transfer(), "{}", ia.insn);
                        }
                        // All addresses inside the routine extent, in order.
                        let addrs: Vec<u32> =
                            block.insns.iter().filter_map(|ia| ia.addr).collect();
                        for w in addrs.windows(2) {
                            prop_assert_eq!(w[1], w[0] + 4);
                        }
                    }
                }
            }
            // The exit block has no successors; the entry no predecessors.
            prop_assert!(cfg.block(cfg.exit_block()).succ().is_empty());
            prop_assert!(cfg.block(cfg.entry_block()).pred().is_empty());
            // Escape/runtime edges are uneditable.
            for i in 0..cfg.edge_count() {
                let e = cfg.edge(eel_core::EdgeId::from_index(i));
                if matches!(e.kind, EdgeKind::Escape { .. } | EdgeKind::RuntimeIndirect) {
                    prop_assert!(!e.editable);
                }
            }
        }
    }

    /// The iterative dominator algorithm agrees with the naive
    /// reachability definition.
    #[test]
    fn dominators_match_naive_definition(seed in 0u64..200) {
        let program = random_program(seed, &GenConfig {
            functions: 2, stmts_per_fn: 5, ..GenConfig::default()
        });
        let Ok(image) = compile_ast(&program, &Options::default()) else {
            return Ok(());
        };
        let (_, cfgs) = build_all(image);
        for cfg in cfgs.iter().take(3) {
            let dom = Dominators::compute(cfg);
            let n = cfg.block_count();
            // Sample pairs rather than all O(n^2) for big graphs.
            let step = (n / 12).max(1);
            for ai in (0..n).step_by(step) {
                for bi in (0..n).step_by(step) {
                    let a = eel_core::BlockId::from_index(ai);
                    let b = eel_core::BlockId::from_index(bi);
                    if !dom.is_reachable(b) || !dom.is_reachable(a) {
                        continue;
                    }
                    prop_assert_eq!(
                        dom.dominates(a, b),
                        naive_dominates(cfg, a, b),
                        "dominates({:?}, {:?})", a, b
                    );
                }
            }
        }
    }

    /// Liveness sanity: a register read by the first instruction of a
    /// block with no prior definition is live-in.
    #[test]
    fn liveness_includes_immediate_uses(seed in 0u64..200) {
        let program = random_program(seed, &GenConfig::default());
        let Ok(image) = compile_ast(&program, &Options::default()) else {
            return Ok(());
        };
        let (_, cfgs) = build_all(image);
        for cfg in &cfgs {
            let live = Liveness::compute(cfg);
            for (bid, block) in cfg.blocks() {
                if let Some(first) = block.insns.first() {
                    for r in first.insn.reads().iter() {
                        prop_assert!(
                            live.live_in(bid).contains(r),
                            "{r} read by {} but not live-in",
                            first.insn
                        );
                    }
                }
            }
        }
    }
}

/// Edit fuzzing: sprinkle counter snippets over random editable points of
/// random programs; the edited program must behave identically, under
/// both compiler personalities.
#[test]
fn random_edit_battery_preserves_behavior() {
    for seed in 0..8u64 {
        let program = random_program(seed, &GenConfig::default());
        for personality in [Personality::Gcc, Personality::SunPro] {
            let options = Options {
                personality,
                ..Options::default()
            };
            let Ok(image) = compile_ast(&program, &options) else {
                continue;
            };
            let Ok(before) = run_image(&image) else {
                continue;
            };
            if before.cycles > 3_000_000 {
                continue; // keep the battery fast; heavy seeds add nothing
            }
            let mut exec = Executable::from_image(image).unwrap();
            exec.read_contents().unwrap();
            let counters = exec.reserve_data(4 * 4096);
            let mut n = 0u32;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            for id in exec.all_routine_ids() {
                let mut cfg = exec.build_cfg(id).unwrap();
                // Random block-start edits.
                let blocks: Vec<_> = cfg
                    .blocks()
                    .filter(|(_, b)| {
                        b.kind == BlockKind::Normal && b.editable && !b.insns.is_empty()
                    })
                    .map(|(bid, _)| bid)
                    .collect();
                for bid in blocks {
                    if rng.gen_bool(0.4) {
                        cfg.add_code_at_block_start(
                            bid,
                            Snippet::counter_increment(counters + 4 * n),
                        )
                        .unwrap();
                        n += 1;
                    }
                }
                // Random edge edits.
                let edges: Vec<_> = (0..cfg.edge_count())
                    .map(eel_core::EdgeId::from_index)
                    .filter(|&e| cfg.edge(e).editable)
                    .collect();
                for e in edges {
                    if rng.gen_bool(0.25) {
                        cfg.add_code_along(e, Snippet::counter_increment(counters + 4 * n))
                            .unwrap();
                        n += 1;
                    }
                }
                // Random before/after edits on non-transfer instructions.
                let sites: Vec<u32> = cfg
                    .blocks()
                    .filter(|(_, b)| b.kind == BlockKind::Normal && b.editable)
                    .flat_map(|(_, b)| {
                        b.insns
                            .iter()
                            .filter(|ia| !ia.insn.is_control_transfer())
                            .filter_map(|ia| ia.addr)
                            .collect::<Vec<_>>()
                    })
                    .collect();
                for addr in sites {
                    if rng.gen_bool(0.1) {
                        let s = Snippet::counter_increment(counters + 4 * n);
                        n += 1;
                        if rng.gen_bool(0.5) {
                            cfg.add_code_before(addr, s).unwrap();
                        } else {
                            cfg.add_code_after(addr, s).unwrap();
                        }
                    }
                }
                exec.install_edits(cfg).unwrap();
            }
            let edited = exec.write_edited().unwrap();
            let after = eel_emu::Machine::load(&edited)
                .unwrap()
                .with_step_limit(2_000_000_000)
                .run()
                .unwrap_or_else(|e| {
                    panic!("seed {seed} ({personality:?}): edited program failed: {e}")
                });
            assert_eq!(
                before.exit_code, after.exit_code,
                "seed {seed} {personality:?}"
            );
            assert_eq!(before.output, after.output, "seed {seed} {personality:?}");
            assert!(
                n == 0 || after.cycles >= before.cycles,
                "instrumentation costs cycles"
            );
        }
    }
}
