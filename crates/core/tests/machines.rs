//! Cross-machine integration: the MIPS path through the machine seam.
//!
//! The tentpole acceptance test lives here: a progen-generated MIPS WEF
//! round-trips load → disasm → CFG → liveness → block-counter
//! instrumentation → emulation, with the instrumented run's counters
//! matching the uninstrumented run's block execution counts — all
//! through the spawn-derived backend.

use eel_core::{
    generic_cfg, generic_disasm, generic_liveness, instrument_block_counters, machine_ops,
    routine_key, Analysis, Executable, InsnKind,
};
use eel_exe::Machine;
use std::sync::Arc;

fn mips_workload() -> eel_exe::Image {
    let w = eel_progen::Workload {
        name: "machines-rt",
        source: "
            global acc;
            fn weigh(x, y) {
                var t = 0;
                while (x > 0) {
                    t = t + y % 7 - (x & 3);
                    x = x - 1;
                    if (t > 100) { t = t - 90; }
                }
                return t;
            }
            fn main() {
                var i;
                acc = 0;
                for (i = 1; i < 40; i = i + 1) {
                    acc = acc + weigh(i, i * 3);
                    print(acc);
                }
                return acc & 127;
            }
        "
        .into(),
    };
    eel_progen::compile_machine(&w, eel_cc::Personality::Gcc, Machine::Mips).unwrap()
}

/// Load → discovery → disasm → CFG → liveness → instrument → run: block
/// counters agree exactly with the uninstrumented execution.
#[test]
fn mips_round_trip_with_block_counters() {
    let image = mips_workload();
    assert_eq!(image.machine, Machine::Mips);

    // Discovery through the seam: routine set from the symbol table.
    let analysis = Analysis::compute(Arc::new(image.clone())).unwrap();
    assert_eq!(analysis.machine(), Machine::Mips);
    let names: Vec<String> = analysis.routines().iter().map(|r| r.name()).collect();
    assert!(names.iter().any(|n| n == "main"), "{names:?}");
    assert!(names.iter().any(|n| n == "weigh"), "{names:?}");

    // Disassembly comes from the description-derived decoder.
    let main = analysis
        .routines()
        .iter()
        .find(|r| r.name() == "main")
        .unwrap();
    let listing = generic_disasm(&image, main);
    assert!(!listing.is_empty());
    let text = listing.join("\n");
    for mnemonic in ["addiu", "sw", "lw", "jal"] {
        assert!(text.contains(mnemonic), "missing {mnemonic} in:\n{text}");
    }

    // CFG: the while/if/for structure yields real branching.
    let cfg = generic_cfg(&image, main).unwrap();
    assert!(cfg.blocks.len() >= 4, "{} blocks", cfg.blocks.len());
    assert!(cfg.blocks.iter().any(|b| b.succs.len() == 2));
    // Every successor is a block start.
    for b in &cfg.blocks {
        for s in &b.succs {
            assert!(cfg.block_at(*s).is_some(), "succ {s:#x} is not a block");
        }
    }

    // Liveness over description-derived reads/writes: the sp-relative
    // stack machine keeps $29 live everywhere.
    let live = generic_liveness(&image, &cfg);
    assert!(live.live_in[0].contains("$29"), "{:?}", live.live_in[0]);

    // Uninstrumented run, watching every block leader of every routine.
    let leaders: Vec<u32> = {
        let mut v = Vec::new();
        for r in analysis.routines() {
            let c = generic_cfg(&image, r).unwrap();
            v.extend(c.blocks.iter().map(|b| b.start));
        }
        v
    };
    let mut base = eel_emu::MipsMachine::load(&image)
        .unwrap()
        .with_pc_watch(&leaders);
    let before = base.run().unwrap();
    let base_counts = base.take_pc_counts();

    // Instrumented run: same observable behavior.
    let (edited, counters) = instrument_block_counters(&image).unwrap();
    assert_eq!(edited.machine, Machine::Mips);
    let mut insned = eel_emu::MipsMachine::load(&edited).unwrap();
    let after = insned.run().unwrap();
    assert_eq!(after.exit_code, before.exit_code);
    assert_eq!(after.output, before.output);

    // Counters match the uninstrumented block execution counts. The
    // rewriter's blocks cover whole-text leaders, a superset of the
    // per-routine CFG leaders; compare on the intersection and make
    // sure something nontrivial was counted.
    let mut compared = 0;
    let mut nonzero = 0;
    for c in &counters {
        if let Some(&n) = base_counts.get(&c.orig_start) {
            let counted = u64::from(insned.read_word(c.counter_addr));
            assert_eq!(
                counted, n,
                "block {:#x}: counter {counted} != executed {n}",
                c.orig_start
            );
            compared += 1;
            if n > 0 {
                nonzero += 1;
            }
        }
    }
    assert!(compared >= 8, "only {compared} blocks compared");
    assert!(nonzero >= 4, "only {nonzero} blocks executed");
}

/// Identical bytes under different machine tags are different programs:
/// routine keys (the fragment-cache identity) must differ for every
/// routine of a real image when only the tag changes.
#[test]
fn machine_tag_separates_routine_keys() {
    let mips = mips_workload();
    let mut sparc_twin = mips.clone();
    sparc_twin.machine = Machine::Sparc;
    assert_eq!(mips.text, sparc_twin.text);

    let analysis = Analysis::compute(Arc::new(mips.clone())).unwrap();
    for r in analysis.routines() {
        assert_ne!(
            routine_key(&mips, r),
            routine_key(&sparc_twin, r),
            "{} shares a key across machine tags",
            r.name()
        );
    }
}

/// A stripped MIPS image still yields a routine set, via `jal` targets
/// and the `addiu $sp`/`sw $ra` prologue signature through the seam.
#[test]
fn stripped_mips_discovery() {
    let mut image = mips_workload();
    image
        .symbols
        .retain(|s| s.kind != eel_exe::SymbolKind::Routine);
    let starts: Vec<u32> = {
        let a = Analysis::compute(Arc::new(image.clone())).unwrap();
        assert_eq!(a.discovery(), eel_core::DiscoverySource::Inferred);
        a.routines().iter().map(|r| r.start()).collect()
    };
    // The named image knows where main and weigh start; inference must
    // find those starts too (they are jal targets with prologues).
    let named = Analysis::compute(Arc::new(mips_workload())).unwrap();
    for r in named.routines() {
        if ["main", "weigh"].contains(&r.name().as_str()) {
            assert!(
                starts.contains(&r.start()),
                "inference missed {} at {:#x}",
                r.name(),
                r.start()
            );
        }
    }
}

/// The SPARC editing pipeline rejects a MIPS image with a directive
/// toward the generic path, instead of mis-decoding it.
#[test]
fn sparc_pipeline_guards_against_mips() {
    let image = mips_workload();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let id = exec.all_routine_ids()[0];
    let err = exec.build_cfg(id).unwrap_err().to_string();
    assert!(err.contains("sparc-only"), "{err}");
    let err = exec.write_edited().unwrap_err().to_string();
    assert!(err.contains("sparc-only"), "{err}");
}

/// The dispatch seam agrees with the raw eel-isa classification on a
/// real SPARC image (the seed pipeline is unchanged).
#[test]
fn sparc_seam_matches_isa_on_real_image() {
    let w = &eel_progen::suite()[0];
    let image = eel_progen::compile(w, eel_cc::Personality::Gcc).unwrap();
    let ops = machine_ops(Machine::Sparc);
    for (addr, word) in image.text_words() {
        let insn = eel_isa::decode(word);
        let kind = ops.kind(word, addr);
        match insn.op {
            eel_isa::Op::Call { .. } => {
                assert!(matches!(kind, InsnKind::Jump { links: true, .. }))
            }
            eel_isa::Op::Jmpl { .. } => {
                assert!(matches!(kind, InsnKind::IndirectJump { .. }))
            }
            eel_isa::Op::Invalid => assert_eq!(kind, InsnKind::Invalid),
            _ => {}
        }
        assert_eq!(ops.has_delay_slot(word, addr), insn.is_delayed());
    }
}

/// `routine_key` is sensitive to the machine byte even for a fabricated
/// routine over identical bytes (unit-level version of the serve-side
/// cache separation).
#[test]
fn routine_key_folds_machine_byte() {
    use eel_exe::{DATA_BASE, TEXT_BASE};
    let mut a = eel_exe::Image::new(TEXT_BASE, DATA_BASE);
    for w in [0x0085_1021u32, 0x03e0_0008, 0] {
        a.text.extend_from_slice(&w.to_be_bytes());
    }
    a.symbols.push(eel_exe::Symbol::routine("f", TEXT_BASE));
    let b = a.clone().with_machine(Machine::Mips);
    let an_a = Analysis::compute(Arc::new(a)).unwrap();
    let an_b = Analysis::compute(Arc::new(b)).unwrap();
    let ra = &an_a.routines()[0];
    let rb = &an_b.routines()[0];
    assert_eq!((ra.start(), ra.end()), (rb.start(), rb.end()));
    assert_ne!(routine_key(an_a.image(), ra), routine_key(an_b.image(), rb));
}
