//! End-to-end integration tests for the EEL core: compile real Wisc
//! programs, analyze and edit them, write edited executables, and verify
//! behavioral equivalence (plus instrumentation correctness) under the
//! emulator.

use eel_cc::{compile_str, Options, Personality};
use eel_core::{BlockKind, EdgeKind, Executable, Snippet};
use eel_emu::{run_image, Machine};
use eel_exe::Image;
use eel_isa::Reg;

/// A battery of representative programs. Each returns a deterministic
/// exit code and some print output.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "loops",
        r#"
        fn main() {
            var i; var t = 0;
            for (i = 0; i < 50; i = i + 1) {
                if (i % 3 == 0) { t = t + i; } else { t = t - 1; }
            }
            print(t);
            return t;
        }"#,
    ),
    (
        "calls",
        r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { print(fib(12)); return fib(12); }"#,
    ),
    (
        "switch",
        r#"
        global hits[8];
        fn classify(x) {
            switch (x % 7) {
                case 0: { return 10; }
                case 1: { return 11; }
                case 2: { return 12; }
                case 3: { return 13; }
                case 4: { return 14; }
                case 6: { return 16; }
                default: { return 99; }
            }
        }
        fn main() {
            var i; var acc = 0;
            for (i = 0; i < 40; i = i + 1) {
                acc = acc + classify(i);
                hits[i % 8] = hits[i % 8] + 1;
            }
            print(acc);
            return acc % 251;
        }"#,
    ),
    (
        "funptr",
        r#"
        fn twice(x) { return x * 2; }
        fn thrice(x) { return x * 3; }
        fn apply(f, x) { return (*f)(x); }
        fn main() {
            var a = apply(&twice, 10);
            var b = apply(&thrice, 10);
            print(a + b);
            return a * 100 + b;
        }"#,
    ),
    (
        "tail",
        r#"
        fn add1(x) { return x + 1; }
        fn chain3(x) { return add1(x * 2); }
        fn chain2(x) { return chain3(x + 5); }
        fn chain1(x) { return chain2(x); }
        fn main() { print(chain1(7)); return chain1(7); }"#,
    ),
    (
        "memory",
        r#"
        global buf[32];
        fn main() {
            var i; var sum = 0;
            for (i = 0; i < 32; i = i + 1) { buf[i] = i * i % 17; }
            for (i = 0; i < 32; i = i + 1) { sum = sum + buf[i]; }
            print(sum);
            return sum;
        }"#,
    ),
];

fn all_option_combos() -> Vec<Options> {
    let mut v = Vec::new();
    for personality in [Personality::Gcc, Personality::SunPro] {
        for fill in [true, false] {
            v.push(Options {
                personality,
                fill_delay_slots: fill,
                strip: false,
            });
        }
    }
    v
}

fn passthrough(image: Image) -> Image {
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    exec.write_edited().unwrap()
}

#[test]
fn passthrough_preserves_behavior_for_all_programs() {
    for (name, src) in PROGRAMS {
        for opts in all_option_combos() {
            let image = compile_str(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            let before = run_image(&image).unwrap_or_else(|e| panic!("{name} original: {e}"));
            let edited = passthrough(image);
            let after =
                run_image(&edited).unwrap_or_else(|e| panic!("{name} edited ({opts:?}): {e}"));
            assert_eq!(before.exit_code, after.exit_code, "{name} {opts:?}");
            assert_eq!(before.output, after.output, "{name} {opts:?}");
        }
    }
}

#[test]
fn write_edited_with_zero_edits_is_byte_identical() {
    // No observable edit ⇒ the rewrite is the identity on WEF bytes, not
    // merely behavior-preserving (no bss materialization, no symbol
    // rebuild). Both the bare pass-through and the install-everything
    // pass-through (edit-free CFGs) must take the clean fast path.
    for (name, src) in PROGRAMS {
        let image = compile_str(src, &Options::default()).unwrap();
        let bytes = image.to_bytes();
        let edited = passthrough(image.clone());
        assert_eq!(edited.to_bytes(), bytes, "{name}: clean pass-through");

        let mut exec = Executable::from_image(image.clone()).unwrap();
        exec.read_contents().unwrap();
        for id in exec.all_routine_ids() {
            let cfg = exec.build_cfg(id).unwrap();
            exec.install_edits(cfg).unwrap();
        }
        let edited = exec.write_edited().unwrap();
        if *name == "funptr" {
            // Installing a layout that needs run-time translation (the
            // function-pointer dispatch) commits the rewrite to carry
            // the translator, so the identity fast path must NOT fire.
            assert_ne!(edited.to_bytes(), bytes, "{name}: translator expected");
            let before = run_image(&image).unwrap();
            let after = run_image(&edited).unwrap();
            assert_eq!(before.exit_code, after.exit_code, "{name}");
            assert_eq!(before.output, after.output, "{name}");
        } else {
            assert_eq!(edited.to_bytes(), bytes, "{name}: edit-free install");
            // The identity map is still available for address queries.
            assert_eq!(exec.edited_addr(edited.entry), Some(edited.entry));
        }
    }
}

#[test]
fn zero_byte_reservation_keeps_the_clean_fast_path() {
    let image = compile_str(PROGRAMS[0].1, &Options::default()).unwrap();
    let bytes = image.to_bytes();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    assert_eq!(exec.reserve_data(0) % 8, 0);
    let edited = exec.write_edited().unwrap();
    assert_eq!(edited.to_bytes(), bytes);
}

#[test]
fn any_real_edit_disables_the_fast_path() {
    let image = compile_str(PROGRAMS[0].1, &Options::default()).unwrap();
    let bytes = image.to_bytes();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let counter = exec.reserve_data(4);
    let id = exec.routine_containing(exec.image().entry).unwrap();
    let mut cfg = exec.build_cfg(id).unwrap();
    let addr = exec.routine(id).start();
    cfg.add_code_before(addr, Snippet::counter_increment(counter))
        .unwrap();
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();
    assert_ne!(edited.to_bytes(), bytes, "an edit must change the image");
}

#[test]
fn passthrough_preserves_behavior_for_stripped_binaries() {
    for (name, src) in PROGRAMS {
        let opts = Options {
            strip: true,
            ..Options::default()
        };
        let image = compile_str(src, &opts).unwrap();
        assert!(image.is_stripped());
        let before = run_image(&image).unwrap();
        let edited = passthrough(image);
        let after = run_image(&edited).unwrap_or_else(|e| panic!("{name} stripped: {e}"));
        assert_eq!(before.exit_code, after.exit_code, "{name} stripped");
        assert_eq!(before.output, after.output, "{name} stripped");
    }
}

#[test]
fn read_contents_finds_compiler_routines() {
    let image = compile_str(PROGRAMS[1].1, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let names: Vec<String> = exec.routines().iter().map(|r| r.name()).collect();
    assert!(names.contains(&"main".to_string()), "{names:?}");
    assert!(names.contains(&"fib".to_string()), "{names:?}");
    assert!(names.contains(&"__start".to_string()), "{names:?}");
    assert!(names.contains(&"__print_int".to_string()), "{names:?}");
}

#[test]
fn stripped_discovery_finds_called_routines() {
    let src = PROGRAMS[1].1;
    let opts = Options {
        strip: true,
        ..Options::default()
    };
    let image = compile_str(src, &opts).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    // __start, main, fib, __print_int all reachable through calls.
    assert!(
        exec.routines().len() >= 4,
        "stripped discovery found only {:?}",
        exec.routines()
            .iter()
            .map(|r| r.start())
            .collect::<Vec<_>>()
    );
    // Names cannot be recreated (§3.1).
    assert!(exec.routines().iter().all(|r| !r.has_symbol_name()));
}

#[test]
fn entry_counting_matches_call_counts() {
    // fib(10) makes 177 calls to fib total (fib called 177 times).
    let src = r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(10); }"#;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();

    let counters = exec.reserve_data(4 * 16);
    let mut fib_slot = None;
    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id).unwrap();
        let slot = counters + 4 * id.index() as u32;
        if exec.routine(id).name() == "fib" {
            fib_slot = Some(slot);
        }
        let entry = cfg.entry_block();
        cfg.add_code_at_block_start(entry, Snippet::counter_increment(slot))
            .unwrap();
        exec.install_edits(cfg).unwrap();
    }
    let edited = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, 55, "fib(10)");
    let fib_count = machine.read_word(fib_slot.expect("fib instrumented"));
    assert_eq!(fib_count, 177, "fib entry count");
}

#[test]
fn edge_counting_on_branches() {
    // Count every out-edge of multi-successor blocks (Figure 1's tool);
    // the loop branch should fire a known number of times.
    let src = r#"
        fn main() {
            var i; var t = 0;
            for (i = 0; i < 10; i = i + 1) { t = t + i; }
            return t;
        }"#;
    let image = compile_str(src, &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();

    let counters = exec.reserve_data(4 * 256);
    let mut num = 0u32;
    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id).unwrap();
        let mut edits = Vec::new();
        for (bid, block) in cfg.blocks() {
            if block.kind != BlockKind::Normal || block.succ().len() < 2 {
                continue;
            }
            for &e in block.succ() {
                if cfg.edge(e).editable {
                    edits.push(e);
                }
            }
            let _ = bid;
        }
        for e in edits {
            cfg.add_code_along(e, Snippet::counter_increment(counters + 4 * num))
                .unwrap();
            num += 1;
        }
        exec.install_edits(cfg).unwrap();
    }
    assert!(num > 0, "instrumented some edges");
    let edited = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, plain.exit_code);
    // Sum of all edge counters must be positive and deterministic.
    let total: u32 = (0..num).map(|i| machine.read_word(counters + 4 * i)).sum();
    assert!(total >= 10, "edge executions recorded: {total}");
}

#[test]
fn jump_table_edges_can_be_instrumented() {
    let src = PROGRAMS[2].1; // switch program
    let image = compile_str(src, &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();

    let counters = exec.reserve_data(4 * 64);
    let mut num = 0u32;
    let mut found_table = false;
    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id).unwrap();
        let table_edges: Vec<_> = cfg
            .blocks()
            .flat_map(|(_, b)| b.succ().to_vec())
            .filter(|&e| cfg.edge(e).kind == EdgeKind::Table && cfg.edge(e).editable)
            .collect();
        if !table_edges.is_empty() {
            found_table = true;
        }
        for e in table_edges {
            cfg.add_code_along(e, Snippet::counter_increment(counters + 4 * num))
                .unwrap();
            num += 1;
        }
        exec.install_edits(cfg).unwrap();
    }
    assert!(
        found_table,
        "the switch program must contain a dispatch table"
    );
    let edited = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, plain.exit_code);
    assert_eq!(outcome.output, plain.output);
    let total: u32 = (0..num).map(|i| machine.read_word(counters + 4 * i)).sum();
    // classify() is called 40 times; every call dispatches through the table
    // (or its bounds-check default path for case 5).
    assert!(total >= 30, "table edge executions: {total}");
}

#[test]
fn sunpro_tail_calls_run_through_translation() {
    let src = PROGRAMS[4].1; // tail-call chain
    let opts = Options {
        personality: Personality::SunPro,
        ..Options::default()
    };
    let image = compile_str(src, &opts).unwrap();
    let plain = run_image(&image).unwrap();

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    // The tail jumps must be unanalyzable → incomplete CFGs somewhere.
    let mut any_incomplete = false;
    let mut cfgs = Vec::new();
    for id in exec.all_routine_ids() {
        let cfg = exec.build_cfg(id).unwrap();
        any_incomplete |= cfg.is_incomplete();
        cfgs.push(cfg);
    }
    assert!(
        any_incomplete,
        "SunPro tail calls must defeat static analysis"
    );
    for cfg in cfgs {
        exec.install_edits(cfg).unwrap();
    }
    let edited = exec.write_edited().unwrap();
    // The edited program still works: targets translate at run time.
    let after = run_image(&edited).unwrap();
    assert_eq!(plain.exit_code, after.exit_code);
    assert_eq!(plain.output, after.output);
    // Translation costs cycles.
    assert!(
        after.cycles > plain.cycles,
        "{} vs {}",
        after.cycles,
        plain.cycles
    );
}

#[test]
fn gcc_mode_has_no_unanalyzable_jumps_sunpro_does() {
    let count = |personality: Personality| -> (usize, usize) {
        let mut total = 0;
        let mut unknown = 0;
        for (_, src) in PROGRAMS {
            let opts = Options {
                personality,
                ..Options::default()
            };
            let image = compile_str(src, &opts).unwrap();
            let mut exec = Executable::from_image(image).unwrap();
            exec.read_contents().unwrap();
            for id in exec.all_routine_ids() {
                let cfg = exec.build_cfg(id).unwrap();
                for (_, res) in cfg.indirect_jumps() {
                    total += 1;
                    if matches!(res, eel_core::JumpResolution::Unknown) {
                        unknown += 1;
                    }
                }
            }
        }
        (total, unknown)
    };
    let (gcc_total, gcc_unknown) = count(Personality::Gcc);
    let (sp_total, sp_unknown) = count(Personality::SunPro);
    assert!(
        gcc_total > 0,
        "gcc programs contain indirect jumps (tables)"
    );
    assert_eq!(gcc_unknown, 0, "paper: 0 of 1,325 unanalyzable on gcc");
    assert!(sp_unknown > 0, "paper: 138 of 1,244 unanalyzable on SunPro");
    let _ = sp_total;
}

#[test]
fn add_code_before_every_memory_reference() {
    // Active-Memory shape: insert a counter before every load and store.
    let src = PROGRAMS[5].1;
    let image = compile_str(src, &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let counter = exec.reserve_data(4);
    let mut sites = 0u64;
    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id).unwrap();
        // Normal-block references: straight insertion before the access.
        for site in cfg.memory_sites() {
            if let Some(addr) = site.addr {
                cfg.add_code_before(addr, Snippet::counter_increment(counter))
                    .unwrap();
                sites += 1;
            }
        }
        // Delay-slot references: count them on each path they execute on
        // (editable branch-path delay blocks), or — for uneditable call
        // delay slots — at the paper's "alternative location", before the
        // call itself (the delay executes exactly once per call).
        let mut edge_edits: Vec<eel_core::EdgeId> = Vec::new();
        let mut before_calls: Vec<u32> = Vec::new();
        for (bid, block) in cfg.blocks() {
            if block.kind != BlockKind::DelaySlot {
                continue;
            }
            let is_mem = block
                .insns
                .first()
                .map(|ia| ia.insn.is_memory())
                .unwrap_or(false);
            if !is_mem {
                continue;
            }
            let incoming = block.pred().to_vec();
            for e in incoming {
                if cfg.edge(e).editable {
                    edge_edits.push(e);
                } else {
                    // Call/return delay: hook the transfer instruction.
                    let from = cfg.edge(e).from;
                    if let Some(term) = cfg.block(from).terminator() {
                        if let Some(a) = term.addr {
                            before_calls.push(a);
                        }
                    }
                }
            }
            let _ = bid;
        }
        for e in edge_edits {
            cfg.add_code_along(e, Snippet::counter_increment(counter))
                .unwrap();
            sites += 1;
        }
        for a in before_calls {
            cfg.add_code_before(a, Snippet::counter_increment(counter))
                .unwrap();
            sites += 1;
        }
        exec.install_edits(cfg).unwrap();
    }
    assert!(sites > 10, "plenty of memory sites: {sites}");
    let edited = exec.write_edited().unwrap();
    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, plain.exit_code);
    assert_eq!(outcome.output, plain.output);
    let dynamic_refs = machine.read_word(counter) as u64;
    assert_eq!(
        dynamic_refs,
        plain.loads + plain.stores,
        "the counter must equal the emulator's ground-truth reference count"
    );
}

#[test]
fn deleting_a_dead_instruction_preserves_behavior() {
    // Hand-written program with a provably dead instruction.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        mov 5, %o0
        mov 9, %l3          ! dead: %l3 never read
        mov 1, %g1
        ta 0
        nop
    "#,
    )
    .unwrap();
    let addr = image.text_addr + 4;
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let id = exec.routine_containing(addr).unwrap();
    let mut cfg = exec.build_cfg(id).unwrap();
    cfg.delete_insn(addr).unwrap();
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, 5);
    // The edited text is one word shorter than a pass-through would be.
    assert!(edited.text.len() <= 5 * 4 + 64, "deletion shrank the code");
}

#[test]
fn hidden_routine_discovered_from_call() {
    // `helper` has no symbol-table entry; it is discovered from the call.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        call helper
        nop
        mov 1, %g1
        ta 0
        nop
        .type helper, temp   ! stage 1 discards temp labels
    helper:
        retl
        mov 42, %o0
    "#,
    )
    .unwrap();
    let helper_addr = image.find_symbol("helper").unwrap().value;
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let id = exec.routine_containing(helper_addr).unwrap();
    assert!(
        exec.routine(id).is_hidden(),
        "helper must be a hidden routine"
    );
    assert_eq!(exec.routine(id).start(), helper_addr);
    // The hidden queue surfaces it (Figure 1's drain loop).
    let mut from_queue = Vec::new();
    while let Some(h) = exec.pop_hidden() {
        from_queue.push(h);
    }
    assert!(from_queue.contains(&id));
    // And the program still runs after editing.
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, 42);
}

#[test]
fn trailing_unreachable_code_becomes_hidden_routine() {
    // `main` ends in an unconditional return; `tail` is reachable only
    // through a pointer no analysis sees — stage 4 splits it off as
    // hidden.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        mov 7, %o0
        mov 1, %g1
        ta 0
        nop
        retl
        nop
    tail:
        retl
        mov 9, %o0
    "#,
    )
    .unwrap();
    let tail_addr = image.find_symbol("tail").unwrap().value;
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec.routine_containing(tail_addr).unwrap();
    // Building main's CFG triggers the stage-4 split.
    let _ = exec.build_cfg(main_id).unwrap();
    let tail_id = exec.routine_containing(tail_addr).unwrap();
    assert_ne!(main_id, tail_id, "tail split into its own routine");
    assert!(exec.routine(tail_id).is_hidden());
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, 7);
}

#[test]
fn cfg_stats_show_normalization_blocks() {
    let src = PROGRAMS[0].1;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let mut total = eel_core::CfgStats::default();
    for id in exec.all_routine_ids() {
        let cfg = exec.build_cfg(id).unwrap();
        total.accumulate(&cfg.stats());
    }
    assert!(
        total.delay_slot_blocks > 0,
        "delay-slot blocks exist: {total:?}"
    );
    assert!(
        total.call_surrogate_blocks > 0,
        "surrogates exist: {total:?}"
    );
    assert!(total.entry_exit_blocks >= 2, "{total:?}");
    let f = total.uneditable_edge_fraction();
    assert!(f > 0.02 && f < 0.6, "uneditable fraction plausible: {f}");
}

#[test]
fn dominators_and_loops_on_a_real_cfg() {
    let src = PROGRAMS[0].1; // has a for loop
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let cfg = exec.build_cfg(main_id).unwrap();
    let dom = eel_core::Dominators::compute(&cfg);
    assert!(dom.is_reachable(cfg.exit_block()));
    let loops = eel_core::natural_loops(&cfg, &dom);
    assert!(
        !loops.is_empty(),
        "the for loop must appear as a natural loop"
    );
    for l in &loops {
        assert!(l.contains(l.header));
        assert!(dom.dominates(l.header, cfg.edge(l.back_edge).from));
    }
}

#[test]
fn liveness_and_slicing_on_a_real_cfg() {
    let src = PROGRAMS[5].1;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let cfg = exec.build_cfg(main_id).unwrap();
    let live = eel_core::Liveness::compute(&cfg);
    // The stack pointer is live basically everywhere in compiled code.
    assert!(live.live_in(cfg.entry_block()).contains(Reg::SP));

    let mut slicer = eel_core::Slicer::new(&cfg);
    let mut sliced_any = false;
    for (bid, block) in cfg.blocks() {
        for (i, ia) in block.insns.iter().enumerate() {
            if ia.insn.is_memory() {
                slicer.slice_address(bid, i);
                sliced_any = true;
            }
        }
    }
    assert!(sliced_any);
    assert!(!slicer.is_empty(), "address slices are nonempty");
    assert!(
        slicer.count(eel_core::SliceMark::Easy) > 0,
        "sethi-style roots are easy"
    );
}

#[test]
fn edited_addr_maps_entries() {
    let image = compile_str("fn main() { return 3; }", &Options::default()).unwrap();
    let entry = image.entry;
    let main_sym = image.find_symbol("main").unwrap().value;
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let edited = exec.write_edited().unwrap();
    let new_entry = exec.edited_addr(entry).unwrap();
    assert_eq!(edited.entry, new_entry);
    assert!(exec.edited_addr(main_sym).is_some());
    assert_eq!(run_image(&edited).unwrap().exit_code, 3);
}

#[test]
fn multiple_snippets_at_one_point_compose() {
    let image = compile_str("fn main() { return 1; }", &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let c1 = exec.reserve_data(4);
    let c2 = exec.reserve_data(4);
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let mut cfg = exec.build_cfg(main_id).unwrap();
    let entry = cfg.entry_block();
    cfg.add_code_at_block_start(entry, Snippet::counter_increment(c1))
        .unwrap();
    cfg.add_code_at_block_start(entry, Snippet::counter_increment(c2))
        .unwrap();
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();
    let mut m = Machine::load(&edited).unwrap();
    assert_eq!(m.run().unwrap().exit_code, 1);
    assert_eq!(m.read_word(c1), 1);
    assert_eq!(m.read_word(c2), 1);
}

#[test]
fn uneditable_points_are_rejected() {
    let src = "fn f(x) { return x + 1; } fn main() { return f(1); }";
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "main")
        .unwrap();
    let mut cfg = exec.build_cfg(main_id).unwrap();
    // Find an uneditable edge (call flow / return flow) and try to edit it.
    let uneditable = (0..cfg.edge_count())
        .map(eel_core::EdgeId::from_index)
        .find(|&e| !cfg.edge(e).editable)
        .expect("calls create uneditable edges");
    let err = cfg
        .add_code_along(uneditable, Snippet::counter_increment(0x40_0000))
        .unwrap_err();
    assert!(matches!(err, eel_core::EelError::Uneditable { .. }));
}

#[test]
fn instruction_sharing_factor_is_substantial() {
    let image = compile_str(PROGRAMS[2].1, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    for id in exec.all_routine_ids() {
        let _ = exec.build_cfg(id).unwrap();
    }
    let stats = exec.alloc_stats();
    assert!(
        stats.sharing_factor() > 1.5,
        "instruction interning must share: {stats:?}"
    );
}

#[test]
fn disabling_jump_analysis_degrades_to_incomplete_cfgs() {
    // The ablation switch: without slicing, the switch's dispatch jump is
    // Unknown and the CFG incomplete (see the API's warning about what
    // that would mean for editing).
    let src = PROGRAMS[2].1;
    let image = compile_str(src, &Options::default()).unwrap();
    let mut with = Executable::from_image(image.clone()).unwrap();
    with.read_contents().unwrap();
    let mut without = Executable::from_image(image).unwrap();
    without.set_jump_analysis(false);
    without.read_contents().unwrap();

    let incomplete = |exec: &mut Executable| {
        exec.all_routine_ids()
            .into_iter()
            .filter(|&id| exec.build_cfg(id).unwrap().is_incomplete())
            .count()
    };
    assert_eq!(
        incomplete(&mut with),
        0,
        "slicing resolves everything (gcc mode)"
    );
    assert!(
        incomplete(&mut without) > 0,
        "without slicing the jump is unknown"
    );
}
