//! Machine-generic analyses over the [`crate::MachineOps`] seam.
//!
//! The SPARC pipeline in this crate predates the seam and keeps its
//! richer, edit-capable [`crate::Cfg`]. This module is the
//! machine-independent counterpart that any described machine gets for
//! free: basic-block CFGs, backward liveness, disassembly listings, and
//! qpt2-style block-counter instrumentation — enough for the service's
//! stat/disasm/instrument ops on a non-SPARC image. It is exercised
//! end-to-end by MIPS today; a future alpha backend reuses it untouched.

use crate::error::EelError;
use crate::machine::{machine_ops, InsnKind, MachineOps};
use crate::routine::Routine;
use eel_exe::{Image, Machine, Symbol, SymbolKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A basic block in a [`GenericCfg`].
#[derive(Debug, Clone)]
pub struct GenericBlock {
    /// First instruction address.
    pub start: u32,
    /// One past the last instruction (delay slot included).
    pub end: u32,
    /// Successor block starts (taken targets first, then fall-through).
    pub succs: Vec<u32>,
    /// The block ends in a transfer with an unknowable target set.
    pub has_indirect_exit: bool,
}

/// A routine-scoped control-flow graph built through the machine seam.
///
/// Delay slots are normalized the same way the SPARC CFG normalizes
/// them: a transfer and its delay slot stay in the transfer's block, and
/// the next block starts after the slot.
#[derive(Debug, Clone)]
pub struct GenericCfg {
    /// Blocks in ascending start order; the first is the entry block.
    pub blocks: Vec<GenericBlock>,
}

impl GenericCfg {
    /// The block starting at `addr`, if any.
    pub fn block_at(&self, addr: u32) -> Option<&GenericBlock> {
        self.blocks.iter().find(|b| b.start == addr)
    }
}

/// Builds a [`GenericCfg`] for one routine extent via the machine seam.
///
/// # Errors
///
/// [`EelError::BadAddress`] when the routine extent is outside the text
/// segment.
pub fn generic_cfg(image: &Image, routine: &Routine) -> Result<GenericCfg, EelError> {
    let _obs = eel_obs::span("core.generic.cfg");
    let ops = machine_ops(image.machine);
    let (start, end) = (routine.start(), routine.end());
    if start < image.text_addr || end > image.text_end() {
        return Err(EelError::BadAddress {
            addr: start,
            expected: "a routine extent inside the text segment",
        });
    }

    let word_at = |addr: u32| image.word_at(addr).unwrap_or(0);
    // Pass 1: leaders. The entry, every in-extent transfer target, and
    // the instruction after each transfer's delay slot.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(start);
    for &e in routine.entries() {
        leaders.insert(e);
    }
    let mut addr = start;
    while addr < end {
        let kind = ops.kind(word_at(addr), addr);
        let step = if ops.has_delay_slot(word_at(addr), addr) {
            8
        } else {
            4
        };
        match kind {
            InsnKind::Branch { target } | InsnKind::Jump { target, .. } => {
                if target >= start && target < end {
                    leaders.insert(target);
                }
                if addr + step < end {
                    leaders.insert(addr + step);
                }
            }
            InsnKind::IndirectJump { .. } if addr + step < end => {
                leaders.insert(addr + step);
            }
            _ => {}
        }
        addr += step;
    }

    // Pass 2: blocks between leaders, with successor edges.
    let starts: Vec<u32> = leaders.into_iter().collect();
    let mut blocks = Vec::with_capacity(starts.len());
    for (i, &bstart) in starts.iter().enumerate() {
        let bend = starts.get(i + 1).copied().unwrap_or(end);
        // Find the terminating transfer (if any) within the block.
        let mut succs = Vec::new();
        let mut has_indirect_exit = false;
        let mut addr = bstart;
        let mut fell_off = true;
        while addr < bend {
            let word = word_at(addr);
            let kind = ops.kind(word, addr);
            let delayed = ops.has_delay_slot(word, addr);
            let step = if delayed { 8 } else { 4 };
            match kind {
                InsnKind::Branch { target } => {
                    if target >= start && target < end {
                        succs.push(target);
                    }
                    if addr + step < end {
                        succs.push(addr + step);
                    }
                    fell_off = false;
                }
                InsnKind::Jump { target, links } => {
                    if links {
                        // A call returns to the post-slot address: treat
                        // it as straight-line, like the SPARC CFG does.
                        addr += step;
                        continue;
                    }
                    if target >= start && target < end {
                        succs.push(target);
                    }
                    fell_off = false;
                }
                InsnKind::IndirectJump { links } => {
                    if links {
                        addr += step;
                        continue;
                    }
                    has_indirect_exit = true;
                    fell_off = false;
                }
                _ => {
                    addr += step;
                    continue;
                }
            }
            break;
        }
        if fell_off && bend < end {
            succs.push(bend);
        }
        blocks.push(GenericBlock {
            start: bstart,
            end: bend,
            succs,
            has_indirect_exit,
        });
    }
    Ok(GenericCfg { blocks })
}

/// Per-block liveness over the machine seam's register names: backward
/// may-analysis to a fixed point, like [`crate::Liveness`] but keyed on
/// opaque names so it works for any described machine.
#[derive(Debug)]
pub struct GenericLiveness {
    /// Live-in sets, indexed like [`GenericCfg::blocks`].
    pub live_in: Vec<BTreeSet<String>>,
    /// Live-out sets, indexed like [`GenericCfg::blocks`].
    pub live_out: Vec<BTreeSet<String>>,
}

/// Computes backward liveness for a [`GenericCfg`].
pub fn generic_liveness(image: &Image, cfg: &GenericCfg) -> GenericLiveness {
    let _obs = eel_obs::span("core.generic.liveness");
    let ops = machine_ops(image.machine);
    let n = cfg.blocks.len();
    let index_of: HashMap<u32, usize> = cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();

    // Per-block gen (use before def) and kill (def) sets, scanning
    // forward; delay slots are plain instructions for dataflow purposes.
    let mut gens: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut kills: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (i, b) in cfg.blocks.iter().enumerate() {
        let mut addr = b.start;
        while addr < b.end {
            let word = image.word_at(addr).unwrap_or(0);
            for r in ops.reads(word) {
                if !kills[i].contains(&r) {
                    gens[i].insert(r);
                }
            }
            for r in ops.writes(word) {
                kills[i].insert(r);
            }
            addr += 4;
        }
    }

    let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: BTreeSet<String> = BTreeSet::new();
            for s in &cfg.blocks[i].succs {
                if let Some(&j) = index_of.get(s) {
                    out.extend(live_in[j].iter().cloned());
                }
            }
            let mut inn = gens[i].clone();
            for r in out.difference(&kills[i]) {
                inn.insert(r.clone());
            }
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    GenericLiveness { live_in, live_out }
}

/// Disassembles a routine extent into `addr: word  text` lines through
/// the machine seam.
pub fn generic_disasm(image: &Image, routine: &Routine) -> Vec<String> {
    let ops = machine_ops(image.machine);
    let mut out = Vec::new();
    let mut addr = routine.start();
    while addr < routine.end() {
        let word = image.word_at(addr).unwrap_or(0);
        out.push(format!(
            "{addr:#010x}: {word:08x}  {}",
            ops.disasm(word, addr)
        ));
        addr += 4;
    }
    out
}

// ---- MIPS block-counter instrumentation --------------------------------

/// Where one block's execution counter lives in the instrumented image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCounter {
    /// The block's first instruction address in the *original* image.
    pub orig_start: u32,
    /// The counter word's address (valid in the instrumented image).
    pub counter_addr: u32,
}

/// qpt2-style basic-block execution counting for a MIPS image: prepends
/// a four-word counter increment to every block and relocates all code
/// below it, repatching every `beq`/`bne`/`blez`/`bgtz` displacement and
/// `j`/`jal` target. The counter sequence uses `$k0`/`$k1` — reserved by
/// this reproduction's MIPS ABI exactly as `%g2`/`%g3` are reserved on
/// SPARC — so no program register is disturbed and no liveness scavenge
/// is needed:
///
/// ```text
/// lui   $k0, %hi(counter)
/// lw    $k1, %lo(counter)($k0)
/// addiu $k1, $k1, 1
/// sw    $k1, %lo(counter)($k0)
/// ```
///
/// Relocation is safe because the MIPS generator emits no jump tables
/// and never materializes a text address into a register (`&function`
/// is rejected); return addresses come from relocated `jal`s at run
/// time, so `jr $ra` needs no translation.
///
/// # Errors
///
/// [`EelError::BadImage`] for a non-MIPS image; [`EelError::LayoutOverflow`]
/// if a relocated branch no longer reaches its target.
pub fn instrument_block_counters(image: &Image) -> Result<(Image, Vec<BlockCounter>), EelError> {
    let _obs = eel_obs::span("core.generic.instrument");
    if image.machine != Machine::Mips {
        return Err(EelError::BadImage(format!(
            "block-counter rewriter supports mips images, not {}",
            image.machine
        )));
    }
    let ops = machine_ops(image.machine);
    let text = image.text_addr;
    let n_words = image.text.len() / 4;
    let words: Vec<u32> = (0..n_words)
        .map(|i| image.word_at(text + 4 * i as u32).unwrap())
        .collect();

    // Leaders over the whole text segment: segment start, the entry,
    // every routine symbol, every transfer target, and every
    // post-transfer (post-delay-slot) address.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(text);
    leaders.insert(image.entry);
    for s in &image.symbols {
        if s.kind == SymbolKind::Routine && image.in_text(s.value) {
            leaders.insert(s.value);
        }
    }
    let mut i = 0usize;
    while i < n_words {
        let addr = text + 4 * i as u32;
        let kind = ops.kind(words[i], addr);
        let step = if ops.has_delay_slot(words[i], addr) {
            2
        } else {
            1
        };
        match kind {
            InsnKind::Branch { target } | InsnKind::Jump { target, .. } => {
                if image.in_text(target) {
                    leaders.insert(target);
                }
                if i + step < n_words {
                    leaders.insert(addr + 4 * step as u32);
                }
            }
            InsnKind::IndirectJump { .. } if i + step < n_words => {
                leaders.insert(addr + 4 * step as u32);
            }
            _ => {}
        }
        i += step;
    }

    // Counter array: appended to the data segment, word-aligned.
    let starts: Vec<u32> = leaders.into_iter().collect();
    let pad = (4 - image.data.len() % 4) % 4;
    let counters_base = image.data_addr + (image.data.len() + pad) as u32;

    // Pass 1: new addresses. Each block grows by the 4-word preamble.
    let mut new_addr_of: BTreeMap<u32, u32> = BTreeMap::new(); // old insn → new insn
    let mut block_of_leader: HashMap<u32, usize> = HashMap::new();
    let mut new_pc = text;
    for (b, &bstart) in starts.iter().enumerate() {
        let bend = starts
            .get(b + 1)
            .copied()
            .unwrap_or(text + 4 * n_words as u32);
        block_of_leader.insert(bstart, b);
        new_pc += 16; // the preamble
        let mut a = bstart;
        while a < bend {
            new_addr_of.insert(a, new_pc);
            new_pc += 4;
            a += 4;
        }
    }

    // Pass 2: emit. Jumping to a block lands on its preamble, so
    // transfer targets map to `preamble(start)` = new_addr_of[start]-16.
    let target_map = |old: u32| -> Option<u32> {
        block_of_leader.get(&old)?;
        new_addr_of.get(&old).map(|&a| a - 16)
    };
    let mut new_text: Vec<u8> = Vec::with_capacity(image.text.len() + starts.len() * 16);
    let push = |w: u32, out: &mut Vec<u8>| out.extend_from_slice(&w.to_be_bytes());
    let mut counters = Vec::with_capacity(starts.len());
    for (b, &bstart) in starts.iter().enumerate() {
        let bend = starts
            .get(b + 1)
            .copied()
            .unwrap_or(text + 4 * n_words as u32);
        let counter_addr = counters_base + 4 * b as u32;
        counters.push(BlockCounter {
            orig_start: bstart,
            counter_addr,
        });
        let lo = (counter_addr & 0xffff) as i32;
        let lo = if lo >= 0x8000 { lo - 0x10000 } else { lo };
        let hi = counter_addr.wrapping_sub(lo as u32) >> 16;
        push((15 << 26) | (26 << 16) | (hi & 0xffff), &mut new_text); // lui $k0
        push(
            (35 << 26) | (26 << 21) | (27 << 16) | (lo as u32 & 0xffff),
            &mut new_text,
        ); // lw $k1
        push((9 << 26) | (27 << 21) | (27 << 16) | 1, &mut new_text); // addiu $k1,$k1,1
        push(
            (43 << 26) | (26 << 21) | (27 << 16) | (lo as u32 & 0xffff),
            &mut new_text,
        ); // sw $k1

        let mut a = bstart;
        while a < bend {
            let w = words[((a - text) / 4) as usize];
            let here = new_addr_of[&a];
            let patched = match ops.kind(w, a) {
                InsnKind::Branch { target } | InsnKind::Jump { target, links: _ }
                    if image.in_text(target) =>
                {
                    let nt = target_map(target).ok_or_else(|| {
                        EelError::Internal(format!("transfer target {target:#x} is not a leader"))
                    })?;
                    if w >> 26 <= 3 && w >> 26 >= 2 {
                        // j / jal: absolute target26.
                        (w & 0xfc00_0000) | ((nt >> 2) & 0x03ff_ffff)
                    } else {
                        // I-type branch: recompute the displacement.
                        let disp = (nt as i64 - (here as i64 + 4)) >> 2;
                        if !(-0x8000..0x8000).contains(&disp) {
                            return Err(EelError::LayoutOverflow(format!(
                                "instrumented branch at {here:#x} cannot reach {nt:#x}"
                            )));
                        }
                        (w & 0xffff_0000) | (disp as u32 & 0xffff)
                    }
                }
                _ => w,
            };
            push(patched, &mut new_text);
            a += 4;
        }
    }

    let mut out = image.clone();
    out.text = new_text;
    out.entry = target_map(image.entry)
        .ok_or_else(|| EelError::Internal("entry point is not a block leader".into()))?;
    out.data.extend(std::iter::repeat_n(0u8, pad));
    out.data.extend(std::iter::repeat_n(0u8, 4 * starts.len()));
    for s in &mut out.symbols {
        if s.kind == SymbolKind::Routine && image.in_text(s.value) {
            if let Some(nt) = target_map(s.value) {
                s.value = nt;
            }
        }
    }
    out.symbols.push(Symbol::object(
        "__eel_counters",
        counters_base,
        4 * starts.len() as u32,
    ));
    out.validate()?;
    eel_obs::counter!("core.machine.mips_blocks_instrumented").add(starts.len() as u64);
    Ok((out, counters))
}

/// Convenience dispatch used by the service's generic ops: `true` when
/// the image's machine is served by this module rather than the SPARC
/// [`crate::Executable`] pipeline.
pub fn uses_generic_pipeline(machine: Machine) -> bool {
    machine != Machine::Sparc
}

/// The machine-generic ops table for an image (shorthand used by tools).
pub fn ops_for(image: &Image) -> &'static dyn MachineOps {
    machine_ops(image.machine)
}
