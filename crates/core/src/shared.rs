//! Shareable analysis artifacts.
//!
//! EEL as the paper describes it is a per-process library: one
//! [`crate::Executable`] owns its image, and every analysis mutates that owner.
//! A long-running service (eel-serve) instead wants the expensive,
//! deterministic artifacts — the loaded image and §3.1's routine
//! discovery — computed once, then shared read-only across many
//! concurrent requests. [`Analysis`] is that artifact: immutable, `Send +
//! Sync`, cheap to fan out behind an [`Arc`], and convertible back into a
//! private editable executable with [`crate::Executable::from_analysis`].

use crate::error::EelError;
use crate::executable::{discover_routines, RoutineId};
use crate::instr::InstructionPool;
use crate::routine::Routine;
use eel_exe::Image;
use std::sync::Arc;

/// The immutable result of loading an image and running §3.1's routine
/// discovery, packaged for sharing across threads and cache entries.
///
/// ```
/// use eel_core::{Analysis, Executable};
/// use std::sync::Arc;
///
/// let image = eel_cc::compile_str(
///     "fn main() { return 7; }",
///     &eel_cc::Options::default(),
/// )?;
/// let analysis = Arc::new(Analysis::compute(Arc::new(image))?);
/// // Two independent, concurrently usable executables; neither re-parses
/// // the image or re-runs discovery.
/// let a = Executable::from_analysis(&analysis);
/// let b = Executable::from_analysis(&analysis);
/// assert_eq!(a.routines().len(), b.routines().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Analysis {
    image: Arc<Image>,
    routines: Vec<Routine>,
    hidden: Vec<RoutineId>,
}

impl Analysis {
    /// Validates the image and runs the §3.1 refinement once.
    ///
    /// # Errors
    ///
    /// [`EelError::BadImage`] when validation or discovery fails.
    pub fn compute(image: Arc<Image>) -> Result<Analysis, EelError> {
        let _obs = eel_obs::span("core.analysis.compute");
        image.validate()?;
        let mut pool = InstructionPool::new();
        let discovery = discover_routines(&image, &mut pool)?;
        Ok(Analysis {
            image,
            routines: discovery.routines,
            hidden: discovery.hidden,
        })
    }

    /// The shared image.
    pub fn image(&self) -> &Arc<Image> {
        &self.image
    }

    /// The discovered routines, in discovery order (same indices as the
    /// [`RoutineId`]s a [`crate::Executable::from_analysis`] hands out).
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// The hidden routines awaiting the Figure 1 drain loop.
    pub(crate) fn hidden_queue(&self) -> &[RoutineId] {
        &self.hidden
    }

    /// Approximate resident size in bytes — the currency of eel-serve's
    /// LRU byte budget. Counts the image segments and the routine table;
    /// deliberately an estimate (names and allocator overhead are
    /// approximated, not measured).
    pub fn approx_bytes(&self) -> usize {
        let image = self.image.text.len()
            + self.image.data.len()
            + self
                .image
                .symbols
                .iter()
                .map(|s| std::mem::size_of_val(s) + s.name.len())
                .sum::<usize>();
        let routines = self
            .routines
            .iter()
            .map(|r| {
                std::mem::size_of_val(r)
                    + r.entries().len() * 4
                    + if r.has_symbol_name() {
                        r.name().len()
                    } else {
                        0
                    }
            })
            .sum::<usize>();
        std::mem::size_of::<Analysis>() + image + routines
    }
}
