//! Shareable analysis artifacts.
//!
//! EEL as the paper describes it is a per-process library: one
//! [`crate::Executable`] owns its image, and every analysis mutates that owner.
//! A long-running service (eel-serve) instead wants the expensive,
//! deterministic artifacts — the loaded image and §3.1's routine
//! discovery — computed once, then shared read-only across many
//! concurrent requests. [`Analysis`] is that artifact: immutable, `Send +
//! Sync`, cheap to fan out behind an [`Arc`], and convertible back into a
//! private editable executable with [`crate::Executable::from_analysis`].

use crate::error::EelError;
use crate::executable::{discover_routines, DiscoverySource, RoutineId};
use crate::fragment::routine_key;
use crate::instr::InstructionPool;
use crate::routine::Routine;
use eel_exe::Image;
use std::sync::Arc;

/// The immutable result of loading an image and running §3.1's routine
/// discovery, packaged for sharing across threads and cache entries.
///
/// ```
/// use eel_core::{Analysis, Executable};
/// use std::sync::Arc;
///
/// let image = eel_cc::compile_str(
///     "fn main() { return 7; }",
///     &eel_cc::Options::default(),
/// )?;
/// let analysis = Arc::new(Analysis::compute(Arc::new(image))?);
/// // Two independent, concurrently usable executables; neither re-parses
/// // the image or re-runs discovery.
/// let a = Executable::from_analysis(&analysis);
/// let b = Executable::from_analysis(&analysis);
/// assert_eq!(a.routines().len(), b.routines().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Analysis {
    image: Arc<Image>,
    routines: Vec<Routine>,
    hidden: Vec<RoutineId>,
    /// Distinct machine words seen by discovery's interning pool,
    /// recorded so [`Analysis::approx_bytes`] can charge for the
    /// instruction objects every consumer re-interns.
    distinct_words: usize,
    /// Per-routine content keys ([`crate::routine_key`]), in discovery
    /// order — the identities the serve-side fragment tier caches under.
    routine_keys: Vec<u64>,
    /// Where the routine set came from (symbols vs. inference).
    discovery: DiscoverySource,
}

impl Analysis {
    /// Validates the image and runs the §3.1 refinement once.
    ///
    /// # Errors
    ///
    /// [`EelError::BadImage`] when validation or discovery fails.
    pub fn compute(image: Arc<Image>) -> Result<Analysis, EelError> {
        let _obs = eel_obs::span("core.analysis.compute");
        image.validate()?;
        let mut pool = InstructionPool::new();
        let discovery = discover_routines(&image, &mut pool, true)?;
        let routine_keys = discovery
            .routines
            .iter()
            .map(|r| routine_key(&image, r))
            .collect();
        Ok(Analysis {
            image,
            routines: discovery.routines,
            hidden: discovery.hidden,
            distinct_words: pool.len(),
            routine_keys,
            discovery: discovery.source,
        })
    }

    /// Where the routine set came from: the symbol table, or (for a
    /// symbol-less image) `eel-strip`'s inference rules. Serve-side ops
    /// report this as `discovery: inferred` so clients of a stripped
    /// image know the routine names are synthetic.
    pub fn discovery(&self) -> DiscoverySource {
        self.discovery
    }

    /// Distinct machine words in the text segment, as counted by
    /// discovery's interning pool (the paper's one-object-per-word
    /// sharing, §3.4).
    pub fn distinct_words(&self) -> usize {
        self.distinct_words
    }

    /// The machine the image targets (the WEF header tag). Serve-side
    /// dispatch — which op implementations run, which cache keys are
    /// valid — keys on this.
    pub fn machine(&self) -> eel_exe::Machine {
        self.image.machine
    }

    /// The shared image.
    pub fn image(&self) -> &Arc<Image> {
        &self.image
    }

    /// The discovered routines, in discovery order (same indices as the
    /// [`RoutineId`]s a [`crate::Executable::from_analysis`] hands out).
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// The hidden routines awaiting the Figure 1 drain loop.
    pub(crate) fn hidden_queue(&self) -> &[RoutineId] {
        &self.hidden
    }

    /// Per-routine content keys, in discovery order (same indices as
    /// [`Analysis::routines`]). These are what the eel-serve fragment
    /// tier caches per-routine artifacts under.
    pub fn routine_keys(&self) -> &[u64] {
        &self.routine_keys
    }

    /// Approximate resident size in bytes — the currency of eel-serve's
    /// LRU byte budget. Counts the image segments, the symbol and routine
    /// tables (every routine name, synthetic ones included, since every
    /// consumer materializes them), per-heap-block allocator overhead,
    /// and one interned instruction object per distinct machine word
    /// (each [`crate::Executable::from_analysis`] re-interns the text
    /// while serving this analysis). Calibrated against the measured
    /// ~1.7–1.9× text-size retention from the cache-budget experiments;
    /// deliberately still an estimate.
    pub fn approx_bytes(&self) -> usize {
        // Per-heap-block bookkeeping: malloc header plus size-class
        // rounding. Undercounting this was the bulk of the old
        // estimate's gap to measured retention.
        const ALLOC_OVERHEAD: usize = 16;
        // An interned instruction: the `Rc` header (strong + weak
        // counts), the decoded `Insn`, and the pool's map entry
        // (key + handle) with its share of bucket slack.
        const INTERNED_WORD: usize = 16
            + std::mem::size_of::<eel_isa::Insn>()
            + std::mem::size_of::<(u32, usize)>()
            + ALLOC_OVERHEAD;
        let image = self.image.text.len()
            + self.image.data.len()
            + self
                .image
                .symbols
                .iter()
                .map(|s| std::mem::size_of_val(s) + s.name.len() + ALLOC_OVERHEAD)
                .sum::<usize>();
        let routines = self
            .routines
            .iter()
            .map(|r| {
                std::mem::size_of_val(r)
                    + std::mem::size_of_val(r.entries())
                    + ALLOC_OVERHEAD
                    + r.name().len()
                    + ALLOC_OVERHEAD
            })
            .sum::<usize>();
        let interned = self.distinct_words * INTERNED_WORD;
        // The per-routine content keys the fragment tier shares with
        // whole-image entries: one u64 per routine plus the Vec's own
        // heap block.
        let fragment_keys = self.routine_keys.len() * std::mem::size_of::<u64>() + ALLOC_OVERHEAD;
        std::mem::size_of::<Analysis>()
            + image
            + routines
            + self.hidden.len() * std::mem::size_of::<RoutineId>()
            + interned
            + fragment_keys
    }
}
