//! The EEL instruction abstraction (paper §3.4).
//!
//! An [`Instruction`] is a machine-independent view of one machine
//! instruction: its category, its effect on registers, its memory width.
//! To reproduce the paper's space optimization — *"EEL allocates only one
//! instruction to represent all instances of a particular machine
//! instruction. Typically, this optimization reduces the number of
//! allocated EEL instructions by a factor of four"* — instructions are
//! interned in an [`InstructionPool`] keyed by the raw word, and
//! [`AllocStats`] records the sharing factor (experiment E-OBJ).

use eel_isa::{Category, Insn, Reg, RegSet};
use std::collections::HashMap;
use std::rc::Rc;

/// A shared, immutable EEL instruction object.
///
/// Cheap to clone (`Rc`); all inquiries delegate to the underlying
/// [`eel_isa::Insn`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instruction {
    inner: Rc<Insn>,
}

impl Instruction {
    /// The decoded machine instruction.
    pub fn insn(&self) -> Insn {
        *self.inner
    }

    /// The raw 32-bit word.
    pub fn word(&self) -> u32 {
        self.inner.word
    }

    /// Machine-independent category (§3.4).
    pub fn category(&self) -> Category {
        self.inner.category()
    }

    /// Registers read.
    pub fn reads(&self) -> RegSet {
        self.inner.reads()
    }

    /// Registers written.
    pub fn writes(&self) -> RegSet {
        self.inner.writes()
    }

    /// Registers feeding an address computation (the slice seed set).
    pub fn address_reads(&self) -> RegSet {
        self.inner.address_reads()
    }

    /// Reads floating-point state? (Slicing refuses to trace FP.)
    pub fn reads_fp(&self) -> bool {
        self.inner.reads_fp()
    }

    /// Memory access width in bytes, if a load/store.
    pub fn mem_width(&self) -> Option<u32> {
        self.inner.mem_width()
    }

    /// Does this instruction have a delay slot?
    pub fn is_delayed(&self) -> bool {
        self.inner.is_delayed()
    }

    /// Two handles to the same pooled object?
    pub fn same_object(&self, other: &Instruction) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Object-allocation accounting for experiment E-OBJ (§5: 317,494 objects
/// allocated; instruction sharing cuts instruction objects ~4×).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Distinct instruction objects actually allocated.
    pub instruction_objects: u32,
    /// Instruction sites that requested an object (allocated or shared).
    pub instruction_requests: u32,
    /// Pool lookups that were satisfied by sharing.
    pub shared_hits: u32,
}

impl AllocStats {
    /// Requests ÷ objects: the paper reports ~4.
    pub fn sharing_factor(&self) -> f64 {
        if self.instruction_objects == 0 {
            0.0
        } else {
            self.instruction_requests as f64 / self.instruction_objects as f64
        }
    }
}

/// Interning pool: one [`Instruction`] per distinct machine word.
#[derive(Debug, Default)]
pub struct InstructionPool {
    map: HashMap<u32, Instruction>,
    stats: AllocStats,
}

impl InstructionPool {
    /// Creates an empty pool.
    pub fn new() -> InstructionPool {
        InstructionPool::default()
    }

    /// Returns the shared instruction for a raw word, decoding and
    /// allocating only on first sight.
    pub fn intern(&mut self, word: u32) -> Instruction {
        self.stats.instruction_requests += 1;
        if let Some(i) = self.map.get(&word) {
            self.stats.shared_hits += 1;
            return i.clone();
        }
        self.stats.instruction_objects += 1;
        eel_obs::counter!("core.insn.interned").incr();
        let i = Instruction {
            inner: Rc::new(eel_isa::decode(word)),
        };
        self.map.insert(word, i.clone());
        i
    }

    /// Allocation statistics so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Number of distinct instructions seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Rewrites the registers of an instruction according to `map` (used by
/// snippet register allocation, §3.5). Every GPR field of the instruction
/// is looked up in `map`; unmapped registers pass through.
pub(crate) fn substitute_regs(insn: Insn, map: &HashMap<Reg, Reg>) -> Insn {
    use eel_isa::{Op, Src2};
    let m = |r: Reg| *map.get(&r).unwrap_or(&r);
    let ms = |s: Src2| match s {
        Src2::Reg(r) => Src2::Reg(m(r)),
        imm => imm,
    };
    let op = match insn.op {
        Op::Sethi { rd, imm22 } => Op::Sethi { rd: m(rd), imm22 },
        Op::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        } => Op::Alu {
            op,
            cc,
            rd: m(rd),
            rs1: m(rs1),
            src2: ms(src2),
        },
        Op::Jmpl { rd, rs1, src2 } => Op::Jmpl {
            rd: m(rd),
            rs1: m(rs1),
            src2: ms(src2),
        },
        Op::Load {
            width,
            signed,
            rd,
            rs1,
            src2,
            fp,
        } => Op::Load {
            width,
            signed,
            rd: m(rd),
            rs1: m(rs1),
            src2: ms(src2),
            fp,
        },
        Op::Store {
            width,
            rd,
            rs1,
            src2,
            fp,
        } => Op::Store {
            width,
            rd: m(rd),
            rs1: m(rs1),
            src2: ms(src2),
            fp,
        },
        Op::Trap { cond, rs1, src2 } => Op::Trap {
            cond,
            rs1: m(rs1),
            src2: ms(src2),
        },
        other @ (Op::Branch { .. } | Op::Call { .. } | Op::Unimp { .. } | Op::Invalid) => other,
    };
    Insn {
        word: eel_isa::encode(&op),
        op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_isa::{Builder, Src2};

    #[test]
    fn interning_shares_identical_words() {
        let mut pool = InstructionPool::new();
        let a = pool.intern(Builder::nop().word);
        let b = pool.intern(Builder::nop().word);
        let c = pool.intern(Builder::mov(Reg(9), Src2::Imm(1)).word);
        assert!(a.same_object(&b));
        assert!(!a.same_object(&c));
        assert_eq!(pool.len(), 2);
        let stats = pool.stats();
        assert_eq!(stats.instruction_requests, 3);
        assert_eq!(stats.instruction_objects, 2);
        assert_eq!(stats.shared_hits, 1);
        assert!((stats.sharing_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn instruction_inquiries_delegate() {
        let mut pool = InstructionPool::new();
        let i = pool.intern(Builder::ld(Reg(8), Reg::SP, Src2::Imm(4)).word);
        assert_eq!(i.category(), Category::Load);
        assert_eq!(i.mem_width(), Some(4));
        assert!(i.reads().contains(Reg::SP));
        assert!(i.writes().contains(Reg(8)));
        assert!(!i.is_delayed());
    }

    #[test]
    fn substitute_rewrites_all_fields() {
        let map: HashMap<Reg, Reg> = [(Reg(6), Reg(20)), (Reg(7), Reg(21))].into_iter().collect();
        // The Figure 5 snippet body: counter increment through %g6/%g7.
        let body = [
            Builder::sethi_hi(Reg(6), 0x4000),
            Builder::ld(Reg(7), Reg(6), Src2::Imm(0)),
            Builder::add(Reg(7), Reg(7), Src2::Imm(1)),
            Builder::st(Reg(7), Reg(6), Src2::Imm(0)),
        ];
        let rewritten: Vec<_> = body.iter().map(|i| substitute_regs(*i, &map)).collect();
        assert_eq!(rewritten[0].to_string(), "sethi 0x10, %l4");
        assert_eq!(rewritten[1].to_string(), "ld [%l4], %l5");
        assert_eq!(rewritten[2].to_string(), "add %l5, 1, %l5");
        assert_eq!(rewritten[3].to_string(), "st %l5, [%l4]");
        // Unmapped registers pass through.
        let same = substitute_regs(Builder::mov(Reg(9), Src2::Imm(3)), &map);
        assert_eq!(same.to_string(), "mov 3, %o1");
    }

    #[test]
    fn substitute_preserves_branches() {
        let map: HashMap<Reg, Reg> = [(Reg(6), Reg(20))].into_iter().collect();
        let b = Builder::ba(4);
        assert_eq!(substitute_regs(b, &map), b);
    }
}
