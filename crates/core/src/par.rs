//! Std-only scoped-thread fan-out for per-routine analysis.
//!
//! EEL's whole-image passes are embarrassingly parallel at the routine
//! level: [`crate::cfg::build_cfg`] is a pure function of the image and
//! one routine's extent/entry set, so a multi-routine image can build
//! every CFG concurrently. This module is the kernel those passes share:
//! a work queue of item indices drained by scoped worker threads (idle
//! workers steal the next index with one atomic `fetch_add`), with the
//! results stitched back **in item order** so callers see exactly the
//! sequence a sequential loop would have produced.
//!
//! Everything is `std` — no rayon, no channels: `std::thread::scope`
//! plus one `AtomicUsize`. Worker panics propagate to the caller, the
//! same as a panic in the equivalent sequential loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means one per available core,
/// anything else is taken literally. The result is never zero.
pub fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Computes `f(0), f(1), …, f(n-1)` on up to `threads` scoped worker
/// threads (0 = one per core) and returns the results **in index
/// order** — byte-for-byte the vector the sequential loop
/// `(0..n).map(f).collect()` yields, because `f` must be a pure
/// function of its index.
///
/// Scheduling is a shared index queue: each worker claims the next
/// unclaimed index with an atomic increment, so a worker stuck on one
/// expensive item (a big routine) never blocks the others from draining
/// the tail. With `threads <= 1` or `n <= 1` no threads are spawned and
/// `f` runs inline.
///
/// # Panics
///
/// Propagates a panic from `f`, like the sequential loop would.
pub fn fan_out_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    });
    // Stitch in item order: the queue hands out indices in order but
    // workers finish out of order.
    results.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(results.len(), n);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_order() {
        for threads in [0, 1, 2, 7] {
            let got = fan_out_indexed(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(fan_out_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_items_still_stitch_in_order() {
        // Make early indices the slow ones so late indices finish first.
        let got = fan_out_indexed(8, 4, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
