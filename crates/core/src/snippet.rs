//! Code snippets (paper §3.5, Figures 2 and 5).
//!
//! A snippet encapsulates foreign machine code to be added to an
//! executable. The tool supplies the instructions plus, optionally:
//!
//! * a set of registers used in the body that EEL should replace with
//!   *scavenged* dead registers at the insertion point (spill-wrapping
//!   them to the stack when no dead register exists),
//! * a set of registers that must never be allocated, and
//! * a call-back invoked after register allocation, with the final
//!   instructions, their placement address, and the assignment — used for
//!   backpatching and displacement fix-ups, exactly as in the paper.
//!
//! Condition codes are handled like Blizzard's optimization (§5): if the
//! body writes `icc` while `icc` is live at the insertion point, the body
//! is wrapped in `rd %psr` / `wr %psr` using one extra scavenged register;
//! when `icc` is dead the wrap is skipped (the "faster test sequence").

use crate::error::EelError;
use crate::instr::substitute_regs;
use eel_isa::{Builder, Insn, Op, Reg, RegSet, Src2};
use std::collections::HashMap;
use std::fmt;

/// The register assignment a snippet received at placement, passed to its
/// call-back.
#[derive(Debug, Clone, Default)]
pub struct RegAssignment {
    /// Requested register → allocated register.
    pub map: HashMap<Reg, Reg>,
    /// Registers that had to be spill-wrapped to the stack because no
    /// dead register was available.
    pub spilled: Vec<Reg>,
    /// Whether the condition codes were saved/restored around the body.
    pub cc_saved: bool,
}

/// Call-back type: `(instructions, placement_address, assignment)`.
/// `Send` because CFGs (which carry pending snippet edits) cross thread
/// boundaries in the per-routine parallel analysis kernel
/// ([`crate::Executable::build_all_cfgs`]).
pub type Callback = Box<dyn FnMut(&mut [Insn], u32, &RegAssignment) + Send>;

/// Result of materializing a snippet: the placement-ready instructions,
/// the register assignment, and re-indexed run-time calls.
pub(crate) type Materialized = (Vec<Insn>, RegAssignment, Vec<(usize, String)>);

/// Foreign code to insert into an executable.
pub struct Snippet {
    body: Vec<Insn>,
    scavenge: Vec<Reg>,
    forbidden: RegSet,
    calls: Vec<(usize, String)>,
    callback: Option<Callback>,
    force_spill: bool,
}

impl fmt::Debug for Snippet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snippet")
            .field("body", &self.body)
            .field("scavenge", &self.scavenge)
            .field("forbidden", &self.forbidden)
            .field("calls", &self.calls)
            .field("callback", &self.callback.is_some())
            .finish()
    }
}

/// Registers never scavenged: the zero register, stack/frame pointers.
fn never_scavenged() -> RegSet {
    RegSet::of(&[Reg::G0, Reg::SP, Reg::FP])
}

/// Stack offset (below `%sp`) where snippet spills live; kept clear of the
/// run-time translator's scratch area at `%sp - 56 .. %sp - 96`.
const SPILL_BASE: i32 = -112;

impl Snippet {
    /// Creates a snippet from raw instructions.
    pub fn new(body: Vec<Insn>) -> Snippet {
        Snippet {
            body,
            scavenge: Vec::new(),
            forbidden: RegSet::new(),
            calls: Vec::new(),
            callback: None,
            force_spill: false,
        }
    }

    /// Assembles a snippet body from assembly text (a position-relative
    /// fragment; labels allowed, data directives rejected).
    ///
    /// # Errors
    ///
    /// Returns [`EelError::Internal`] wrapping the assembler diagnostic.
    pub fn from_asm(src: &str) -> Result<Snippet, EelError> {
        let insns = eel_asm::assemble_fragment(src, 0)
            .map_err(|e| EelError::Internal(format!("snippet assembly: {e}")))?;
        Ok(Snippet::new(insns))
    }

    /// Declares registers used in the body that EEL should replace with
    /// scavenged dead registers (the paper's first register set).
    pub fn with_scavenged(mut self, regs: &[Reg]) -> Snippet {
        self.scavenge = regs.to_vec();
        self
    }

    /// Declares registers that must not be used even if free (the paper's
    /// second register set).
    pub fn with_forbidden(mut self, regs: &[Reg]) -> Snippet {
        self.forbidden = RegSet::of(regs);
        self
    }

    /// Attaches the placement call-back.
    pub fn with_callback(mut self, cb: Callback) -> Snippet {
        self.callback = Some(cb);
        self
    }

    /// Disables register scavenging: every requested register is
    /// spill-wrapped as if no dead register existed. This exists for the
    /// scavenging ablation (what does the liveness analysis buy?).
    pub fn with_forced_spill(mut self) -> Snippet {
        self.force_spill = true;
        self
    }

    /// Whether a placement call-back is attached. Call-backs are
    /// arbitrary closures, so layouts holding one cannot be serialized
    /// into analysis fragments (`crate::fragment`).
    pub(crate) fn has_callback(&self) -> bool {
        self.callback.is_some()
    }

    /// Marks instruction `idx` as a call to the named run-time routine
    /// (added via [`crate::Executable::add_runtime_routine`]); the editor
    /// patches its displacement at final placement.
    pub fn with_call(mut self, idx: usize, routine: &str) -> Snippet {
        self.calls.push((idx, routine.to_string()));
        self
    }

    /// The body instructions as currently specified.
    pub fn body(&self) -> &[Insn] {
        &self.body
    }

    /// Number of instructions in the (unmaterialized) body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Patches the `sethi` immediate of body instruction `idx` to the
    /// upper bits of `value` — the paper's `SET_SETHI_HI` (Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if instruction `idx` is not a `sethi`.
    pub fn set_sethi_hi(&mut self, idx: usize, value: u32) {
        match self.body[idx].op {
            Op::Sethi { rd, .. } => {
                self.body[idx] = Builder::sethi_hi(rd, value);
            }
            other => panic!("set_sethi_hi on non-sethi {other:?}"),
        }
    }

    /// Patches the 13-bit immediate of body instruction `idx` to
    /// `%lo(value)` — the paper's `SET_SETHI_LOW` (Figure 2). Works on any
    /// immediate-form ALU/load/store instruction.
    ///
    /// # Panics
    ///
    /// Panics if instruction `idx` has no immediate operand.
    pub fn set_sethi_low(&mut self, idx: usize, value: u32) {
        let lo = Src2::Imm(eel_isa::lo10(value) as i32);
        let op = match self.body[idx].op {
            Op::Alu {
                op,
                cc,
                rd,
                rs1,
                src2: Src2::Imm(_),
            } => Op::Alu {
                op,
                cc,
                rd,
                rs1,
                src2: lo,
            },
            Op::Load {
                width,
                signed,
                rd,
                rs1,
                src2: Src2::Imm(_),
                fp,
            } => Op::Load {
                width,
                signed,
                rd,
                rs1,
                src2: lo,
                fp,
            },
            Op::Store {
                width,
                rd,
                rs1,
                src2: Src2::Imm(_),
                fp,
            } => Op::Store {
                width,
                rd,
                rs1,
                src2: lo,
                fp,
            },
            other => panic!("set_sethi_low on immediate-less {other:?}"),
        };
        self.body[idx] = Insn {
            word: eel_isa::encode(&op),
            op,
        };
    }

    /// The canonical profile-counter snippet (Figure 5): increments the
    /// 32-bit counter at `counter_addr`, using two scavenged registers.
    pub fn counter_increment(counter_addr: u32) -> Snippet {
        let hi = Builder::sethi_hi(Reg(6), counter_addr);
        let lo = Src2::Imm(eel_isa::lo10(counter_addr) as i32);
        let body = vec![
            hi,
            Builder::ld(Reg(7), Reg(6), lo),
            Builder::add(Reg(7), Reg(7), Src2::Imm(1)),
            Builder::st(Reg(7), Reg(6), lo),
        ];
        Snippet::new(body).with_scavenged(&[Reg(6), Reg(7)])
    }

    /// Materializes the snippet at a point where `live` registers are
    /// live: allocates scavenged registers, wraps spills and (if needed)
    /// condition-code save/restore, and returns the placement-ready
    /// instructions plus the assignment and any run-time calls
    /// (re-indexed into the returned vector).
    ///
    /// # Errors
    ///
    /// [`EelError::RegisterPressure`] when allocation is impossible even
    /// with spilling.
    pub(crate) fn materialize(&mut self, live: RegSet) -> Result<Materialized, EelError> {
        // Fixed registers: referenced by the body but not up for
        // reallocation; the allocator must avoid handing them out.
        let mut fixed = RegSet::new();
        for i in &self.body {
            fixed = fixed.union(i.reads()).union(i.writes());
        }
        for r in &self.scavenge {
            fixed.remove(*r);
        }

        let body_writes_cc = self.body.iter().any(|i| i.writes().contains(Reg::ICC));
        let need_cc_save = body_writes_cc && live.contains(Reg::ICC);

        let unavailable = live
            .union(self.forbidden)
            .union(fixed)
            .union(never_scavenged());
        // Preference order: the classic scratch registers first (%g6/%g7,
        // as qpt scavenged), then locals, remaining globals, out- and
        // in-registers; link registers last.
        const PREFERENCE: [u8; 29] = [
            6, 7, 23, 22, 21, 20, 19, 18, 17, 16, // %g6 %g7 %l7..%l0
            5, 4, 3, 2, 1, // %g5..%g1
            13, 12, 11, 10, 9, 8, // %o5..%o0
            29, 28, 27, 26, 25, 24, // %i5..%i0
            31, 15, // %i7 %o7
        ];
        let mut pool: Vec<Reg> = PREFERENCE
            .iter()
            .map(|&i| Reg(i))
            .filter(|r| !unavailable.contains(*r))
            .collect();
        pool.reverse(); // pop() takes from the front of the preference
        if self.force_spill {
            pool.clear();
        }

        let mut assignment = RegAssignment::default();
        let mut spill_seq: Vec<(Reg, i32)> = Vec::new();
        let mut spill_slot = SPILL_BASE;
        for &want in &self.scavenge {
            if let Some(got) = pool.pop() {
                assignment.map.insert(want, got);
            } else {
                // No dead register: keep `want` but spill/restore it.
                if self.forbidden.contains(want) || never_scavenged().contains(want) {
                    return Err(EelError::RegisterPressure(format!(
                        "no register available for {want} and it may not be spilled"
                    )));
                }
                assignment.map.insert(want, want);
                assignment.spilled.push(want);
                spill_seq.push((want, spill_slot));
                spill_slot -= 8;
            }
        }

        let cc_temp = if need_cc_save {
            match pool.pop() {
                Some(r) => Some(r),
                None => {
                    // Spill a register to hold the saved PSR.
                    let candidates = RegSet::all_gprs()
                        .without(self.forbidden)
                        .without(fixed)
                        .without(never_scavenged())
                        .without(RegSet::of(
                            &assignment.map.values().copied().collect::<Vec<_>>(),
                        ));
                    let r = candidates.iter().next().ok_or_else(|| {
                        EelError::RegisterPressure("no register for PSR save".into())
                    })?;
                    assignment.spilled.push(r);
                    spill_seq.push((r, spill_slot));
                    Some(r)
                }
            }
        } else {
            None
        };
        assignment.cc_saved = cc_temp.is_some();

        // Assemble the final sequence: spills, cc save, body, cc restore,
        // fills.
        let mut out = Vec::new();
        for &(r, slot) in &spill_seq {
            out.push(Builder::st(r, Reg::SP, Src2::Imm(slot)));
        }
        if let Some(t) = cc_temp {
            out.push(Builder::alu(
                eel_isa::AluOp::Rdpsr,
                false,
                t,
                Reg::G0,
                Src2::Reg(Reg::G0),
            ));
        }
        let body_start = out.len();
        let mut calls = Vec::new();
        for (i, insn) in self.body.iter().enumerate() {
            let placed = substitute_regs(*insn, &assignment.map);
            if let Some((_, name)) = self.calls.iter().find(|(ci, _)| *ci == i) {
                calls.push((out.len(), name.clone()));
            }
            out.push(placed);
        }
        let _ = body_start;
        if let Some(t) = cc_temp {
            out.push(Builder::alu(
                eel_isa::AluOp::Wrpsr,
                false,
                Reg::G0,
                t,
                Src2::Reg(Reg::G0),
            ));
        }
        for &(r, slot) in spill_seq.iter().rev() {
            out.push(Builder::ld(r, Reg::SP, Src2::Imm(slot)));
        }
        Ok((out, assignment, calls))
    }

    /// Runs the call-back (if any) on the placed instructions. Called by
    /// the layout engine once the final address is known.
    pub(crate) fn run_callback(
        &mut self,
        insns: &mut [Insn],
        addr: u32,
        assignment: &RegAssignment,
    ) {
        if let Some(cb) = self.callback.as_mut() {
            cb(insns, addr, assignment);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_snippet_shape() {
        let s = Snippet::counter_increment(0x0040_1234);
        assert_eq!(s.len(), 4);
        assert_eq!(s.body()[2].to_string(), "add %g7, 1, %g7");
    }

    #[test]
    fn materialize_allocates_dead_registers() {
        let mut s = Snippet::counter_increment(0x0040_0000);
        // %g6/%g7 live → must be replaced by something else.
        let live = RegSet::of(&[Reg(6), Reg(7)]);
        let (insns, asg, _) = s.materialize(live).unwrap();
        assert_eq!(insns.len(), 4, "no spills needed");
        let g6_new = asg.map[&Reg(6)];
        let g7_new = asg.map[&Reg(7)];
        assert_ne!(g6_new, Reg(6));
        assert_ne!(g7_new, Reg(7));
        assert!(insns[1].reads().contains(g6_new));
        assert!(insns[1].writes().contains(g7_new));
        assert!(asg.spilled.is_empty());
    }

    #[test]
    fn materialize_spills_under_full_pressure() {
        let mut s = Snippet::counter_increment(0x0040_0000);
        // Everything live: allocation must spill.
        let (insns, asg, _) = s.materialize(RegSet::all_gprs()).unwrap();
        assert_eq!(asg.spilled.len(), 2);
        assert_eq!(insns.len(), 8, "2 spills + 4 body + 2 fills");
        assert!(insns[0].to_string().starts_with("st "));
        assert!(insns[7].to_string().starts_with("ld "));
    }

    #[test]
    fn forbidden_registers_never_allocated() {
        let mut forbidden: Vec<Reg> = RegSet::all_gprs().iter().collect();
        // Forbid everything except %l0/%l1.
        forbidden.retain(|r| *r != Reg(16) && *r != Reg(17));
        let mut s = Snippet::counter_increment(0x0040_0000).with_forbidden(&forbidden);
        let (_, asg, _) = s.materialize(RegSet::new()).unwrap();
        let allocated: Vec<Reg> = asg.map.values().copied().collect();
        assert!(allocated.contains(&Reg(16)) || allocated.contains(&Reg(17)));
        for r in allocated {
            assert!(!forbidden.contains(&r), "{r} was forbidden");
        }
    }

    #[test]
    fn cc_saved_only_when_live() {
        let body = vec![Builder::cmp(Reg(6), Src2::Imm(0))];
        let mut s = Snippet::new(body.clone()).with_scavenged(&[Reg(6)]);
        let (insns, asg, _) = s.materialize(RegSet::new()).unwrap();
        assert!(!asg.cc_saved, "icc dead: fast sequence");
        assert_eq!(insns.len(), 1);

        let mut s2 = Snippet::new(body).with_scavenged(&[Reg(6)]);
        let (insns2, asg2, _) = s2.materialize(RegSet::of(&[Reg::ICC])).unwrap();
        assert!(asg2.cc_saved, "icc live: wrapped sequence");
        assert_eq!(insns2.len(), 3);
        assert_eq!(insns2[0].to_string(), "rd %psr, %g7");
        assert!(insns2[2].to_string().contains("%psr"));
    }

    #[test]
    fn sethi_patching() {
        let mut s = Snippet::counter_increment(0);
        s.set_sethi_hi(0, 0x0040_0008);
        s.set_sethi_low(1, 0x0040_0008);
        s.set_sethi_low(3, 0x0040_0008);
        match s.body()[0].op {
            Op::Sethi { imm22, .. } => assert_eq!(imm22, 0x0040_0008 >> 10),
            other => panic!("{other:?}"),
        }
        match s.body()[1].op {
            Op::Load {
                src2: Src2::Imm(v), ..
            } => assert_eq!(v, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn from_asm_round_trip() {
        let s = Snippet::from_asm(
            "sethi 0x1, %g6\n ld [%lo(0x1) + %g6], %g7\n add %g7, 1, %g7\n st %g7, [%lo(0x1) + %g6]\n",
        )
        .unwrap();
        assert_eq!(s.len(), 4);
        assert!(Snippet::from_asm(".data\nx: .word 1\n").is_err());
    }

    #[test]
    fn psr_save_spills_when_pool_is_empty() {
        // Body clobbers the condition codes while icc is live AND every
        // register is live: the PSR temporary itself must be spilled.
        let body = vec![Builder::cmp(Reg(6), Src2::Imm(0))];
        let mut s = Snippet::new(body).with_scavenged(&[Reg(6)]);
        let live = RegSet::all_gprs().union(RegSet::of(&[Reg::ICC]));
        let (insns, asg, _) = s.materialize(live).unwrap();
        assert!(asg.cc_saved, "icc live must force a PSR save");
        assert_eq!(
            asg.spilled.len(),
            2,
            "the scavenge target and the PSR temp both spill: {asg:?}"
        );
        assert!(asg.spilled.contains(&Reg(6)));
        // st, st, rd %psr, body, wr %psr, ld, ld.
        assert_eq!(insns.len(), 7);
        assert!(insns[0].to_string().starts_with("st "));
        assert!(insns[1].to_string().starts_with("st "));
        assert_eq!(insns[2].to_string(), format!("rd %psr, {}", asg.spilled[1]));
        assert!(insns[4].to_string().contains("%psr"));
        assert!(insns[5].to_string().starts_with("ld "));
        assert!(insns[6].to_string().starts_with("ld "));
    }

    #[test]
    fn unspillable_scavenge_target_is_register_pressure() {
        // %sp may never be renamed or spilled; with the pool forced
        // empty the allocator has no way out.
        let mut s = Snippet::new(vec![Builder::nop()])
            .with_scavenged(&[Reg::SP])
            .with_forced_spill();
        match s.materialize(RegSet::new()) {
            Err(EelError::RegisterPressure(msg)) => assert!(msg.contains("may not be spilled")),
            other => panic!("expected RegisterPressure, got {other:?}"),
        }
        // Same for a register the tool itself forbade.
        let mut s = Snippet::new(vec![Builder::nop()])
            .with_scavenged(&[Reg(6)])
            .with_forbidden(&[Reg(6)])
            .with_forced_spill();
        assert!(matches!(
            s.materialize(RegSet::new()),
            Err(EelError::RegisterPressure(_))
        ));
    }

    #[test]
    fn callback_sees_spilled_assignment() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in_cb = Arc::clone(&ran);
        let mut s = Snippet::counter_increment(0x0040_0000).with_callback(Box::new(
            move |insns, addr, asg| {
                assert_eq!(addr, 0x3000);
                assert_eq!(asg.spilled.len(), 2, "full pressure spills both");
                assert_eq!(asg.map[&Reg(6)], Reg(6), "spilled regs keep their name");
                assert!(insns.len() >= 8);
                ran_in_cb.store(1, Ordering::SeqCst);
            },
        ));
        let (mut insns, asg, _) = s.materialize(RegSet::all_gprs()).unwrap();
        s.run_callback(&mut insns, 0x3000, &asg);
        assert_eq!(ran.load(Ordering::SeqCst), 1, "callback must run");
    }

    #[test]
    fn callback_receives_final_state() {
        let mut s = Snippet::new(vec![Builder::nop()]).with_callback(Box::new(|insns, addr, _| {
            assert_eq!(addr, 0x2000);
            insns[0] = Builder::mov(Reg(9), Src2::Imm(7));
        }));
        let (mut insns, asg, _) = s.materialize(RegSet::new()).unwrap();
        s.run_callback(&mut insns, 0x2000, &asg);
        assert_eq!(insns[0].to_string(), "mov 7, %o1");
    }
}
