//! # eel-core: the Executable Editing Library
//!
//! The Rust reproduction of **EEL** (Larus & Schnarr, *EEL:
//! Machine-Independent Executable Editing*, PLDI 1995): a library for
//! building tools that analyze and modify fully-linked executables without
//! source code or relocation information.
//!
//! The five abstractions from §3 of the paper map onto this crate as:
//!
//! | Paper | Here |
//! |---|---|
//! | `executable` | [`Executable`] — open, [`Executable::read_contents`] (four-stage symbol-table refinement, hidden-routine discovery), write an edited executable |
//! | `routine` | [`Routine`] — name, extent, entry points |
//! | CFG | [`Cfg`] — delay-slot-normalized basic blocks and edges, uneditable marking, dominators / loops / liveness / slicing, dispatch-table recovery |
//! | instruction | [`Instruction`] — category + effect inquiries, one shared object per distinct machine word |
//! | snippet | [`Snippet`] — foreign code with scavenged register allocation, spill wrapping, and placement call-backs |
//!
//! Editing is *batch*: a tool records edits against the original CFG
//! ([`Cfg::delete_insn`], [`Cfg::add_code_before`], [`Cfg::add_code_along`],
//! ...), then [`Executable::install_edits`] produces the edited routine and
//! [`Executable::write_edited`] lays out the new executable, adjusting every
//! displacement, rewriting dispatch tables, and falling back to run-time
//! address translation for unanalyzable indirect jumps.
//!
//! ## Example: count every routine entry
//!
//! ```
//! use eel_core::{Executable, Snippet};
//!
//! let image = eel_cc::compile_str(
//!     "fn main() { var i; var t = 0;
//!        for (i = 0; i < 3; i = i + 1) { t = t + i; } return t; }",
//!     &eel_cc::Options::default(),
//! )?;
//! let mut exec = Executable::from_image(image)?;
//! exec.read_contents()?;
//!
//! let counters = exec.reserve_data(4 * 64); // a counter array
//! for id in exec.routine_ids() {
//!     let mut cfg = exec.build_cfg(id)?;
//!     let entry = cfg.entry_block();
//!     let snippet = Snippet::counter_increment(counters + 4 * id.index() as u32);
//!     cfg.add_code_at_block_start(entry, snippet)?;
//!     exec.install_edits(cfg)?;
//! }
//! let edited = exec.write_edited()?;
//! assert_eq!(eel_emu::run_image(&edited)?.exit_code, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod cfg;
mod error;
mod executable;
mod fragment;
mod generic;
mod instr;
mod layout;
mod machine;
pub mod par;
mod routine;
mod shared;
mod snippet;

pub use analysis::callgraph::{CallGraph, CallSite};
pub use analysis::dom::Dominators;
pub use analysis::jumptable::{JumpResolution, JumpTarget};
pub use analysis::live::Liveness;
pub use analysis::loops::{natural_loops, NaturalLoop};
pub use analysis::slice::{SliceMark, Slicer};
pub use cfg::{
    Block, BlockId, BlockKind, Cfg, CfgStats, DataRange, Edge, EdgeId, EdgeKind, Edit, EditPoint,
    InsnAt,
};
pub use error::EelError;
pub use executable::{CfgBatchItem, DiscoverySource, Executable, RoutineId};
pub use fragment::{decode_fragment, encode_fragment, routine_key, FragmentMeta};
pub use generic::{
    generic_cfg, generic_disasm, generic_liveness, instrument_block_counters, ops_for,
    uses_generic_pipeline, BlockCounter, GenericBlock, GenericCfg, GenericLiveness,
};
pub use instr::{AllocStats, Instruction, InstructionPool};
pub use machine::{machine_ops, InsnKind, MachineOps};
pub use routine::Routine;
pub use shared::Analysis;
pub use snippet::{Callback, RegAssignment, Snippet};
