//! Per-routine content-addressed analysis fragments.
//!
//! eel-serve's cache was image-at-a-time: every artifact keyed by the
//! hash of the whole WEF, so a one-routine change to a large image
//! recomputed everything. This module gives each [`Routine`] a stable
//! **content key** — FNV-1a over its byte extent plus the discovery
//! inputs (`CfgInputs`-shaped: extent length and start-relative entry
//! points) — so per-routine analysis artifacts ("fragments") can be
//! cached under `(routine_key, op)` and reused across near-duplicate
//! images.
//!
//! The key is deliberately **position-independent**: the same routine
//! bytes at a different image offset produce the same key. Reuse is
//! still position-*validated* — every fragment carries a
//! [`FragmentMeta`] prefix recording the absolute start it was rendered
//! at plus the discovery side effects (escape-target registrations,
//! trailing splits) its CFG build performed, and
//! [`crate::Executable::build_all_cfgs_probed`] honors a fragment only
//! when the start matches, *replaying* the recorded side effects in the
//! build's stead. A fragment that fails validation simply falls back to
//! a live build, so composed output stays byte-identical to a cold
//! recompute.
//!
//! The module also provides a compact binary (de)serialization of a
//! routine's [`RoutineLayout`] so an *instrumentation plan* (snippets
//! placed, registers scavenged, spill wrapping decided) can itself be a
//! fragment: a validated hit skips CFG construction, liveness, and
//! snippet materialization entirely and goes straight to the encode
//! pass of [`crate::Executable::write_edited`].

use crate::layout::{Item, PlacedSnippet, RoutineLayout, Tgt};
use crate::routine::Routine;
use crate::snippet::{RegAssignment, Snippet};
use eel_exe::Image;
use eel_isa::{Insn, Op, Reg};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// On-wire version of the fragment container (bump on layout change).
const FRAGMENT_VERSION: u8 = 1;
/// On-wire version of the serialized [`RoutineLayout`].
const LAYOUT_VERSION: u8 = 1;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u32(h: u64, v: u32) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The stable content key of a routine: FNV-1a over the image's machine
/// tag, the routine's byte extent, the extent length, and its entry
/// points relative to the routine start. Everything a CFG build
/// consumes — and nothing tied to the routine's absolute position or
/// name — goes in, so near-duplicate images agree on the keys of their
/// unchanged routines. The machine tag is load-bearing: byte-identical
/// text decodes to entirely different programs under different ISAs, so
/// a SPARC image and a MIPS image must never share fragment entries.
pub fn routine_key(image: &Image, routine: &Routine) -> u64 {
    let lo = routine.start.saturating_sub(image.text_addr) as usize;
    let hi = (routine.end.saturating_sub(image.text_addr) as usize).min(image.text.len());
    let bytes = image.text.get(lo..hi.max(lo)).unwrap_or(&[]);
    let mut h = fnv_bytes(FNV_OFFSET, &[image.machine.to_byte()]);
    h = fnv_bytes(h, bytes);
    h = fnv_u32(h, routine.end.wrapping_sub(routine.start));
    h = fnv_u32(h, routine.entries.len() as u32);
    for &e in &routine.entries {
        h = fnv_u32(h, e.wrapping_sub(routine.start));
    }
    eel_obs::counter!("core.routine_key.computed").add(1);
    eel_obs::counter!("core.routine_key.bytes_hashed").add(bytes.len() as u64);
    h
}

/// The validation-and-replay prefix every fragment carries: where the
/// routine sat when the fragment was rendered, and the discovery side
/// effects its CFG build performed — §3.1 stage-3 escape targets and
/// stage-4 trailing-split addresses. A probed build honors a fragment
/// only when the start still matches (rendered text embeds absolute
/// addresses); it then *replays* the recorded side effects, so skipping
/// the build leaves the routine table exactly as a live build would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentMeta {
    /// Absolute start address the fragment was rendered at.
    pub start: u32,
    /// Escape targets the routine's CFG build produced (union across
    /// trailing-split rebuild iterations; sorted, deduplicated).
    pub escapes: Vec<u32>,
    /// Trailing-unreachable split addresses the build performed, in
    /// order: each shrinks the routine to end there and appends a
    /// hidden routine covering the remainder.
    pub splits: Vec<u32>,
}

/// Wraps an op-specific payload in the versioned fragment container.
pub fn encode_fragment(meta: &FragmentMeta, payload: &[u8]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(13 + 4 * (meta.escapes.len() + meta.splits.len()) + payload.len());
    out.push(FRAGMENT_VERSION);
    out.extend_from_slice(&meta.start.to_be_bytes());
    out.extend_from_slice(&(meta.escapes.len() as u32).to_be_bytes());
    for &t in &meta.escapes {
        out.extend_from_slice(&t.to_be_bytes());
    }
    out.extend_from_slice(&(meta.splits.len() as u32).to_be_bytes());
    for &t in &meta.splits {
        out.extend_from_slice(&t.to_be_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// Splits a fragment into its validation prefix and op payload.
/// `None` for truncated bytes or an unknown version.
pub fn decode_fragment(bytes: &[u8]) -> Option<(FragmentMeta, &[u8])> {
    let mut c = Cur { b: bytes, at: 0 };
    if c.u8()? != FRAGMENT_VERSION {
        return None;
    }
    let start = c.u32()?;
    let n = c.u32()? as usize;
    if n > bytes.len() / 4 {
        return None;
    }
    let mut escapes = Vec::with_capacity(n);
    for _ in 0..n {
        escapes.push(c.u32()?);
    }
    let n = c.u32()? as usize;
    if n > bytes.len() / 4 {
        return None;
    }
    let mut splits = Vec::with_capacity(n);
    for _ in 0..n {
        splits.push(c.u32()?);
    }
    Some((
        FragmentMeta {
            start,
            escapes,
            splits,
        },
        &bytes[c.at..],
    ))
}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.b.get(self.at..end)?;
        self.at = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }
    fn done(&self) -> bool {
        self.at == self.b.len()
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Option<()> {
    let n = u16::try_from(s.len()).ok()?;
    put_u16(out, n);
    out.extend_from_slice(s.as_bytes());
    Some(())
}

fn get_str(c: &mut Cur<'_>) -> Option<String> {
    let n = c.u16()? as usize;
    String::from_utf8(c.take(n)?.to_vec()).ok()
}

fn put_tgt(out: &mut Vec<u8>, t: &Tgt) -> Option<()> {
    match t {
        Tgt::Local(l) => {
            out.push(0);
            put_u32(out, u32::try_from(*l).ok()?);
        }
        Tgt::Orig(a) => {
            out.push(1);
            put_u32(out, *a);
        }
        Tgt::Runtime(name) => {
            out.push(2);
            put_str(out, name)?;
        }
    }
    Some(())
}

fn get_tgt(c: &mut Cur<'_>) -> Option<Tgt> {
    match c.u8()? {
        0 => Some(Tgt::Local(c.u32()? as usize)),
        1 => Some(Tgt::Orig(c.u32()?)),
        2 => Some(Tgt::Runtime(get_str(c)?)),
        _ => None,
    }
}

fn put_opt(out: &mut Vec<u8>, o: &Option<u32>) {
    match o {
        Some(a) => {
            out.push(1);
            put_u32(out, *a);
        }
        None => out.push(0),
    }
}

fn get_opt(c: &mut Cur<'_>) -> Option<Option<u32>> {
    match c.u8()? {
        0 => Some(None),
        1 => Some(Some(c.u32()?)),
        _ => None,
    }
}

fn put_item(out: &mut Vec<u8>, item: &Item) -> Option<()> {
    match item {
        Item::Label(l) => {
            out.push(0);
            put_u32(out, u32::try_from(*l).ok()?);
        }
        Item::MapOrig(a) => {
            out.push(1);
            put_u32(out, *a);
        }
        Item::Orig { insn, addr } => {
            out.push(2);
            put_u32(out, insn.word);
            put_u32(out, *addr);
        }
        Item::New(insn) => {
            out.push(3);
            put_u32(out, insn.word);
        }
        Item::BranchTo {
            cond,
            annul,
            target,
            orig,
        } => {
            out.push(4);
            // The displacement is symbolic; store an encoded branch word
            // with disp 0 purely to round-trip (cond, annul). The encode
            // pass re-encodes with `fp: false` exactly as stored here.
            put_u32(
                out,
                eel_isa::encode(&Op::Branch {
                    cond: *cond,
                    annul: *annul,
                    disp22: 0,
                    fp: false,
                }),
            );
            put_tgt(out, target)?;
            put_opt(out, orig);
        }
        Item::CallTo { target, orig } => {
            out.push(5);
            put_tgt(out, target)?;
            put_opt(out, orig);
        }
        Item::SethiHiOf { rd, target, orig } => {
            out.push(6);
            out.push(rd.0);
            put_tgt(out, target)?;
            put_opt(out, orig);
        }
        Item::OrLoOf {
            rd,
            rs1,
            target,
            orig,
        } => {
            out.push(7);
            out.push(rd.0);
            out.push(rs1.0);
            put_tgt(out, target)?;
            put_opt(out, orig);
        }
        Item::TableWord { target, orig } => {
            out.push(8);
            put_tgt(out, target)?;
            put_opt(out, orig);
        }
        Item::RawWord { word, addr } => {
            out.push(9);
            put_u32(out, *word);
            put_u32(out, *addr);
        }
        Item::SnippetRef(i) => {
            out.push(10);
            put_u32(out, u32::try_from(*i).ok()?);
        }
    }
    Some(())
}

fn get_item(c: &mut Cur<'_>) -> Option<Item> {
    Some(match c.u8()? {
        0 => Item::Label(c.u32()? as usize),
        1 => Item::MapOrig(c.u32()?),
        2 => {
            let word = c.u32()?;
            Item::Orig {
                insn: Insn::from_word(word),
                addr: c.u32()?,
            }
        }
        3 => Item::New(Insn::from_word(c.u32()?)),
        4 => {
            let word = c.u32()?;
            let (cond, annul) = match eel_isa::decode(word).op {
                Op::Branch { cond, annul, .. } => (cond, annul),
                _ => return None,
            };
            Item::BranchTo {
                cond,
                annul,
                target: get_tgt(c)?,
                orig: get_opt(c)?,
            }
        }
        5 => Item::CallTo {
            target: get_tgt(c)?,
            orig: get_opt(c)?,
        },
        6 => Item::SethiHiOf {
            rd: Reg(c.u8()?),
            target: get_tgt(c)?,
            orig: get_opt(c)?,
        },
        7 => Item::OrLoOf {
            rd: Reg(c.u8()?),
            rs1: Reg(c.u8()?),
            target: get_tgt(c)?,
            orig: get_opt(c)?,
        },
        8 => Item::TableWord {
            target: get_tgt(c)?,
            orig: get_opt(c)?,
        },
        9 => {
            let word = c.u32()?;
            Item::RawWord {
                word,
                addr: c.u32()?,
            }
        }
        10 => Item::SnippetRef(c.u32()? as usize),
        _ => return None,
    })
}

fn put_placed(out: &mut Vec<u8>, p: &PlacedSnippet) -> Option<()> {
    put_u32(out, u32::try_from(p.insns.len()).ok()?);
    for i in &p.insns {
        put_u32(out, i.word);
    }
    // The register map is a HashMap; serialize sorted for determinism.
    let mut pairs: Vec<(u8, u8)> = p.assignment.map.iter().map(|(k, v)| (k.0, v.0)).collect();
    pairs.sort_unstable();
    put_u32(out, pairs.len() as u32);
    for (k, v) in pairs {
        out.push(k);
        out.push(v);
    }
    put_u32(out, p.assignment.spilled.len() as u32);
    for r in &p.assignment.spilled {
        out.push(r.0);
    }
    out.push(p.assignment.cc_saved as u8);
    put_u32(out, u32::try_from(p.calls.len()).ok()?);
    for (idx, name) in &p.calls {
        put_u32(out, u32::try_from(*idx).ok()?);
        put_str(out, name)?;
    }
    put_u32(out, u32::try_from(p.source).ok()?);
    Some(())
}

fn get_placed(c: &mut Cur<'_>) -> Option<PlacedSnippet> {
    let n = c.u32()? as usize;
    if n > c.b.len() / 4 {
        return None;
    }
    let mut insns = Vec::with_capacity(n);
    for _ in 0..n {
        insns.push(Insn::from_word(c.u32()?));
    }
    let n = c.u32()? as usize;
    let mut assignment = RegAssignment::default();
    for _ in 0..n {
        assignment.map.insert(Reg(c.u8()?), Reg(c.u8()?));
    }
    let n = c.u32()? as usize;
    for _ in 0..n {
        assignment.spilled.push(Reg(c.u8()?));
    }
    assignment.cc_saved = c.u8()? != 0;
    let n = c.u32()? as usize;
    let mut calls = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let idx = c.u32()? as usize;
        calls.push((idx, get_str(c)?));
    }
    Some(PlacedSnippet {
        insns,
        assignment,
        calls,
        source: c.u32()? as usize,
    })
}

/// Serializes a routine's layout — the instrumentation plan — into a
/// self-contained byte string. Returns `None` when any stored snippet
/// carries a placement call-back: call-backs are arbitrary closures and
/// cannot round-trip, so such layouts are simply not cacheable.
///
/// Runs of untouched original instructions — the bulk of an
/// instrumented routine — compress to an `OrigRun` record (tag 11:
/// start address + count) instead of one 9-byte record per
/// instruction. The words themselves are *not* stored: the decoder
/// reads them back out of its own image text, which is sound because a
/// run is only emitted for addresses inside `extent` whose image word
/// matches the item verbatim, and a fragment hit already guarantees
/// (key + start validation) that the consumer's extent bytes are
/// identical to the producer's. Anything outside the extent or
/// rewritten in place round-trips verbatim.
pub(crate) fn encode_layout(
    layout: &RoutineLayout,
    image: &Image,
    extent: (u32, u32),
) -> Option<Vec<u8>> {
    if layout.snippet_store.iter().any(Snippet::has_callback) {
        return None;
    }
    let (lo, hi) = extent;
    let in_run = |item: &Item| -> Option<u32> {
        match item {
            Item::Orig { insn, addr } if *addr >= lo && *addr < hi => {
                (image.word_at(*addr) == Some(insn.word)).then_some(*addr)
            }
            _ => None,
        }
    };
    let mut out = Vec::new();
    out.push(LAYOUT_VERSION);
    out.push(layout.needs_translator as u8);
    put_u32(&mut out, u32::try_from(layout.items.len()).ok()?);
    let mut i = 0;
    while i < layout.items.len() {
        if let Some(start) = in_run(&layout.items[i]) {
            let mut count: u32 = 1;
            while let Some(next) = layout.items.get(i + count as usize).and_then(&in_run) {
                if next != start + 4 * count {
                    break;
                }
                count += 1;
            }
            if count >= 2 {
                out.push(11);
                put_u32(&mut out, start);
                put_u32(&mut out, count);
                i += count as usize;
                continue;
            }
        }
        put_item(&mut out, &layout.items[i])?;
        i += 1;
    }
    put_u32(&mut out, u32::try_from(layout.snippets.len()).ok()?);
    for p in &layout.snippets {
        put_placed(&mut out, p)?;
    }
    // Stored snippets round-trip as empty, call-back-free placeholders:
    // the encode pass only consults them for `run_callback`, a no-op.
    put_u32(&mut out, u32::try_from(layout.snippet_store.len()).ok()?);
    Some(out)
}

/// Reconstructs a [`RoutineLayout`] serialized by [`encode_layout`].
/// The caller supplies the routine id the layout belongs to in *its*
/// executable (ids are stable across near-duplicate discoveries only
/// when the routine sets match, which key validation guarantees) and
/// the image whose text backs `OrigRun` records.
pub(crate) fn decode_layout(
    bytes: &[u8],
    id: crate::executable::RoutineId,
    image: &Image,
) -> Option<RoutineLayout> {
    let mut c = Cur { b: bytes, at: 0 };
    if c.u8()? != LAYOUT_VERSION {
        return None;
    }
    let needs_translator = c.u8()? != 0;
    let n = c.u32()? as usize;
    // Runs expand, so the item count may legitimately exceed the wire
    // length — but never the image text plus the wire length (snippet
    // refs and labels are wire records; originals come from the text).
    if n > bytes.len() + image.text.len() {
        return None;
    }
    let mut items = Vec::with_capacity(n);
    while items.len() < n {
        if c.b.get(c.at) == Some(&11) {
            c.at += 1;
            let start = c.u32()?;
            let count = c.u32()? as usize;
            if count < 2 || items.len() + count > n {
                return None;
            }
            for k in 0..count {
                let addr = start.checked_add(4 * k as u32)?;
                items.push(Item::Orig {
                    insn: Insn::from_word(image.word_at(addr)?),
                    addr,
                });
            }
        } else {
            items.push(get_item(&mut c)?);
        }
    }
    let n = c.u32()? as usize;
    if n > bytes.len() {
        return None;
    }
    let mut snippets = Vec::with_capacity(n);
    for _ in 0..n {
        snippets.push(get_placed(&mut c)?);
    }
    let n = c.u32()? as usize;
    if n > bytes.len() {
        return None;
    }
    let snippet_store = (0..n).map(|_| Snippet::new(Vec::new())).collect();
    if !c.done() {
        return None;
    }
    Some(RoutineLayout {
        routine: id,
        items,
        snippets,
        snippet_store,
        needs_translator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_with_text(text: Vec<u8>) -> Image {
        Image {
            entry: 0x0040_0000,
            text_addr: 0x0040_0000,
            text,
            data_addr: 0x0080_0000,
            data: Vec::new(),
            bss_size: 0,
            symbols: Vec::new(),
            machine: eel_exe::Machine::Sparc,
        }
    }

    fn routine(start: u32, end: u32, entries: Vec<u32>) -> Routine {
        Routine {
            name: Some("r".into()),
            start,
            end,
            entries,
            hidden: false,
            inferred: false,
        }
    }

    #[test]
    fn key_is_offset_independent() {
        // The same eight bytes at two different image offsets.
        let body: Vec<u8> = vec![0x01, 0x02, 0x03, 0x04, 0x9d, 0xe3, 0xbf, 0x90];
        let mut text = body.clone();
        text.extend_from_slice(&[0xaa; 16]);
        text.extend_from_slice(&body);
        let image = image_with_text(text);
        let a = routine(0x0040_0000, 0x0040_0008, vec![0x0040_0000]);
        let b = routine(0x0040_0018, 0x0040_0020, vec![0x0040_0018]);
        assert_eq!(
            routine_key(&image, &a),
            routine_key(&image, &b),
            "same bytes + same relative entries must key identically"
        );
        // ... but a different *relative* entry set must not.
        let c = routine(0x0040_0018, 0x0040_0020, vec![0x0040_0018, 0x0040_001c]);
        assert_ne!(routine_key(&image, &a), routine_key(&image, &c));
    }

    #[test]
    fn key_changes_on_single_byte_change() {
        let image = image_with_text(vec![0u8; 32]);
        let mut twin_text = vec![0u8; 32];
        twin_text[17] ^= 1;
        let twin = image_with_text(twin_text);
        let r = routine(0x0040_0010, 0x0040_0020, vec![0x0040_0010]);
        assert_ne!(routine_key(&image, &r), routine_key(&twin, &r));
        // A change *outside* the extent leaves the key alone.
        let before = routine(0x0040_0000, 0x0040_0010, vec![0x0040_0000]);
        assert_eq!(
            routine_key(&image, &before),
            routine_key(&twin, &before),
            "bytes outside the routine extent must not affect its key"
        );
    }

    #[test]
    fn fragment_container_round_trips_and_rejects_truncation() {
        let meta = FragmentMeta {
            start: 0x0040_1234,
            escapes: vec![0x0040_0010, 0x0040_0abc],
            splits: vec![0x0040_0ff0],
        };
        let payload = b"per-routine payload";
        let enc = encode_fragment(&meta, payload);
        let (got, body) = decode_fragment(&enc).expect("round trip");
        assert_eq!(got, meta);
        assert_eq!(body, payload);
        for cut in 0..enc.len().min(17) {
            let _ = decode_fragment(&enc[..cut]); // must not panic
        }
        assert!(decode_fragment(&enc[..8]).is_none());
        let mut bad = enc.clone();
        bad[0] = 99;
        assert!(decode_fragment(&bad).is_none(), "unknown version rejected");
    }
}
