//! The machine-dispatch seam.
//!
//! The paper's claim (§2) is that EEL's analyses are machine-independent:
//! everything ISA-specific sits behind a small description-derived layer.
//! [`MachineOps`] is that layer's interface in this reproduction — the
//! complete set of questions routine discovery, CFG construction,
//! liveness, disassembly, and eel-strip's prologue rule ask of a machine.
//! [`machine_ops`] dispatches on the WEF header's machine tag.
//!
//! Two implementations exist today:
//!
//! * [`Machine::Sparc`]: the hand-built `eel-isa` decoder (the seed
//!   backend, kept byte-for-byte compatible with the original pipeline).
//! * [`Machine::Mips`]: derived entirely from
//!   `crates/spawn/descriptions/mips.spawn` by `eel-spawn` — zero
//!   handwritten MIPS decode logic lives in this crate or `eel-isa`.
//!
//! Porting to a third machine (alpha) means writing a description and
//! adding a `machine_ops` arm; `docs/MACHINES.md` walks through it.

use eel_exe::{Image, Machine};
use eel_isa::{Cond, Op, Reg};
use std::sync::OnceLock;

/// What a machine word does to control flow — the classification every
/// machine-independent analysis in this crate consumes. The grouping
/// deliberately mirrors §4's spawn classes, flattened to what CFG
/// construction actually branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsnKind {
    /// Falls through to the next instruction (computation, load, store,
    /// system — anything that is not a transfer).
    Fall,
    /// Conditional PC-relative transfer: taken edge to `target`, plus a
    /// fall-through edge.
    Branch {
        /// Taken-edge target.
        target: u32,
    },
    /// Unconditional direct transfer. `links` distinguishes calls
    /// (SPARC `call`, MIPS `jal`) from plain jumps (`ba`, `j`).
    Jump {
        /// Transfer target.
        target: u32,
        /// Does the instruction save a return address?
        links: bool,
    },
    /// Register-indirect transfer (SPARC `jmpl`, MIPS `jr`/`jalr`).
    IndirectJump {
        /// Does the instruction save a return address?
        links: bool,
    },
    /// No valid decoding: data masquerading as code (§3.1's signal).
    Invalid,
}

/// The per-machine operations the machine-independent layers dispatch
/// through. Everything takes raw words (plus a pc where encodings are
/// PC-relative) so implementations stay stateless and `'static`.
pub trait MachineOps: Send + Sync {
    /// Which machine this implements.
    fn machine(&self) -> Machine;

    /// Control-flow classification of one word.
    fn kind(&self, word: u32, pc: u32) -> InsnKind;

    /// Does this instruction have an architectural delay slot? (On both
    /// SPARC V8 and MIPS-I every delayed transfer exposes one; a machine
    /// without delay slots — alpha — returns `false` throughout.)
    fn has_delay_slot(&self, word: u32, pc: u32) -> bool;

    /// Registers the instruction reads, as machine-conventional names
    /// (`%o0` on SPARC, `$4`/`$hi` on MIPS). Names only need to be
    /// consistent within a machine — liveness treats them as opaque keys.
    fn reads(&self, word: u32) -> Vec<String>;

    /// Registers the instruction writes (same naming contract as
    /// [`MachineOps::reads`]).
    fn writes(&self, word: u32) -> Vec<String>;

    /// One-line disassembly in the machine's conventional syntax.
    fn disasm(&self, word: u32, pc: u32) -> String;

    /// Does a compiler-shaped routine prologue start at `addr`? This is
    /// the signature eel-strip's inference rule 3 keys on; per-machine
    /// shapes are tabulated in `docs/STRIPPED.md`.
    fn is_prologue(&self, image: &Image, addr: u32) -> bool;
}

/// The ops table for a machine tag.
pub fn machine_ops(machine: Machine) -> &'static dyn MachineOps {
    eel_obs::counter!("core.machine.dispatch").add(1);
    match machine {
        Machine::Sparc => &SparcOps,
        Machine::Mips => &MipsOps,
        // Registering alpha here (backed by an `alpha.spawn` description)
        // is the final step of the MACHINES.md porting recipe.
        Machine::Alpha => unimplemented!("no alpha backend registered yet (see docs/MACHINES.md)"),
    }
}

/// SPARC V8 via the hand-built `eel-isa` layer.
struct SparcOps;

impl MachineOps for SparcOps {
    fn machine(&self) -> Machine {
        Machine::Sparc
    }

    fn kind(&self, word: u32, pc: u32) -> InsnKind {
        let insn = eel_isa::decode(word);
        match insn.op {
            Op::Call { disp30 } => InsnKind::Jump {
                target: pc.wrapping_add((disp30 as u32) << 2),
                links: true,
            },
            // `bn` (branch never) is an elaborate nop; `ba` is an
            // unconditional jump. Both orderings here keep discovery's
            // branch-edge set identical to the pre-seam pipeline.
            Op::Branch {
                cond: Cond::Never, ..
            } => InsnKind::Fall,
            Op::Branch {
                cond: Cond::Always,
                disp22,
                ..
            } => InsnKind::Jump {
                target: pc.wrapping_add((disp22 as u32) << 2),
                links: false,
            },
            Op::Branch { disp22, .. } => InsnKind::Branch {
                target: pc.wrapping_add((disp22 as u32) << 2),
            },
            Op::Jmpl { rd, .. } => InsnKind::IndirectJump {
                links: rd != Reg::G0,
            },
            Op::Invalid => InsnKind::Invalid,
            _ => InsnKind::Fall,
        }
    }

    fn has_delay_slot(&self, word: u32, _pc: u32) -> bool {
        eel_isa::decode(word).is_delayed()
    }

    fn reads(&self, word: u32) -> Vec<String> {
        eel_isa::decode(word)
            .reads()
            .iter()
            .map(|r| r.name())
            .collect()
    }

    fn writes(&self, word: u32) -> Vec<String> {
        eel_isa::decode(word)
            .writes()
            .iter()
            .map(|r| r.name())
            .collect()
    }

    fn disasm(&self, word: u32, _pc: u32) -> String {
        eel_isa::decode(word).to_string()
    }

    fn is_prologue(&self, image: &Image, addr: u32) -> bool {
        eel_strip::is_prologue(image, addr)
    }
}

/// MIPS-I, derived from `mips.spawn` — no handwritten decode tables.
struct MipsOps;

/// The spawn-derived MIPS machine, built once per process.
pub(crate) fn mips_machine() -> &'static eel_spawn::Machine {
    static MACHINE: OnceLock<eel_spawn::Machine> = OnceLock::new();
    MACHINE.get_or_init(|| {
        eel_obs::counter!("spawn.machine.built").add(1);
        eel_spawn::mips_machine().expect("mips.spawn is part of the build")
    })
}

/// Spells a spawn register read/write as a conventional MIPS name.
fn mips_reg_name(set: &str, index: u32) -> String {
    match set {
        "R" => format!("${index}"),
        other => format!("${}", other.to_ascii_lowercase()),
    }
}

impl MachineOps for MipsOps {
    fn machine(&self) -> Machine {
        Machine::Mips
    }

    fn kind(&self, word: u32, pc: u32) -> InsnKind {
        let m = mips_machine();
        let Some(d) = m.decode(word) else {
            return InsnKind::Invalid;
        };
        match d.spec.class {
            eel_spawn::Class::DirectJump => match m.static_target(&d, pc) {
                Some(target) => InsnKind::Jump {
                    target,
                    links: d.spec.links,
                },
                None => InsnKind::IndirectJump {
                    links: d.spec.links,
                },
            },
            eel_spawn::Class::Branch => match m.static_target(&d, pc) {
                Some(target) => InsnKind::Branch { target },
                // A branch whose target the evaluator cannot fold is a
                // description bug, not a program property; be conservative.
                None => InsnKind::IndirectJump { links: false },
            },
            eel_spawn::Class::IndirectJump => InsnKind::IndirectJump {
                links: d.spec.links,
            },
            eel_spawn::Class::Invalid => InsnKind::Invalid,
            _ => InsnKind::Fall,
        }
    }

    fn has_delay_slot(&self, word: u32, pc: u32) -> bool {
        // MIPS-I: every taken transfer is delayed, with no annul bit.
        !matches!(self.kind(word, pc), InsnKind::Fall | InsnKind::Invalid)
    }

    fn reads(&self, word: u32) -> Vec<String> {
        let m = mips_machine();
        match m.decode(word) {
            Some(d) => m
                .reads(&d)
                .into_iter()
                .map(|(set, i)| mips_reg_name(&set, i))
                .collect(),
            None => Vec::new(),
        }
    }

    fn writes(&self, word: u32) -> Vec<String> {
        let m = mips_machine();
        match m.decode(word) {
            Some(d) => m
                .writes(&d)
                .into_iter()
                .map(|(set, i)| mips_reg_name(&set, i))
                .collect(),
            None => Vec::new(),
        }
    }

    fn disasm(&self, word: u32, pc: u32) -> String {
        let m = mips_machine();
        let Some(d) = m.decode(word) else {
            return format!(".word {word:#010x}");
        };
        if word == 0 {
            return "nop".into();
        }
        let mut out = d.spec.name.clone();
        // Operand spelling straight from the description's field values:
        // terse, but mechanical for any described machine.
        let mut ops: Vec<String> = Vec::new();
        for field in ["rs", "rt", "rdf", "shamt", "imm16", "target"] {
            let uses = m
                .symbolic_reads(&d.spec.name)
                .iter()
                .chain(m.symbolic_writes(&d.spec.name).iter())
                .any(|(_, e)| e.contains(field));
            let v = m.field(field, word);
            match field {
                "rs" | "rt" | "rdf" if uses => ops.push(format!("${v}")),
                // The immediate is structural, not a register-set read,
                // so the symbolic-uses filter never sees it: any I-type
                // word (opcode outside R-type 0 and J-type 2/3) carries
                // one. Branches skip it — the folded `-> target` below
                // says more than the raw displacement.
                "imm16"
                    if !matches!(word >> 26, 0 | 2 | 3)
                        && !matches!(d.spec.class, eel_spawn::Class::Branch) =>
                {
                    ops.push(format!("{}", v as u16 as i16));
                }
                "target" if uses => {
                    let t = ((pc.wrapping_add(4)) & 0xf000_0000) | (v << 2);
                    ops.push(format!("{t:#x}"));
                }
                "shamt" if uses && d.spec.name.starts_with('s') => ops.push(format!("{v}")),
                _ => {}
            }
        }
        if let Some(target) = m.static_target(&m.decode(word).unwrap(), pc) {
            ops.push(format!("-> {target:#x}"));
        }
        if !ops.is_empty() {
            out.push(' ');
            out.push_str(&ops.join(", "));
        }
        out
    }

    fn is_prologue(&self, image: &Image, addr: u32) -> bool {
        // The MIPS compiler prologue signature (docs/STRIPPED.md):
        //   addiu $sp, $sp, -frame      (op 9, rs = rt = 29, imm < 0)
        // followed within two words by
        //   sw $ra, off($sp)            (op 43, base 29, rt 31, small off)
        let Some(w0) = image.word_at(addr) else {
            return false;
        };
        let is_sp_drop = w0 >> 26 == 9
            && (w0 >> 21) & 31 == 29
            && (w0 >> 16) & 31 == 29
            && (w0 as u16 as i16) < 0;
        if !is_sp_drop {
            return false;
        }
        (1..=2).any(|k| {
            image.word_at(addr + 4 * k).is_some_and(|w| {
                w >> 26 == 43
                    && (w >> 21) & 31 == 29
                    && (w >> 16) & 31 == 31
                    && (0..256).contains(&(w as u16 as i16))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparc_kinds_match_isa() {
        let ops = machine_ops(Machine::Sparc);
        assert_eq!(ops.machine(), Machine::Sparc);
        // call .+8
        let call = eel_isa::encode(&Op::Call { disp30: 2 });
        assert_eq!(
            ops.kind(call, 0x1000),
            InsnKind::Jump {
                target: 0x1008,
                links: true
            }
        );
        assert!(ops.has_delay_slot(call, 0x1000));
        // A nop falls through and reads/writes nothing interesting.
        assert_eq!(ops.kind(0x0100_0000, 0x1000), InsnKind::Fall);
        assert!(ops.disasm(0x0100_0000, 0).contains("nop"));
    }

    #[test]
    fn mips_kinds_from_description() {
        let ops = machine_ops(Machine::Mips);
        assert_eq!(ops.machine(), Machine::Mips);
        // beq $0, $0, .+4 → branch, target pc+8.
        assert_eq!(
            ops.kind(0x1000_0001, 0x1000),
            InsnKind::Branch { target: 0x1008 }
        );
        // j 0x10000 (target26 = 0x4000)
        assert_eq!(
            ops.kind((2 << 26) | 0x4000, 0x1000),
            InsnKind::Jump {
                target: 0x10000,
                links: false
            }
        );
        // jal links, jr is an indirect jump, addu falls through.
        assert!(matches!(
            ops.kind((3 << 26) | 0x4000, 0x1000),
            InsnKind::Jump { links: true, .. }
        ));
        assert_eq!(
            ops.kind(0x03e0_0008, 0),
            InsnKind::IndirectJump { links: false }
        );
        assert_eq!(ops.kind(0x0085_1021, 0), InsnKind::Fall);
        assert!(ops.has_delay_slot(0x1000_0001, 0x1000));
        assert!(!ops.has_delay_slot(0x0085_1021, 0));
    }

    #[test]
    fn mips_reads_writes_have_machine_names() {
        let ops = machine_ops(Machine::Mips);
        // addu $v0, $a0, $a1
        let reads = ops.reads(0x0085_1021);
        assert!(reads.contains(&"$4".to_string()), "{reads:?}");
        assert!(reads.contains(&"$5".to_string()), "{reads:?}");
        assert_eq!(ops.writes(0x0085_1021), vec!["$2".to_string()]);
        // mflo $a0 reads $lo.
        assert!(ops.reads(0x0000_2012).contains(&"$lo".to_string()));
    }

    #[test]
    fn mips_disasm_names_instructions() {
        let ops = machine_ops(Machine::Mips);
        assert!(ops.disasm(0x0085_1021, 0).starts_with("addu"));
        assert_eq!(ops.disasm(0, 0), "nop");
        assert!(ops.disasm(0x03e0_0008, 0).starts_with("jr"));
        // An undecodable word prints as data.
        assert!(ops.disasm(0xffff_ffff, 0).starts_with(".word"));
    }

    #[test]
    fn mips_prologue_signature() {
        use eel_exe::{DATA_BASE, TEXT_BASE};
        let mut image = Image::new(TEXT_BASE, DATA_BASE).with_machine(Machine::Mips);
        // addiu $sp,$sp,-24; sw $ra,20($sp); jr $ra; nop
        for w in [0x27bd_ffe8u32, 0xafbf_0014, 0x03e0_0008, 0] {
            image.text.extend_from_slice(&w.to_be_bytes());
        }
        let ops = machine_ops(Machine::Mips);
        assert!(ops.is_prologue(&image, TEXT_BASE));
        assert!(!ops.is_prologue(&image, TEXT_BASE + 8));
    }
}
