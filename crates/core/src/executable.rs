//! The executable abstraction (paper §3.1).
//!
//! An [`Executable`] wraps a WEF image and provides EEL's top-level
//! workflow:
//!
//! 1. [`Executable::read_contents`] — refine the (unreliable) symbol table
//!    into a set of [`Routine`]s using the paper's four-stage analysis:
//!    label cleanup, stripped-executable call-target discovery,
//!    interprocedural entry-point discovery, and (lazily, during CFG
//!    construction) hidden-routine discovery from unreachable tails.
//! 2. [`Executable::build_cfg`] / [`Executable::install_edits`] — analyze
//!    and edit routines one at a time (the Figure 1 driver pattern, with
//!    [`Executable::pop_hidden`] draining newly discovered routines).
//! 3. [`Executable::write_edited`] — lay out the edited program, fix every
//!    displacement and dispatch table, append run-time support (the
//!    address translator and tool-added routines), and emit a new image.

use crate::cfg::{build_cfg as cfg_build, BuildOutput, Cfg};
use crate::error::EelError;
use crate::fragment::{self, FragmentMeta};
use crate::instr::{AllocStats, InstructionPool};
use crate::layout::{lay_out_routine, Item, RoutineLayout, Tgt, TRANSLATOR};
use crate::routine::Routine;
use crate::shared::Analysis;
use eel_exe::{Image, Symbol, SymbolKind};
use eel_isa::{Builder, Insn, Op};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Stable identifier of a routine within an [`Executable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RoutineId(usize);

impl RoutineId {
    /// The raw index (stable across discovery).
    pub fn index(self) -> usize {
        self.0
    }
}

/// An executable opened for analysis and editing.
///
/// The image is held behind an [`Arc`] so several `Executable`s (e.g. one
/// per concurrent eel-serve request) can share one loaded image without
/// copying; see [`Executable::from_analysis`] for sharing the routine
/// discovery as well.
pub struct Executable {
    image: Arc<Image>,
    routines: Vec<Routine>,
    analyzed: bool,
    /// Where the routine set came from (symbol table vs. inference).
    discovery: DiscoverySource,
    /// Whether [`Executable::read_contents`] may fall back to
    /// `eel-strip` inference when the symbol table is empty. On (the
    /// default) everywhere except ablations.
    strip_aware: bool,
    hidden_queue: Vec<RoutineId>,
    layouts: HashMap<usize, RoutineLayout>,
    runtime_routines: Vec<(String, String)>,
    reserved_len: u32,
    reserved_init: Vec<(u32, Vec<u8>)>,
    pool: InstructionPool,
    addr_map: Option<HashMap<u32, u32>>,
    written: bool,
    /// Whether any observable edit was requested: an installed CFG with
    /// recorded edits, reserved data, a runtime routine, or a removal.
    /// While false, [`Executable::write_edited`] reproduces the input
    /// image byte for byte instead of re-laying the program out.
    dirty: bool,
    jump_analysis: bool,
    removed: std::collections::HashSet<usize>,
    /// Speculative CFG builds from [`Executable::build_all_cfgs`]'s
    /// parallel phase, keyed by routine index and stamped with the
    /// inputs they were built from. [`Executable::build_cfg`] consumes a
    /// memo entry instead of re-running the builder when — and only
    /// when — the routine's extent and entry set still match, which is
    /// what keeps the parallel path byte-identical to the sequential
    /// one.
    cfg_memo: HashMap<usize, (CfgInputs, Result<BuildOutput, EelError>)>,
}

/// The inputs a speculative CFG build consumed: the routine's extent and
/// entry points at fan-out time. A later cross-routine side effect
/// (§3.1 stage 3 entry-point registration, stage 4 splitting) changes
/// these, invalidating the speculation.
#[derive(Clone, PartialEq, Eq, Debug)]
struct CfgInputs {
    start: u32,
    end: u32,
    entries: Vec<u32>,
}

/// Everything [`Executable::build_cfg_full`] learned: the CFG plus the
/// discovery side effects the build performed (which a fragment hit
/// must replay) and whether it consulted words outside the extent
/// (which disqualifies its artifacts from fragment storage — the
/// content key does not hash them).
struct BuiltCfg {
    cfg: Cfg,
    /// §3.1 stage-3 escape targets, union across trailing-split rebuild
    /// iterations; sorted and deduplicated.
    escapes: Vec<u32>,
    /// §3.1 stage-4 trailing-split addresses, in the order performed.
    splits: Vec<u32>,
    /// Jump analysis read a word outside the routine's extent.
    external: bool,
}

/// The fragment-cache lookup passed to
/// [`Executable::build_all_cfgs_probed`]: given a routine and its
/// content key, return the stored fragment's metadata to take the hit
/// path, or `None` to build live.
pub type FragmentProbe<'a> = &'a mut dyn FnMut(&Routine, u64) -> Option<FragmentMeta>;

/// One routine's result from [`Executable::build_all_cfgs_probed`]: the
/// stitch-time routine snapshot, its content key, and either a freshly
/// built CFG (`cfg: Some`) or a validated fragment hit (`cfg: None` —
/// the caller renders from its cached fragment instead).
#[derive(Debug)]
pub struct CfgBatchItem {
    /// The routine's id in this executable.
    pub id: RoutineId,
    /// Snapshot of the routine as the sequential build loop observed it
    /// (after all earlier routines' discovery side effects).
    pub routine: Routine,
    /// The routine's content key ([`crate::routine_key`]); `0` in the
    /// unprobed [`Executable::build_all_cfgs`] path, which never reads it.
    pub key: u64,
    /// The built CFG, or `None` for a validated fragment hit.
    pub cfg: Option<Cfg>,
    /// Whether the live build was a pure, replayable function of the
    /// routine's content key (it read no words outside its extent).
    /// Only clean routines' artifacts may be stored as fragments;
    /// always `false` on a hit (the fragment already exists).
    pub clean: bool,
    /// The build's §3.1 escape targets (from the fragment's metadata on
    /// a hit) — recorded into newly stored fragments so a hit can
    /// replay the registrations.
    pub escapes: Vec<u32>,
    /// The build's §3.1 trailing-split addresses (from the fragment's
    /// metadata on a hit), in order — recorded into newly stored
    /// fragments so a hit can replay the splits.
    pub splits: Vec<u32>,
}

impl std::fmt::Debug for Executable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executable")
            .field("routines", &self.routines.len())
            .field("analyzed", &self.analyzed)
            .finish_non_exhaustive()
    }
}

impl Executable {
    /// Opens an in-memory image.
    ///
    /// # Errors
    ///
    /// [`EelError::BadImage`] when the image fails validation.
    pub fn from_image(image: Image) -> Result<Executable, EelError> {
        Executable::from_shared_image(Arc::new(image))
    }

    /// Opens an image already shared behind an [`Arc`] (the eel-serve hot
    /// path: many requests, one loaded image).
    ///
    /// # Errors
    ///
    /// [`EelError::BadImage`] when the image fails validation.
    pub fn from_shared_image(image: Arc<Image>) -> Result<Executable, EelError> {
        image.validate()?;
        Ok(Executable {
            image,
            routines: Vec::new(),
            analyzed: false,
            discovery: DiscoverySource::Symbols,
            strip_aware: true,
            hidden_queue: Vec::new(),
            layouts: HashMap::new(),
            runtime_routines: Vec::new(),
            reserved_len: 0,
            reserved_init: Vec::new(),
            pool: InstructionPool::new(),
            addr_map: None,
            written: false,
            dirty: false,
            jump_analysis: true,
            removed: std::collections::HashSet::new(),
            cfg_memo: HashMap::new(),
        })
    }

    /// Opens an executable file.
    ///
    /// # Errors
    ///
    /// Propagates I/O, parse, and validation failures.
    pub fn open<P: AsRef<std::path::Path>>(path: P) -> Result<Executable, EelError> {
        Executable::from_image(Image::read_file(path)?)
    }

    /// The underlying image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The underlying image, shared: cloning the returned [`Arc`] lets
    /// another `Executable` (or a cache) reuse the loaded image.
    pub fn shared_image(&self) -> Arc<Image> {
        Arc::clone(&self.image)
    }

    /// The original program entry point.
    pub fn start_address(&self) -> u32 {
        self.image.entry
    }

    /// Disables the slicing-based indirect-jump analysis: every indirect
    /// jump resolves to Unknown and falls back to run-time translation
    /// (§3.3's fallback). This exists for ablations measuring what the
    /// analysis buys.
    ///
    /// **Warning:** editing a program whose dispatch tables were not
    /// analyzed produces a broken executable — the table's address is a
    /// literal in code pointing at the *original* text, which run-time
    /// target translation cannot repair. This is precisely why the paper
    /// treats the slicing analysis as load-bearing rather than an
    /// optimization.
    pub fn set_jump_analysis(&mut self, enabled: bool) {
        self.jump_analysis = enabled;
    }

    /// Opens an executable whose contents were already read: the routine
    /// set comes from a shared, immutable [`Analysis`] and the image is
    /// reference-counted, so nothing is re-parsed or re-discovered. This
    /// is how concurrent eel-serve requests get their own editable
    /// `Executable` from one cached analysis.
    pub fn from_analysis(analysis: &Analysis) -> Executable {
        let mut exec = Executable::from_shared_image(Arc::clone(analysis.image()))
            .expect("Analysis holds a validated image");
        exec.routines = analysis.routines().to_vec();
        exec.hidden_queue = analysis.hidden_queue().to_vec();
        exec.discovery = analysis.discovery();
        exec.analyzed = true;
        exec
    }

    /// Reads and refines the program's contents (§3.1's staged analysis),
    /// establishing the routine set.
    ///
    /// Idempotent: repeated calls (the server's hot path re-entering the
    /// driver loop) return immediately without re-scanning the text
    /// segment or re-running the refinement stages. To share the result
    /// across `Executable`s, compute an [`Analysis`] once and construct
    /// with [`Executable::from_analysis`].
    ///
    /// # Errors
    ///
    /// [`EelError::BadImage`] for structurally impossible inputs.
    pub fn read_contents(&mut self) -> Result<(), EelError> {
        if self.analyzed {
            return Ok(());
        }
        let _obs = eel_obs::span("core.read_contents");
        let discovery = discover_routines(&self.image, &mut self.pool, self.strip_aware)?;
        self.routines = discovery.routines;
        self.hidden_queue = discovery.hidden;
        self.discovery = discovery.source;
        self.analyzed = true;
        Ok(())
    }

    /// Enables or disables the strip-aware discovery fallback: with it
    /// off, a symbol-less image gets only the naive entry/call-target
    /// seeding instead of `eel-strip`'s full inference (an ablation
    /// knob, like [`Executable::set_jump_analysis`]). Must be called
    /// before [`Executable::read_contents`].
    pub fn set_strip_aware(&mut self, enabled: bool) {
        self.strip_aware = enabled;
    }

    /// Where the routine set came from — meaningful after
    /// [`Executable::read_contents`].
    pub fn discovery_source(&self) -> DiscoverySource {
        self.discovery
    }

    /// Ids of the routines known from the symbol table (the paper's
    /// `exec->routines()`); hidden routines arrive via
    /// [`Executable::pop_hidden`].
    pub fn routine_ids(&self) -> Vec<RoutineId> {
        self.routines
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.hidden)
            .map(|(i, _)| RoutineId(i))
            .collect()
    }
}

/// Where an analysis' routine set came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoverySource {
    /// §3.1's symbol-table refinement (the image had routine symbols).
    Symbols,
    /// `eel-strip`'s inference rules (the symbol table was empty).
    Inferred,
}

impl DiscoverySource {
    /// The lowercase spelling used in reports and on the wire
    /// (`discovery: inferred`).
    pub fn as_str(self) -> &'static str {
        match self {
            DiscoverySource::Symbols => "symbols",
            DiscoverySource::Inferred => "inferred",
        }
    }
}

/// The outcome of §3.1's routine discovery: the refined routine set plus
/// the queue of hidden routines awaiting the Figure 1 drain loop.
pub(crate) struct Discovery {
    pub(crate) routines: Vec<Routine>,
    pub(crate) hidden: Vec<RoutineId>,
    pub(crate) source: DiscoverySource,
}

/// Bridges `eel-strip`'s inference to the §3.3 jump-table slicer: the
/// sweep hands each reached indirect jump to [`resolve_indirect`], and
/// resolved dispatch targets re-enter the sweep. eel-strip stays
/// machine-independent of eel-core this way (a callback, not a
/// dependency).
fn infer_stripped(image: &Image) -> eel_strip::InferredDiscovery {
    use crate::analysis::jumptable::{resolve_indirect, JumpResolution};
    let mut resolver = |extent: (u32, u32), addr: u32, insn: Insn| {
        let mut external_reads = false;
        match resolve_indirect(image, extent, addr, insn, &mut external_reads) {
            JumpResolution::Table {
                table_addr,
                targets,
                ..
            } => eel_strip::ResolvedDispatch {
                table: Some((table_addr, table_addr + 4 * targets.len() as u32)),
                targets,
            },
            JumpResolution::Literal { target, .. } => eel_strip::ResolvedDispatch {
                table: None,
                targets: vec![target],
            },
            JumpResolution::Unknown => eel_strip::ResolvedDispatch::default(),
        }
    };
    eel_strip::infer(image, &mut resolver)
}

/// §3.1's staged symbol-table refinement as a pure function of the image:
/// the shared implementation behind [`Executable::read_contents`] and
/// [`Analysis::compute`]. Decoded text words are interned into `pool` for
/// the §3.4 one-object-per-word accounting. When the symbol table yields
/// no routine labels and `strip_aware` is on, stage 2 runs `eel-strip`'s
/// inference instead of the naive call-target seeding.
pub(crate) fn discover_routines(
    image: &Image,
    pool: &mut InstructionPool,
    strip_aware: bool,
) -> Result<Discovery, EelError> {
    let text = (image.text_addr, image.text_end());
    let ops = crate::machine::machine_ops(image.machine);

    // Pre-scan: classify every text word once through the machine seam;
    // collect direct-call targets (linking jumps) and branch targets
    // (with their sources; non-linking direct jumps included, so SPARC
    // `ba` and MIPS `j` both count as intra-routine flow).
    let mut call_targets: Vec<u32> = Vec::new();
    let mut branch_edges: Vec<(u32, u32)> = Vec::new(); // (src, target)
    for (addr, word) in image.text_words() {
        pool.intern(word);
        match ops.kind(word, addr) {
            crate::machine::InsnKind::Jump {
                target: t,
                links: true,
            } if t >= text.0 && t < text.1 && t % 4 == 0 => {
                call_targets.push(t);
            }
            crate::machine::InsnKind::Branch { target: t }
            | crate::machine::InsnKind::Jump {
                target: t,
                links: false,
            } if t >= text.0 && t < text.1 => {
                branch_edges.push((addr, t));
            }
            _ => {}
        }
    }

    // Stage 1: clean the symbol table's candidate labels.
    let mut candidates: BTreeMap<u32, Option<String>> = BTreeMap::new();
    if !image.is_stripped() {
        let mut raw: Vec<&Symbol> = image
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Routine && s.value >= text.0 && s.value < text.1)
            .collect();
        raw.sort_by_key(|s| s.value);
        // Misaligned labels are dropped; duplicates keep the first name.
        raw.retain(|s| s.value % 4 == 0);
        // Drop labels that are branch targets from the region since the
        // previous surviving candidate (probably internal labels, §3.1).
        let mut branch_targets: HashMap<u32, Vec<u32>> = HashMap::new();
        for (src, t) in &branch_edges {
            branch_targets.entry(*t).or_default().push(*src);
        }
        let mut prev_start = text.0;
        for s in raw {
            let internal = branch_targets
                .get(&s.value)
                .map(|srcs| srcs.iter().any(|&src| src >= prev_start && src < s.value))
                .unwrap_or(false);
            if internal {
                continue;
            }
            candidates
                .entry(s.value)
                .or_insert_with(|| Some(s.name.clone()));
            prev_start = s.value;
        }
    }

    // Stage 2: a stripped executable has no labels to refine, so the
    // routine set comes from inference — eel-strip's speculative sweep
    // and rule fixpoint (entry point, call targets, prologue matches,
    // dispatch-table feedback, data-pointer promotion) — or, with the
    // fallback disabled, from the naive entry/call-target seeding.
    let source = if candidates.is_empty() {
        if strip_aware && image.machine == eel_exe::Machine::Sparc {
            let inferred = infer_stripped(image);
            for s in &inferred.starts {
                candidates.entry(s.addr).or_insert(None);
            }
        } else if strip_aware {
            // Non-SPARC stripped images: seed from call targets plus the
            // machine's prologue signature (eel-strip's rule 3 through
            // the seam; the full sweep-and-fixpoint is SPARC-only today).
            for &t in &call_targets {
                candidates.entry(t).or_insert(None);
            }
            let mut addr = text.0;
            while addr < text.1 {
                if ops.is_prologue(image, addr) {
                    candidates.entry(addr).or_insert(None);
                }
                addr += 4;
            }
        } else {
            for &t in &call_targets {
                candidates.entry(t).or_insert(None);
            }
        }
        candidates.insert(image.entry, None);
        candidates.entry(text.0).or_insert(None);
        DiscoverySource::Inferred
    } else {
        DiscoverySource::Symbols
    };
    // The program's entry point is always a routine.
    candidates.entry(image.entry).or_insert(None);

    // Stage 3: call targets not in the set become (hidden) routines.
    for &t in &call_targets {
        candidates.entry(t).or_insert(None);
    }

    // Materialize routines in address order; extent = next start.
    let mut routines: Vec<Routine> = Vec::new();
    let mut hidden_queue: Vec<RoutineId> = Vec::new();
    let starts: Vec<(u32, Option<String>)> = candidates.into_iter().collect();
    for (i, (start, name)) in starts.iter().enumerate() {
        let end = starts.get(i + 1).map(|(s, _)| *s).unwrap_or(text.1);
        if end <= *start {
            continue;
        }
        let hidden = name.is_none() && !image.is_stripped();
        let id = RoutineId(routines.len());
        routines.push(Routine {
            name: name.clone(),
            start: *start,
            end,
            entries: vec![*start],
            hidden,
            inferred: source == DiscoverySource::Inferred && name.is_none(),
        });
        if hidden {
            hidden_queue.push(id);
        }
    }
    if routines.is_empty() {
        return Err(EelError::BadImage(
            "no routines found in text segment".into(),
        ));
    }
    Ok(Discovery {
        routines,
        hidden: hidden_queue,
        source,
    })
}

impl Executable {
    /// Guard for the paths still implemented directly on `eel-isa`: the
    /// editable CFG and relayout pipeline. Analyses for other machines
    /// go through the [`crate::machine_ops`] seam and the
    /// [`crate::generic_cfg`] family instead.
    fn require_sparc(&self, what: &str) -> Result<(), EelError> {
        if self.image.machine == eel_exe::Machine::Sparc {
            Ok(())
        } else {
            Err(EelError::BadImage(format!(
                "{what} is sparc-only; use the generic machine ops (eel_core::generic_cfg, \
                 generic_disasm, instrument_block_counters) for a {} image",
                self.image.machine
            )))
        }
    }

    /// Ids of every routine currently known (named and hidden).
    pub fn all_routine_ids(&self) -> Vec<RoutineId> {
        (0..self.routines.len()).map(RoutineId).collect()
    }

    /// Pops the next discovered-but-unprocessed hidden routine (the
    /// paper's `exec->hidden_routines()` drain loop, Figure 1).
    pub fn pop_hidden(&mut self) -> Option<RoutineId> {
        self.hidden_queue.pop()
    }

    /// The routine for an id.
    ///
    /// # Panics
    ///
    /// Panics on a stale id from a different executable.
    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.0]
    }

    /// All routines, in discovery order.
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// The routine containing an address.
    pub fn routine_containing(&self, addr: u32) -> Option<RoutineId> {
        self.routines
            .iter()
            .position(|r| r.contains(addr))
            .map(RoutineId)
    }

    /// Instruction-object allocation statistics (experiment E-OBJ).
    pub fn alloc_stats(&self) -> AllocStats {
        self.pool.stats()
    }

    /// Builds (or rebuilds) the routine's delay-slot-normalized CFG.
    ///
    /// Side effects reproduce §3.1's late stages: a trailing unreachable
    /// region splits off as a new hidden routine (stage 4), and
    /// interprocedural targets register as entry points of the routines
    /// containing them (stage 3).
    ///
    /// # Errors
    ///
    /// [`EelError::NotAnalyzed`] before [`Executable::read_contents`];
    /// [`EelError::DelaySlotTransfer`] for the documented unsupported
    /// shape.
    pub fn build_cfg(&mut self, id: RoutineId) -> Result<Cfg, EelError> {
        self.build_cfg_full(id).map(|full| full.cfg)
    }

    /// [`Executable::build_cfg`] plus everything a per-routine fragment
    /// records to stand in for the build: the discovery side effects it
    /// performed (stage-3 escape registrations, stage-4 trailing
    /// splits), which a fragment hit replays, and the external-read
    /// flag (the build consulted words outside the extent, content the
    /// routine's key does not hash — such builds must not be cached).
    fn build_cfg_full(&mut self, id: RoutineId) -> Result<BuiltCfg, EelError> {
        let _obs = eel_obs::span("core.build_cfg");
        if !self.analyzed {
            return Err(EelError::NotAnalyzed);
        }
        self.require_sparc("the editable CFG pipeline")?;
        let _ = self.routines.get(id.0).ok_or(EelError::BadRoutine(id.0))?;
        let mut escapes: Vec<u32> = Vec::new();
        let mut splits: Vec<u32> = Vec::new();
        let mut external = false;
        loop {
            let r = &self.routines[id.0];
            let inputs = CfgInputs {
                start: r.start,
                end: r.end,
                entries: r.entries.clone(),
            };
            // A speculative parallel build is only honored when the
            // routine's inputs are still exactly what it consumed;
            // otherwise fall through to a fresh (sequential) build, the
            // same computation the speculation raced against.
            let speculated = match self.cfg_memo.remove(&id.0) {
                Some((key, result)) if key == inputs => {
                    eel_obs::counter!("core.parallel.speculation.hit").add(1);
                    Some(result)
                }
                Some(_) => {
                    eel_obs::counter!("core.parallel.speculation.stale").add(1);
                    None
                }
                None => None,
            };
            let out = match speculated {
                Some(result) => result?,
                None => cfg_build(
                    &self.image,
                    id,
                    (inputs.start, inputs.end),
                    &inputs.entries,
                    self.jump_analysis,
                )?,
            };
            external |= out.external_reads;
            escapes.extend_from_slice(&out.escape_targets);
            // Register interprocedural entry points (stage 3).
            for t in &out.escape_targets {
                if let Some(cid) = self.routine_containing(*t) {
                    let cr = &mut self.routines[cid.0];
                    if !cr.entries.contains(t) {
                        cr.entries.push(*t);
                        cr.entries.sort_unstable();
                    }
                }
            }
            // Trailing unreachable code: a hidden routine (stage 4).
            if let Some(t) = out.trailing_unreachable {
                let r = &self.routines[id.0];
                if t > r.start && t < r.end && self.routine_containing(t) == Some(id) {
                    let end = r.end;
                    let inferred = r.inferred;
                    self.routines[id.0].end = t;
                    self.routines[id.0].entries.retain(|&e| e < t);
                    let new_id = RoutineId(self.routines.len());
                    self.routines.push(Routine {
                        name: None,
                        start: t,
                        end,
                        entries: vec![t],
                        hidden: true,
                        inferred,
                    });
                    self.hidden_queue.push(new_id);
                    splits.push(t);
                    // Rebuild with the shrunk extent so the CFG and the
                    // later layout agree.
                    continue;
                }
            }
            // Account instruction objects (shared pool, §3.4).
            for b in &out.cfg.blocks {
                for ia in &b.insns {
                    self.pool.intern(ia.insn.word);
                }
            }
            eel_obs::counter!("core.cfg.blocks").add(out.cfg.blocks.len() as u64);
            eel_obs::counter!("core.cfg.edges").add(out.cfg.edges.len() as u64);
            escapes.sort_unstable();
            escapes.dedup();
            return Ok(BuiltCfg {
                cfg: out.cfg,
                escapes,
                splits,
                external,
            });
        }
    }

    /// Builds the CFG of **every** currently known routine, fanning the
    /// per-routine builds out over `threads` scoped worker threads
    /// (0 = one per core, 1 = fully sequential), and returns
    /// `(routine snapshot, CFG)` pairs **in routine order**.
    ///
    /// The returned [`Routine`] is the snapshot a sequential
    /// `for id { routine(id).clone(); build_cfg(id) }` loop would have
    /// observed — taken after all *earlier* routines' side effects but
    /// before this routine's own build — so render passes that consult
    /// the routine's extent behave identically in both modes.
    ///
    /// # Determinism
    ///
    /// The output is **byte-for-byte identical** to calling
    /// [`Executable::build_cfg`] on each routine in order. The parallel
    /// phase only *speculates*: it runs the pure CFG builder against a
    /// snapshot of every routine's extent and entries, and the
    /// sequential stitch phase accepts a speculative result only when
    /// those inputs are still exact — any routine invalidated by a
    /// cross-routine discovery (§3.1 stage 3 entry points, stage 4
    /// splits) is rebuilt sequentially, exactly as the plain loop would
    /// have built it. Side effects (entry-point registration,
    /// hidden-routine splitting, instruction interning) all happen in
    /// the stitch phase, in routine order.
    ///
    /// # Errors
    ///
    /// As [`Executable::build_cfg`]; the first failing routine in
    /// routine order wins, like the sequential loop.
    pub fn build_all_cfgs(&mut self, threads: usize) -> Result<Vec<(Routine, Cfg)>, EelError> {
        let items = self.build_all_cfgs_inner(threads, None)?;
        Ok(items
            .into_iter()
            .map(|it| {
                (
                    it.routine,
                    it.cfg.expect("no probe: every routine is built"),
                )
            })
            .collect())
    }

    /// [`Executable::build_all_cfgs`] with a per-routine fragment probe:
    /// before building a routine, `probe` is asked whether a cached
    /// fragment exists for its content key ([`crate::routine_key`]). A
    /// returned [`FragmentMeta`] is honored — the CFG build is skipped
    /// and the item carries `cfg: None` — only when the recorded start
    /// still matches (the fragment's rendered output embeds absolute
    /// addresses); the build's §3.1 side effects are then *replayed*
    /// from the recorded metadata (stage-4 trailing splits, stage-3
    /// entry-point registrations), so later routines and the eventual
    /// layout pass see exactly the routine table the live build would
    /// have produced. Anything else falls back to a live build, which
    /// keeps the composed result byte-identical to an unprobed run.
    ///
    /// Items report `clean: true` when the live build consulted no
    /// words outside its own extent (content the key does not hash);
    /// only those routines' artifacts are safe to store as fragments.
    ///
    /// # Errors
    ///
    /// As [`Executable::build_all_cfgs`].
    pub fn build_all_cfgs_probed(
        &mut self,
        threads: usize,
        probe: FragmentProbe<'_>,
    ) -> Result<Vec<CfgBatchItem>, EelError> {
        self.build_all_cfgs_inner(threads, Some(probe))
    }

    fn build_all_cfgs_inner(
        &mut self,
        threads: usize,
        mut probe: Option<FragmentProbe<'_>>,
    ) -> Result<Vec<CfgBatchItem>, EelError> {
        if !self.analyzed {
            return Err(EelError::NotAnalyzed);
        }
        let ids = self.all_routine_ids();
        let threads = crate::par::effective_threads(threads).min(ids.len().max(1));
        if threads > 1 && ids.len() > 1 {
            let _obs = eel_obs::span("core.parallel.build_all");
            eel_obs::counter!("core.parallel.batches").add(1);
            let snapshots: Vec<(RoutineId, CfgInputs)> = ids
                .iter()
                .map(|&id| {
                    let r = &self.routines[id.0];
                    (
                        id,
                        CfgInputs {
                            start: r.start,
                            end: r.end,
                            entries: r.entries.clone(),
                        },
                    )
                })
                .collect();
            // Routines whose fragment already validates against the
            // pre-batch state skip the speculative build too — the
            // stitch phase re-validates before trusting the fragment.
            let skip: Vec<bool> = match probe.as_mut() {
                Some(p) => ids
                    .iter()
                    .map(|&id| {
                        let r = &self.routines[id.0];
                        let key = fragment::routine_key(&self.image, r);
                        p(r, key).is_some_and(|meta| Self::hit_valid(r, &meta))
                    })
                    .collect(),
                None => vec![false; ids.len()],
            };
            let image = &self.image;
            let jump_analysis = self.jump_analysis;
            let built = crate::par::fan_out_indexed(snapshots.len(), threads, |i| {
                if skip[i] {
                    return None;
                }
                let (id, inputs) = &snapshots[i];
                let started = std::time::Instant::now();
                let out = cfg_build(
                    image,
                    *id,
                    (inputs.start, inputs.end),
                    &inputs.entries,
                    jump_analysis,
                );
                eel_obs::histogram!("core.parallel.routine_us")
                    .record(started.elapsed().as_micros() as u64);
                Some(out)
            });
            self.cfg_memo = snapshots
                .into_iter()
                .zip(built)
                .filter_map(|((id, inputs), result)| result.map(|r| (id.0, (inputs, r))))
                .collect();
        }
        // Stitch phase: sequential, in routine order, consuming the
        // speculative builds where still valid. This is the only place
        // routine state mutates, so ordering matches the plain loop.
        let mut out = Vec::with_capacity(ids.len());
        let mut first_err = None;
        for id in ids {
            let snapshot = self.routines[id.0].clone();
            if let Some(p) = probe.as_mut() {
                let key = fragment::routine_key(&self.image, &snapshot);
                let hit = p(&snapshot, key).filter(|meta| Self::hit_valid(&snapshot, meta));
                if let Some(meta) = hit {
                    // Validated: same bytes, same relative entries, same
                    // absolute start ⇒ the skipped build would have
                    // performed exactly the recorded side effects.
                    // Replay them — splits first (registrations may
                    // target a split-off region), then stage-3 entry
                    // registrations — so routine state matches what the
                    // unprobed run would have at this point.
                    for &t in &meta.splits {
                        let r = &self.routines[id.0];
                        if t > r.start && t < r.end && self.routine_containing(t) == Some(id) {
                            let end = r.end;
                            let inferred = r.inferred;
                            self.routines[id.0].end = t;
                            self.routines[id.0].entries.retain(|&e| e < t);
                            let new_id = RoutineId(self.routines.len());
                            self.routines.push(Routine {
                                name: None,
                                start: t,
                                end,
                                entries: vec![t],
                                hidden: true,
                                inferred,
                            });
                            self.hidden_queue.push(new_id);
                        }
                    }
                    for &t in &meta.escapes {
                        if let Some(cid) = self.routine_containing(t) {
                            let cr = &mut self.routines[cid.0];
                            if !cr.entries.contains(&t) {
                                cr.entries.push(t);
                                cr.entries.sort_unstable();
                            }
                        }
                    }
                    self.cfg_memo.remove(&id.0);
                    out.push(CfgBatchItem {
                        id,
                        routine: snapshot,
                        key,
                        cfg: None,
                        clean: false,
                        escapes: meta.escapes,
                        splits: meta.splits,
                    });
                    continue;
                }
                match self.build_cfg_full(id) {
                    Ok(full) => out.push(CfgBatchItem {
                        id,
                        routine: snapshot,
                        key,
                        cfg: Some(full.cfg),
                        clean: !full.external,
                        escapes: full.escapes,
                        splits: full.splits,
                    }),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            } else {
                match self.build_cfg_full(id) {
                    Ok(full) => out.push(CfgBatchItem {
                        id,
                        routine: snapshot,
                        key: 0,
                        cfg: Some(full.cfg),
                        clean: !full.external,
                        escapes: full.escapes,
                        splits: full.splits,
                    }),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
        }
        self.cfg_memo.clear();
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Is a fragment recorded under this routine's content key actually
    /// reusable *here*? The content key is position-independent, but
    /// rendered fragments embed absolute addresses and the recorded
    /// escape targets are absolute, so the routine must sit at the same
    /// start. Everything else the build depends on is covered by the key
    /// itself (extent bytes, length, relative entries) or replayed from
    /// the meta (stage-3 registrations). See
    /// [`Executable::build_all_cfgs_probed`].
    fn hit_valid(r: &Routine, meta: &FragmentMeta) -> bool {
        meta.start == r.start
    }

    /// Rebuilds a routine's CFG purely from a snapshot, with **no**
    /// discovery side effects. Valid only for snapshots whose build is
    /// known clean (a validated fragment hit whose payload then proved
    /// unusable — e.g. an instrumentation plan recorded against a
    /// different counter base): cleanliness guarantees the pure build
    /// equals what [`Executable::build_cfg`] would have produced.
    ///
    /// # Errors
    ///
    /// As the underlying CFG builder.
    pub fn build_cfg_snapshot(&self, id: RoutineId, routine: &Routine) -> Result<Cfg, EelError> {
        Ok(cfg_build(
            &self.image,
            id,
            (routine.start, routine.end),
            &routine.entries,
            self.jump_analysis,
        )?
        .cfg)
    }

    /// Serializes the installed layout of a routine (its instrumentation
    /// plan) for fragment storage. `None` when no layout is installed or
    /// when it cannot round-trip (a snippet carries a placement
    /// call-back).
    pub fn serialize_layout(&self, id: RoutineId) -> Option<Vec<u8>> {
        let routine = self.routines.get(id.0)?;
        fragment::encode_layout(
            self.layouts.get(&id.0)?,
            &self.image,
            (routine.start, routine.end),
        )
    }

    /// Installs a layout serialized by [`Executable::serialize_layout`]
    /// (necessarily from an identical routine in a near-duplicate image),
    /// skipping CFG construction, liveness, and snippet materialization.
    ///
    /// # Errors
    ///
    /// [`EelError::Internal`] when the bytes do not decode; the caller
    /// falls back to the live path.
    pub fn install_serialized_layout(
        &mut self,
        id: RoutineId,
        bytes: &[u8],
    ) -> Result<(), EelError> {
        let layout = fragment::decode_layout(bytes, id, &self.image)
            .ok_or_else(|| EelError::Internal("corrupt serialized layout".into()))?;
        if layout.needs_translator {
            self.dirty = true;
        }
        self.layouts.insert(id.0, layout);
        Ok(())
    }

    /// The content key ([`crate::routine_key`]) of every currently known
    /// routine, in discovery order.
    pub fn routine_keys(&self) -> Vec<u64> {
        self.routines
            .iter()
            .map(|r| fragment::routine_key(&self.image, r))
            .collect()
    }

    /// Installs a routine's (possibly edited) CFG, producing its edited
    /// layout (the paper's `produce_edited_routine`).
    ///
    /// # Errors
    ///
    /// Layout failures: register pressure, translation clashes, bad edit
    /// targets.
    pub fn install_edits(&mut self, cfg: Cfg) -> Result<(), EelError> {
        let id = cfg.routine_id();
        if cfg.edit_count() > 0 {
            self.dirty = true;
        }
        let layout = lay_out_routine(&self.image, cfg)?;
        // A layout that needs run-time translation is observable even
        // with zero edits: installing it commits the rewrite to carry
        // the translator, so the clean fast path must not skip it.
        if layout.needs_translator {
            self.dirty = true;
        }
        self.layouts.insert(id.0, layout);
        Ok(())
    }

    /// Reserves zero-initialized space in the edited executable's data
    /// segment (counter arrays, tool state) and returns its address.
    pub fn reserve_data(&mut self, bytes: u32) -> u32 {
        if bytes > 0 {
            self.dirty = true;
        }
        let base = self.image.data_end() + self.reserved_len;
        self.reserved_len += bytes.next_multiple_of(8);
        base
    }

    /// Reserves initialized data; `bytes` are copied into the edited
    /// executable.
    pub fn reserve_data_init(&mut self, bytes: &[u8]) -> u32 {
        let addr = self.reserve_data(bytes.len() as u32);
        let off = addr - self.image.data_end();
        self.reserved_init.push((off, bytes.to_vec()));
        addr
    }

    /// Adds a run-time routine (assembly fragment) to the edited
    /// executable. Snippets may call it via [`crate::Snippet::with_call`];
    /// Active Memory's handlers and Elsie's simulator calls use this to
    /// add "another program" to the executable (§5).
    pub fn add_runtime_routine(&mut self, name: &str, asm: &str) {
        self.dirty = true;
        self.runtime_routines
            .push((name.to_string(), asm.to_string()));
    }

    /// Marks a routine for removal: [`Executable::write_edited`] omits
    /// its code entirely (§1's *optimization* use of executable editing —
    /// whole-program dead-code elimination that per-file compilers cannot
    /// do). The caller is responsible for unreachability; prefer
    /// [`crate::CallGraph`]-driven tools (`eel-tools`) which refuse when
    /// unknown indirect call sites exist.
    ///
    /// # Errors
    ///
    /// [`EelError::BadRoutine`] for stale ids;
    /// [`EelError::BadEditTarget`] when the routine holds the program's
    /// entry point.
    pub fn remove_routine(&mut self, id: RoutineId) -> Result<(), EelError> {
        let r = self.routines.get(id.0).ok_or(EelError::BadRoutine(id.0))?;
        if r.contains(self.image.entry) {
            return Err(EelError::BadEditTarget(
                "cannot remove the routine containing the entry point".into(),
            ));
        }
        self.dirty = true;
        self.removed.insert(id.0);
        self.layouts.remove(&id.0);
        Ok(())
    }

    /// The edited address corresponding to an original address (valid
    /// after [`Executable::write_edited`]).
    pub fn edited_addr(&self, orig: u32) -> Option<u32> {
        self.addr_map.as_ref()?.get(&orig).copied()
    }

    /// Produces the edited executable: routines not explicitly edited are
    /// rebuilt pass-through, every displacement and dispatch table is
    /// adjusted, and run-time support is appended.
    ///
    /// # Errors
    ///
    /// Any analysis or layout failure; also if called twice.
    pub fn write_edited(&mut self) -> Result<Image, EelError> {
        let _obs = eel_obs::span("core.write_edited");
        if self.written {
            return Err(EelError::Internal(
                "write_edited may only be called once".into(),
            ));
        }
        if !self.analyzed {
            return Err(EelError::NotAnalyzed);
        }
        self.require_sparc("write_edited")?;
        if !self.dirty {
            // Nothing observable was edited: reproduce the input image byte
            // for byte rather than re-laying the program out (which would
            // materialise bss into data and rebuild the symbol table).
            let map: HashMap<u32, u32> = self.image.text_words().map(|(a, _)| (a, a)).collect();
            self.addr_map = Some(map);
            self.written = true;
            return Ok((*self.image).clone());
        }
        // Lay out every remaining routine (discovery may add more).
        loop {
            let pending: Vec<RoutineId> = (0..self.routines.len())
                .map(RoutineId)
                .filter(|id| !self.layouts.contains_key(&id.0) && !self.removed.contains(&id.0))
                .collect();
            if pending.is_empty() {
                break;
            }
            for id in pending {
                if self.layouts.contains_key(&id.0) || self.removed.contains(&id.0) {
                    continue;
                }
                let cfg = self.build_cfg(id)?;
                self.install_edits(cfg)?;
            }
        }

        let mut layouts = std::mem::take(&mut self.layouts);
        for dead in &self.removed {
            layouts.remove(dead);
        }
        let mut order: Vec<usize> = layouts.keys().copied().collect();
        order.sort_by_key(|i| self.routines[*i].start);

        let needs_translator = layouts.values().any(|l| l.needs_translator);
        let total_items: usize = layouts.values().map(|l| l.items.len()).sum();

        // Reserve the translation table before assembling the translator
        // (its address is baked into the code). The table holds the FULL
        // original→edited map: any original text address can live in a
        // register or data word and reach an unanalyzable transfer, so
        // entries-only tables miss function pointers in stripped binaries.
        // Counting the distinct keys walks every item of every layout, so
        // it only happens when some layout actually needs the translator;
        // translator-free edits skip a whole-image pass.
        let xlate_table: Option<(u32, usize)> = if needs_translator {
            let mut keys: std::collections::HashSet<u32> =
                std::collections::HashSet::with_capacity(total_items);
            for layout in layouts.values() {
                for item in &layout.items {
                    match item {
                        Item::MapOrig(a)
                        | Item::Orig { addr: a, .. }
                        | Item::RawWord { addr: a, .. } => {
                            keys.insert(*a);
                        }
                        Item::BranchTo { orig: Some(a), .. }
                        | Item::CallTo { orig: Some(a), .. }
                        | Item::SethiHiOf { orig: Some(a), .. }
                        | Item::OrLoOf { orig: Some(a), .. }
                        | Item::TableWord { orig: Some(a), .. } => {
                            keys.insert(*a);
                        }
                        _ => {}
                    }
                }
            }
            let count = keys.len();
            Some((self.reserve_data(4 + 8 * count as u32), count))
        } else {
            None
        };
        let mut runtime: Vec<(String, String)> = Vec::new();
        if let Some((t, _)) = xlate_table {
            runtime.push((TRANSLATOR.to_string(), translator_asm(t)));
        }
        runtime.extend(self.runtime_routines.iter().cloned());

        // ---- pass 1: sizes and addresses ----------------------------------
        let text_base = self.image.text_addr;
        let mut addr = text_base;
        // (routine idx, item idx) → address; and label tables. The
        // original → edited address map is filled in the same walk (its
        // entries depend only on each item's own address, and first
        // occurrence wins either way); a separate map pass over every
        // item used to cost several ms per whole-image write. Pre-sized:
        // nearly every item contributes one mapping, and the table is
        // large enough (one entry per original text word) that
        // incremental rehashing shows up in whole-image profiles.
        let mut label_addr: HashMap<(usize, usize), u32> = HashMap::new();
        let mut item_addrs: Vec<Vec<u32>> = Vec::new();
        let mut map: HashMap<u32, u32> = HashMap::with_capacity(total_items);
        for &ri in &order {
            let layout = &layouts[&ri];
            let mut addrs = Vec::with_capacity(layout.items.len());
            for item in &layout.items {
                addrs.push(addr);
                match item {
                    Item::Label(l) => {
                        label_addr.insert((ri, *l), addr);
                    }
                    Item::MapOrig(a)
                    | Item::Orig { addr: a, .. }
                    | Item::RawWord { addr: a, .. }
                    | Item::BranchTo { orig: Some(a), .. }
                    | Item::CallTo { orig: Some(a), .. }
                    | Item::SethiHiOf { orig: Some(a), .. }
                    | Item::OrLoOf { orig: Some(a), .. }
                    | Item::TableWord { orig: Some(a), .. } => {
                        map.entry(*a).or_insert(addr);
                    }
                    _ => {}
                }
                addr += item.size(&layout.snippets);
            }
            item_addrs.push(addrs);
        }
        // Runtime routines: size by assembling at base 0 (set-shape is
        // stable), then place.
        let mut runtime_addr: HashMap<String, u32> = HashMap::new();
        let mut runtime_code: Vec<(String, u32, Vec<Insn>)> = Vec::new();
        for (name, src) in &runtime {
            let probe = eel_asm::assemble_fragment(src, 0)
                .map_err(|e| EelError::Internal(format!("runtime routine {name}: {e}")))?;
            runtime_addr.insert(name.clone(), addr);
            runtime_code.push((name.clone(), addr, Vec::new()));
            let _ = probe.len();
            addr += 4 * probe.len() as u32;
        }
        for (name, base, code) in &mut runtime_code {
            let src = &runtime.iter().find(|(n, _)| n == name).unwrap().1;
            *code = eel_asm::assemble_fragment(src, *base)
                .map_err(|e| EelError::Internal(format!("runtime routine {name}: {e}")))?;
        }
        let text_end = addr;
        if text_end > self.image.data_addr && self.image.data_addr > text_base {
            return Err(EelError::LayoutOverflow(format!(
                "edited text ({} bytes) would overlap the data segment",
                text_end - text_base
            )));
        }

        // ---- pass 2: resolve and encode ------------------------------------
        let resolve = |tgt: &Tgt, ri: usize| -> Result<u32, EelError> {
            match tgt {
                Tgt::Local(l) => label_addr
                    .get(&(ri, *l))
                    .copied()
                    .ok_or_else(|| EelError::Internal(format!("unbound label {l}"))),
                Tgt::Orig(a) => map.get(a).copied().ok_or(EelError::BadAddress {
                    addr: *a,
                    expected: "a mapped original address",
                }),
                Tgt::Runtime(name) => runtime_addr
                    .get(name)
                    .copied()
                    .ok_or_else(|| EelError::Internal(format!("unknown runtime routine {name}"))),
            }
        };

        let mut text = Vec::with_capacity((text_end - text_base) as usize);
        let push_word = |text: &mut Vec<u8>, w: u32| text.extend_from_slice(&w.to_be_bytes());
        for (oi, &ri) in order.iter().enumerate() {
            let layout = layouts.get_mut(&ri).expect("layout present");
            for (ii, here) in item_addrs[oi].iter().copied().enumerate() {
                match &layout.items[ii] {
                    Item::Label(_) | Item::MapOrig(_) => {}
                    Item::Orig { insn, .. } => push_word(&mut text, insn.word),
                    Item::New(insn) => push_word(&mut text, insn.word),
                    Item::RawWord { word, .. } => push_word(&mut text, *word),
                    Item::BranchTo {
                        cond,
                        annul,
                        target,
                        ..
                    } => {
                        let t = resolve(target, ri)?;
                        let disp = branch_disp(here, t)?;
                        push_word(
                            &mut text,
                            eel_isa::encode(&Op::Branch {
                                cond: *cond,
                                annul: *annul,
                                disp22: disp,
                                fp: false,
                            }),
                        );
                    }
                    Item::CallTo { target, .. } => {
                        let t = resolve(target, ri)?;
                        let disp = (t.wrapping_sub(here) as i32) >> 2;
                        push_word(&mut text, eel_isa::encode(&Op::Call { disp30: disp }));
                    }
                    Item::SethiHiOf { rd, target, .. } => {
                        let t = resolve(target, ri)?;
                        push_word(&mut text, Builder::sethi_hi(*rd, t).word);
                    }
                    Item::OrLoOf {
                        rd, rs1, target, ..
                    } => {
                        let t = resolve(target, ri)?;
                        push_word(&mut text, Builder::or_lo(*rd, *rs1, t).word);
                    }
                    Item::TableWord { target, .. } => {
                        let t = resolve(target, ri)?;
                        push_word(&mut text, t);
                    }
                    Item::SnippetRef(si) => {
                        let si = *si;
                        // Patch runtime calls, then run the call-back
                        // (which may modify but not resize).
                        let (mut insns, calls, source, assignment) = {
                            let p = &layout.snippets[si];
                            (
                                p.insns.clone(),
                                p.calls.clone(),
                                p.source,
                                p.assignment.clone(),
                            )
                        };
                        for (idx, name) in &calls {
                            let t = resolve(&Tgt::Runtime(name.clone()), ri)?;
                            let site = here + 4 * *idx as u32;
                            let disp = (t.wrapping_sub(site) as i32) >> 2;
                            insns[*idx] =
                                Insn::from_word(eel_isa::encode(&Op::Call { disp30: disp }));
                        }
                        layout.snippet_store[source].run_callback(&mut insns, here, &assignment);
                        for i in &insns {
                            push_word(&mut text, i.word);
                        }
                    }
                }
            }
        }
        for (_, _, code) in &runtime_code {
            for i in code {
                push_word(&mut text, i.word);
            }
        }
        debug_assert_eq!(text.len() as u32, text_end - text_base);

        // ---- data segment ---------------------------------------------------
        let mut data = self.image.data.clone();
        data.extend(std::iter::repeat_n(0, self.image.bss_size as usize));
        let reserved_base = data.len();
        data.extend(std::iter::repeat_n(0, self.reserved_len as usize));
        for (off, bytes) in &self.reserved_init {
            let at = reserved_base + *off as usize;
            data[at..at + bytes.len()].copy_from_slice(bytes);
        }
        if let Some((taddr, count)) = xlate_table {
            let mut pairs: Vec<(u32, u32)> = map.iter().map(|(&o, &n)| (o, n)).collect();
            pairs.sort_unstable();
            debug_assert_eq!(pairs.len(), count);
            let off = (taddr - self.image.data_addr) as usize;
            data[off..off + 4].copy_from_slice(&(pairs.len() as u32).to_be_bytes());
            for (i, (old, new)) in pairs.iter().enumerate() {
                let at = off + 4 + 8 * i;
                data[at..at + 4].copy_from_slice(&old.to_be_bytes());
                data[at + 4..at + 8].copy_from_slice(&new.to_be_bytes());
            }
        }

        // ---- symbols (EEL maintains them for the edited program, §3.1) ----
        let mut symbols: Vec<Symbol> = Vec::new();
        for r in &self.routines {
            if let Some(new) = map.get(&r.start) {
                let mut s = Symbol::routine(&r.name(), *new);
                s.global = !r.hidden;
                symbols.push(s);
            }
        }
        for (name, a) in &runtime_addr {
            symbols.push(Symbol::routine(name, *a));
        }
        for s in &self.image.symbols {
            if self.image.in_data(s.value) {
                symbols.push(s.clone());
            }
        }
        if let Some((t, _)) = xlate_table {
            symbols.push(Symbol::object("__eel_xlate_table", t, 0));
        }

        let entry = *map.get(&self.image.entry).ok_or(EelError::BadAddress {
            addr: self.image.entry,
            expected: "a mapped entry point",
        })?;

        let edited = Image {
            entry,
            text_addr: text_base,
            text,
            data_addr: self.image.data_addr,
            data,
            bss_size: 0,
            symbols,
            machine: self.image.machine,
        };
        edited.validate()?;
        self.addr_map = Some(map);
        self.written = true;
        Ok(edited)
    }
}

fn branch_disp(here: u32, target: u32) -> Result<i32, EelError> {
    let disp = (target.wrapping_sub(here) as i32) >> 2;
    if !(-(1 << 21)..(1 << 21)).contains(&disp) {
        return Err(EelError::LayoutOverflow(format!(
            "branch from {here:#x} to {target:#x} exceeds 22-bit displacement"
        )));
    }
    Ok(disp)
}

/// The run-time address translator: binary-searches the full
/// original→edited address table, mapping `%g6` in place. `%g7` is the
/// call linkage; everything else (including the condition codes, via
/// `%psr`) is preserved using scratch slots below `%sp`.
fn translator_asm(table_addr: u32) -> String {
    format!(
        r#"
__eel_translate:
    st %o0, [%sp - 56]
    st %o1, [%sp - 64]
    st %o2, [%sp - 72]
    st %o3, [%sp - 80]
    st %o4, [%sp - 88]
    st %o5, [%sp - 96]
    rd %psr, %o5
    set {table_addr}, %o0
    ld [%o0], %o1        ! hi = n
    add %o0, 4, %o0      ! pair base
    mov 0, %o2           ! lo
xl_loop:
    cmp %o2, %o1
    bgeu xl_miss
    nop
    add %o2, %o1, %o3
    srl %o3, 1, %o3      ! mid
    sll %o3, 3, %o4
    add %o0, %o4, %o4
    ld [%o4], %o4        ! old[mid]
    cmp %o4, %g6
    be xl_hit
    nop
    bgu xl_upper
    nop
    ba xl_loop
    add %o3, 1, %o2      ! lo = mid + 1
xl_upper:
    ba xl_loop
    mov %o3, %o1         ! hi = mid
xl_hit:
    sll %o3, 3, %o4
    add %o0, %o4, %o4
    ld [%o4 + 4], %g6
    wr %o5, %g0, %psr
    ld [%sp - 56], %o0
    ld [%sp - 64], %o1
    ld [%sp - 72], %o2
    ld [%sp - 80], %o3
    ld [%sp - 88], %o4
    ld [%sp - 96], %o5
    jmpl %g7 + 8, %g0
    nop
xl_miss:
    unimp 1023
"#
    )
}
