//! The routine abstraction (paper §3.2).

/// A named region of the text segment containing instructions (and
/// possibly data), with one or more entry points.
///
/// Routines are discovered by [`crate::Executable::read_contents`]'s
/// symbol-table refinement: symbol-table routines survive stage 1's label
/// cleanup; *hidden* routines are found from call targets (stage 2/3) and
/// trailing unreachable code (stage 4). In a stripped executable the
/// routine set instead comes from `eel-strip`'s inference rules
/// ([`Routine::is_inferred`]); names cannot be recreated (§3.1), so
/// [`Routine::name`] falls back to a synthetic label — `sub_<addr>` for
/// inferred routines (the conventional stripped-binary spelling),
/// `fn_<addr>` for symbol-era routines that merely lack a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routine {
    pub(crate) name: Option<String>,
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) entries: Vec<u32>,
    pub(crate) hidden: bool,
    pub(crate) inferred: bool,
}

impl Routine {
    /// The routine's name: its symbol if one exists, else a synthetic
    /// `sub_<hexaddr>` / `fn_<hexaddr>` (names cannot be recreated for
    /// stripped binaries).
    pub fn name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None if self.inferred => format!("sub_{:x}", self.start),
            None => format!("fn_{:x}", self.start),
        }
    }

    /// Does the routine have a real (symbol-table) name?
    pub fn has_symbol_name(&self) -> bool {
        self.name.is_some()
    }

    /// First address of the routine.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last address (the next routine's start or the text
    /// end).
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.end - self.start
    }

    /// All entry points, ascending. The first is the primary entry;
    /// additional ones come from interprocedural jumps or calls into the
    /// middle (§3.1 stage 3).
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Was this routine absent from the symbol table (discovered by
    /// analysis)?
    pub fn is_hidden(&self) -> bool {
        self.hidden
    }

    /// Did this routine come from inference-based discovery (a stripped
    /// image analyzed by `eel-strip`) rather than the symbol table?
    pub fn is_inferred(&self) -> bool {
        self.inferred
    }

    /// Does this address fall inside the routine?
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}
