//! Indirect-jump resolution (paper §3.3).
//!
//! Most indirect jumps come from `case` statements and jump through a
//! dispatch table. EEL finds the table by computing a backward slice from
//! the jump's registers: a path from the routine's entry to the jump must
//! compute the table's address. The same analysis also recognizes the
//! "indirect jump to a literal value" idiom. When neither resolves, the
//! jump is [`JumpResolution::Unknown`] and the edited program translates
//! the target at run time.
//!
//! The implementation here is a *linear* backward slice: it walks the
//! instruction stream backwards from the jump (crossing one conditional
//! branch to find the bounds check that real compilers emit just before
//! the dispatch), then abstractly evaluates the collected window forward.
//! This resolves the patterns real compilers emit — `sethi`/`or` base
//! construction, `sll` scaling, `ld [base + index]` — while remaining
//! honest: anything else is `Unknown`, never a guess. The full dataflow
//! slicer of Figure 4 lives in [`crate::analysis::slice`].

use eel_exe::Image;
use eel_isa::{AluOp, Category, Cond, Insn, Op, Reg, Src2};
use std::collections::HashMap;

/// A single resolved jump-table target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JumpTarget {
    /// Table slot index.
    pub slot: u32,
    /// Original destination address.
    pub target: u32,
}

/// Outcome of analyzing one indirect jump (or indirect call).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JumpResolution {
    /// The jump dispatches through a table of code addresses.
    Table {
        /// Address of the table (inside the text segment).
        table_addr: u32,
        /// Per-slot original targets (`targets.len()` = entry count).
        targets: Vec<u32>,
        /// Addresses of the instructions materializing the table base
        /// (`sethi`(+`or`)); the editor re-points them at the relocated
        /// table.
        base_insns: Vec<u32>,
    },
    /// The jump goes to a constant address materialized in code.
    Literal {
        /// The original destination.
        target: u32,
        /// Instructions materializing the constant, for re-pointing.
        base_insns: Vec<u32>,
    },
    /// Static analysis failed; run-time translation is required.
    Unknown,
}

/// Abstract value during the forward evaluation of the collected window.
#[derive(Clone, PartialEq, Debug)]
enum Sym {
    /// Unknown contents.
    Top,
    /// A known constant, with the addresses of the instructions that
    /// built it (empty ⇒ built before the window; unpatchable).
    Const(u32, Vec<u32>),
    /// A value loaded from `table + index` where `table` is constant.
    TableLoad { table: u32, base_insns: Vec<u32> },
}

/// How far back the linear walk looks.
const WINDOW: usize = 24;

/// Upper bound on dispatch-table entries when no bounds check is found.
const MAX_SCAN_ENTRIES: u32 = 1024;

/// Resolves the indirect control transfer at `jump_addr` (an `Op::Jmpl`).
///
/// `extent` is the containing routine's `[start, end)`; table targets are
/// validated against the whole text segment but bounds-scanned within it.
///
/// `external_reads` is set (never cleared) when the analysis consulted a
/// word **outside** the extent — a literal load from another routine's
/// text or a dispatch table spilling past the routine boundary. Such a
/// resolution is not a pure function of the routine's own bytes, which
/// disqualifies the routine from per-routine fragment caching
/// ([`crate::routine_key`] only hashes the extent).
pub fn resolve_indirect(
    image: &Image,
    extent: (u32, u32),
    jump_addr: u32,
    jump: Insn,
    external_reads: &mut bool,
) -> JumpResolution {
    let _obs = eel_obs::span("core.cfg.jumptable");
    let Op::Jmpl { rs1, src2, .. } = jump.op else {
        return JumpResolution::Unknown;
    };

    // Collect the linear window of instructions preceding the jump,
    // crossing at most one conditional branch + delay (the bounds check).
    let mut window: Vec<(u32, Insn)> = Vec::new();
    let mut bound: Option<(Reg, u32)> = None;
    let mut addr = jump_addr;
    let mut crossed_branch = false;
    while window.len() < WINDOW && addr > extent.0 {
        addr -= 4;
        let Some(word) = image.word_at(addr) else {
            break;
        };
        let insn = eel_isa::decode(word);
        match insn.category() {
            Category::Computation | Category::Load | Category::Store => {
                window.push((addr, insn));
            }
            Category::Branch if !crossed_branch => {
                // Potential bounds check: `cmp idx, K; bgeu default`. The
                // instruction *at* `addr` is in this branch's delay slot,
                // so drop it from the window (it belongs to the branch).
                crossed_branch = true;
                window.pop();
                if let Op::Branch {
                    cond: Cond::CarryClear | Cond::Gtu,
                    ..
                } = insn.op
                {
                    if addr >= extent.0 + 4 {
                        if let Some(w) = image.word_at(addr - 4) {
                            if let Op::Alu {
                                op: AluOp::Sub,
                                cc: true,
                                rd: Reg::G0,
                                rs1: idx,
                                src2: Src2::Imm(k),
                            } = eel_isa::decode(w).op
                            {
                                if k > 0 {
                                    bound = Some((idx, k as u32));
                                }
                            }
                        }
                    }
                }
                // Keep walking past the cmp.
                addr = addr.saturating_sub(4);
            }
            _ => break,
        }
    }
    window.reverse();

    // Forward abstract evaluation.
    let mut vals: HashMap<Reg, Sym> = HashMap::new();
    let get = |vals: &HashMap<Reg, Sym>, r: Reg| -> Sym {
        if r == Reg::G0 {
            Sym::Const(0, Vec::new())
        } else {
            vals.get(&r).cloned().unwrap_or(Sym::Top)
        }
    };
    for (iaddr, insn) in &window {
        match insn.op {
            Op::Sethi { rd, imm22 } if rd != Reg::G0 => {
                vals.insert(rd, Sym::Const(imm22 << 10, vec![*iaddr]));
            }
            Op::Alu {
                op,
                cc: false,
                rd,
                rs1,
                src2,
            } if rd != Reg::G0 => {
                let a = get(&vals, rs1);
                let b = match src2 {
                    Src2::Reg(r) => get(&vals, r),
                    Src2::Imm(v) => Sym::Const(v as u32, Vec::new()),
                };
                let result = match (op, a, b) {
                    (AluOp::Or | AluOp::Add, Sym::Const(x, xi), Sym::Const(y, yi)) => {
                        // A patchable materialization chain is the
                        // sethi/or idiom building a value in ONE register;
                        // a constant flowing through moves or cross-register
                        // arithmetic keeps its value but loses
                        // patchability (empty insn list), which downgrades
                        // literal jumps to run-time translation.
                        let value = x.wrapping_add_or(op, y);
                        let chain_rd = |addrs: &[u32]| -> Option<Reg> {
                            addrs.last().and_then(|a| {
                                image.word_at(*a).map(|w| match eel_isa::decode(w).op {
                                    Op::Sethi { rd, .. } => rd,
                                    Op::Alu { rd, .. } => rd,
                                    _ => Reg::G0,
                                })
                            })
                        };
                        let insns = match (xi.is_empty(), yi.is_empty()) {
                            (false, true) if chain_rd(&xi) == Some(rd) => {
                                let mut v = xi;
                                v.push(*iaddr);
                                v
                            }
                            (true, false) if chain_rd(&yi) == Some(rd) => {
                                let mut v = yi;
                                v.push(*iaddr);
                                v
                            }
                            _ => Vec::new(),
                        };
                        Sym::Const(value, insns)
                    }
                    _ => Sym::Top,
                };
                vals.insert(rd, result);
            }
            Op::Load {
                width: eel_isa::MemWidth::Word,
                rd,
                rs1,
                src2,
                fp: false,
                ..
            } if rd != Reg::G0 => {
                // `ld [const + idx]` or `ld [idx + const]` is the table
                // access; `ld [const + imm]` from text is a literal load.
                let base = get(&vals, rs1);
                let value = match (base, src2) {
                    (Sym::Const(c, bi), Src2::Reg(r)) if r != Reg::G0 => Sym::TableLoad {
                        table: c,
                        base_insns: bi,
                    },
                    (Sym::Const(c, bi), Src2::Reg(Reg::G0)) | (Sym::Const(c, bi), Src2::Imm(0)) => {
                        // Word-sized constant load; treat as a literal if
                        // the word lies in (immutable) text.
                        match image
                            .in_text(c)
                            .then(|| read_extent_word(image, extent, c, external_reads))
                            .flatten()
                        {
                            Some(w) => Sym::Const(w, bi),
                            None => Sym::Top,
                        }
                    }
                    (s, Src2::Reg(r)) => {
                        // Maybe the index is in rs1 and the table in rs2.
                        match (s, get(&vals, r)) {
                            (_, Sym::Const(c, bi)) => Sym::TableLoad {
                                table: c,
                                base_insns: bi,
                            },
                            _ => Sym::Top,
                        }
                    }
                    _ => Sym::Top,
                };
                vals.insert(rd, value);
            }
            _ => {
                // Anything else clobbers its written registers.
                for r in insn.writes().iter() {
                    vals.insert(r, Sym::Top);
                }
            }
        }
    }

    // Combine rs1 + src2 into the final target value.
    let target_sym = match (get(&vals, rs1), src2) {
        (s, Src2::Imm(0)) | (s, Src2::Reg(Reg::G0)) => s,
        (Sym::Const(c, mut ci), Src2::Imm(v)) => {
            ci.push(jump_addr); // offset folded into the jump itself
            Sym::Const(c.wrapping_add(v as u32), ci)
        }
        (Sym::Const(c, ci), Src2::Reg(r)) => match get(&vals, r) {
            Sym::TableLoad { .. } => get(&vals, r),
            Sym::Const(c2, mut c2i) => {
                c2i.extend(ci);
                Sym::Const(c.wrapping_add(c2), c2i)
            }
            Sym::Top => Sym::Top,
        },
        _ => Sym::Top,
    };

    match target_sym {
        Sym::Const(target, base_insns) => {
            // A known target with an empty instruction list is still a
            // literal — the value flowed through moves or arithmetic that
            // cannot be re-pointed in place, so the *transfer instruction*
            // is replaced instead (a direct call/branch to the new
            // address).
            if target % 4 == 0 && image.in_text(target) {
                JumpResolution::Literal { target, base_insns }
            } else {
                JumpResolution::Unknown
            }
        }
        Sym::TableLoad { table, base_insns } => {
            if base_insns.is_empty() || table % 4 != 0 || !image.in_text(table) {
                return JumpResolution::Unknown;
            }
            let count = match bound {
                Some((_, k)) => k,
                None => scan_entry_count(image, extent, table, external_reads),
            };
            if count == 0 {
                return JumpResolution::Unknown;
            }
            let mut targets = Vec::with_capacity(count as usize);
            for slot in 0..count {
                match read_extent_word(image, extent, table + 4 * slot, external_reads) {
                    Some(t) if t % 4 == 0 && image.in_text(t) => targets.push(t),
                    _ => return JumpResolution::Unknown,
                }
            }
            JumpResolution::Table {
                table_addr: table,
                targets,
                base_insns,
            }
        }
        Sym::Top => JumpResolution::Unknown,
    }
}

/// With no bounds check found, count plausible entries: consecutive words
/// that are aligned addresses inside the routine. The terminating read
/// (the first implausible word) counts as a read too — its value decided
/// where the table ends.
fn scan_entry_count(
    image: &Image,
    extent: (u32, u32),
    table: u32,
    external_reads: &mut bool,
) -> u32 {
    let mut count = 0;
    while count < MAX_SCAN_ENTRIES {
        match read_extent_word(image, extent, table + 4 * count, external_reads) {
            Some(w) if w % 4 == 0 && w >= extent.0 && w < extent.1 => count += 1,
            _ => break,
        }
    }
    count
}

/// [`Image::word_at`], additionally flagging reads outside the routine
/// extent (see [`resolve_indirect`]'s `external_reads`).
fn read_extent_word(
    image: &Image,
    extent: (u32, u32),
    addr: u32,
    external_reads: &mut bool,
) -> Option<u32> {
    if addr < extent.0 || addr >= extent.1 {
        *external_reads = true;
    }
    image.word_at(addr)
}

/// Helper: `or` merges bit-patterns from `sethi`, `add` adds.
trait AluFold {
    fn wrapping_add_or(self, op: AluOp, rhs: u32) -> u32;
}

impl AluFold for u32 {
    fn wrapping_add_or(self, op: AluOp, rhs: u32) -> u32 {
        match op {
            AluOp::Or => self | rhs,
            _ => self.wrapping_add(rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assemble a routine and resolve the indirect jump at `jump_label`.
    fn resolve(asm: &str, jump_label: &str) -> JumpResolution {
        let image = eel_asm::assemble(asm).unwrap();
        let jump_addr = image.find_symbol(jump_label).unwrap().value;
        let insn = eel_isa::decode(image.word_at(jump_addr).unwrap());
        resolve_indirect(
            &image,
            (image.text_addr, image.text_end()),
            jump_addr,
            insn,
            &mut false,
        )
    }

    #[test]
    fn dispatch_table_with_bounds_check() {
        let resolution = resolve(
            r#"
        main:
            cmp %l0, 3
            bgeu default
            nop
            sll %l0, 2, %l0
            set table, %l1
            ld [%l1 + %l0], %l1
        thejump:
            jmp %l1
            nop
        table:
            .word case0, case1, case2
        case0:
            nop
        case1:
            nop
        case2:
            nop
        default:
            retl
            nop
        "#,
            "thejump",
        );
        match resolution {
            JumpResolution::Table {
                targets,
                base_insns,
                ..
            } => {
                assert_eq!(targets.len(), 3);
                assert_eq!(base_insns.len(), 2, "sethi + or: {base_insns:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dispatch_table_without_bounds_check_scans() {
        let resolution = resolve(
            r#"
        main:
            sll %l0, 2, %l0
            set table, %l1
            ld [%l1 + %l0], %l1
        thejump:
            jmp %l1
            nop
        table:
            .word case0, case0
        case0:
            retl
            nop
        "#,
            "thejump",
        );
        match resolution {
            JumpResolution::Table { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn literal_jump_resolves() {
        let resolution = resolve(
            r#"
        main:
            set dest, %g4
        thejump:
            jmp %g4
            nop
        dest:
            retl
            nop
        "#,
            "thejump",
        );
        match resolution {
            JumpResolution::Literal { target, base_insns } => {
                assert_eq!(base_insns.len(), 2, "sethi + or");
                assert!(target > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stack_loaded_target_is_unknown() {
        // The SunPro tail-call pattern: target reloaded from the stack.
        let resolution = resolve(
            r#"
        main:
            ld [%sp + 0], %g4
        thejump:
            jmp %g4
            nop
        "#,
            "thejump",
        );
        assert_eq!(resolution, JumpResolution::Unknown);
    }

    #[test]
    fn register_from_nowhere_is_unknown() {
        let resolution = resolve("main:\nthejump: jmp %o0\n nop\n", "thejump");
        assert_eq!(resolution, JumpResolution::Unknown);
    }

    #[test]
    fn clobbered_base_is_unknown() {
        // The table base register is overwritten by an unknown value
        // before the load.
        let resolution = resolve(
            r#"
        main:
            set table, %l1
            ld [%sp], %l1
            ld [%l1 + %l0], %l1
        thejump:
            jmp %l1
            nop
        table:
            .word main
        "#,
            "thejump",
        );
        assert_eq!(resolution, JumpResolution::Unknown);
    }

    #[test]
    fn bounds_check_limits_entry_count() {
        // Without the bound, the scan would run into the next words; the
        // cmp/bgeu caps it at 2.
        let resolution = resolve(
            r#"
        main:
            cmp %l0, 2
            bgeu default
            nop
            sll %l0, 2, %l0
            set table, %l1
            ld [%l1 + %l0], %l1
        thejump:
            jmp %l1
            nop
        table:
            .word case0, case0, case0, case0
        case0:
            nop
        default:
            retl
            nop
        "#,
            "thejump",
        );
        match resolution {
            JumpResolution::Table { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
