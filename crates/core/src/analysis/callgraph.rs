//! The program call graph (paper §3, footnote: "EEL also supports
//! interprocedural analysis and call graphs").
//!
//! Nodes are routines; edges are call sites (direct calls, resolved
//! indirect calls, and frame-popping tail transfers whose target is
//! known). Unresolved indirect calls are recorded as *unknown* call sites
//! so interprocedural tools know where their information is incomplete.

use crate::executable::{Executable, RoutineId};
use crate::EelError;
use std::collections::{BTreeMap, BTreeSet};

/// One call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallSite {
    /// The calling routine.
    pub caller: RoutineId,
    /// Address of the call/transfer instruction.
    pub site: u32,
    /// The callee, when statically known.
    pub callee: Option<RoutineId>,
}

/// A whole-program call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    sites: Vec<CallSite>,
    callees: BTreeMap<RoutineId, BTreeSet<RoutineId>>,
    callers: BTreeMap<RoutineId, BTreeSet<RoutineId>>,
}

impl CallGraph {
    /// Builds the call graph by analyzing every routine.
    ///
    /// # Errors
    ///
    /// Propagates CFG-construction failures.
    pub fn build(exec: &mut Executable) -> Result<CallGraph, EelError> {
        let mut graph = CallGraph::default();
        for caller in exec.all_routine_ids() {
            let cfg = exec.build_cfg(caller)?;
            let mut sites: Vec<(u32, Option<u32>)> = cfg
                .call_sites()
                .iter()
                .map(|&(a, t)| (a, Some(t)))
                .collect();
            // Unresolved indirect calls.
            for (addr, res) in cfg.indirect_calls.iter().map(|i| (i.addr, &i.resolution)) {
                match res {
                    crate::JumpResolution::Literal { target, .. } => {
                        sites.push((addr, Some(*target)))
                    }
                    _ => sites.push((addr, None)),
                }
            }
            // Tail transfers leaving the routine to a known entry.
            for (addr, res) in cfg.indirect_jumps() {
                if let crate::JumpResolution::Literal { target, .. } = res {
                    if exec.routine_containing(*target) != Some(caller) {
                        sites.push((addr, Some(*target)));
                    }
                }
            }
            for (site, target) in sites {
                let callee = target.and_then(|t| exec.routine_containing(t));
                graph.sites.push(CallSite {
                    caller,
                    site,
                    callee,
                });
                if let Some(callee) = callee {
                    graph.callees.entry(caller).or_default().insert(callee);
                    graph.callers.entry(callee).or_default().insert(caller);
                }
            }
        }
        graph.sites.sort();
        graph.sites.dedup();
        Ok(graph)
    }

    /// All call sites.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Routines this routine calls (statically known).
    pub fn callees(&self, r: RoutineId) -> Vec<RoutineId> {
        self.callees
            .get(&r)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Routines that call this routine.
    pub fn callers(&self, r: RoutineId) -> Vec<RoutineId> {
        self.callers
            .get(&r)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Call sites whose callee is unknown (interprocedural blind spots).
    pub fn unknown_sites(&self) -> Vec<CallSite> {
        self.sites
            .iter()
            .copied()
            .filter(|s| s.callee.is_none())
            .collect()
    }

    /// Is `r` (transitively) reachable from `from` in the call graph?
    pub fn reachable(&self, from: RoutineId, r: RoutineId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == r {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            stack.extend(self.callees(x));
        }
        false
    }

    /// Routines that (transitively) may recurse (lie on a call-graph
    /// cycle).
    pub fn recursive_routines(&self) -> Vec<RoutineId> {
        let mut out = Vec::new();
        for &r in self.callees.keys() {
            if self.callees(r).iter().any(|&c| self.reachable(c, r)) {
                out.push(r);
            }
        }
        out
    }
}
