//! Natural-loop detection from back edges (paper §3.3).

use crate::analysis::dom::Dominators;
use crate::cfg::{BlockId, Cfg, EdgeId};
use std::collections::BTreeSet;

/// A natural loop: a back edge plus the set of blocks that reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// The back edge `latch → header` that defines the loop.
    pub back_edge: EdgeId,
    /// All blocks in the loop body (header included).
    pub blocks: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false (a loop has at least its header).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Does the loop contain this block?
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Finds all natural loops: edges `t → h` where `h` dominates `t`.
///
/// Loops sharing a header are reported separately (one per back edge), as
/// in the classical construction.
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (eid, edge) in cfg.edges.iter().enumerate() {
        let (t, h) = (edge.from, edge.to);
        if !dom.is_reachable(t) || !dom.dominates(h, t) {
            continue;
        }
        // Collect the loop body: h plus all blocks that reach t without
        // passing through h (backward walk from t).
        let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
        blocks.insert(h);
        let mut stack = vec![t];
        while let Some(b) = stack.pop() {
            if !blocks.insert(b) {
                continue;
            }
            for &pe in cfg.block(b).pred() {
                let p = cfg.edge(pe).from;
                if dom.is_reachable(p) {
                    stack.push(p);
                }
            }
        }
        loops.push(NaturalLoop {
            header: h,
            back_edge: EdgeId(eid),
            blocks,
        });
    }
    loops
}
