//! Backward slicing over EEL instructions (paper §3.3 and Figure 4).
//!
//! A backward slice from an instruction's registers finds the instructions
//! that compute a value — the paper uses it to find dispatch tables and,
//! in qpt, to compute *backward address slices* for abstract-execution
//! tracing [Larus 1990]. This module reproduces Figure 4's algorithm,
//! including its three-way marking: **easy** instructions read nothing
//! (constants), **hard** instructions read registers that must be sliced
//! further, and **impossible** instructions read floating-point state (the
//! tracer refuses to follow them).

use crate::cfg::{BlockId, BlockKind, Cfg};
use eel_isa::Reg;
use std::collections::{HashMap, HashSet};

/// Figure 4's instruction classification within a slice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SliceMark {
    /// Reads nothing: can be replayed from the instruction alone.
    Easy,
    /// Reads registers: replaying requires its inputs (sliced further).
    Hard,
    /// Reads floating-point state: not traced.
    Impossible,
}

/// A backward slicer over one CFG, accumulating marks (the paper's
/// `mark_as_easy` / `mark_as_hard` / `mark_as_impossible`).
#[derive(Debug)]
pub struct Slicer<'a> {
    cfg: &'a Cfg,
    marks: HashMap<(BlockId, usize), SliceMark>,
    /// `(block, reg)` pairs whose backward walk from block end has
    /// already been performed (loop termination).
    visited: HashSet<(BlockId, Reg)>,
}

impl<'a> Slicer<'a> {
    /// Creates a slicer for a CFG.
    pub fn new(cfg: &'a Cfg) -> Slicer<'a> {
        Slicer {
            cfg,
            marks: HashMap::new(),
            visited: HashSet::new(),
        }
    }

    /// Computes a backward slice with respect to register `reg`, starting
    /// *above* instruction `idx` of `block`. Returns `true` if a defining
    /// instruction was found on every examined path (the paper's
    /// `backward_slice` returns whether the instruction defined R).
    pub fn backward_slice(&mut self, block: BlockId, idx: usize, reg: Reg) -> bool {
        if reg == Reg::G0 {
            return true; // constant zero needs no slice
        }
        let b = self.cfg.block(block);
        // Walk backwards within the block.
        for i in (0..idx.min(b.insns.len())).rev() {
            let insn = b.insns[i].insn;
            if let Some(found) = self.examine(block, i, reg) {
                return found;
            }
            let _ = insn;
        }
        // Call surrogates define the convention's clobber set.
        if b.kind == BlockKind::CallSurrogate && super::live::call_defs().contains(reg) {
            // The value comes from a callee: hard to replay, but defined.
            return true;
        }
        // Continue into predecessors (from their ends).
        if !self.visited.insert((block, reg)) {
            return true; // already walking this (loop); assume defined
        }
        let preds: Vec<BlockId> = b.pred().iter().map(|&e| self.cfg.edge(e).from).collect();
        if preds.is_empty() {
            return false; // reached entry: an argument or global state
        }
        let mut all = true;
        for p in preds {
            let len = self.cfg.block(p).insns.len();
            all &= self.backward_slice(p, len, reg);
        }
        all
    }

    /// Figure 4's body for one candidate instruction: does instruction
    /// `(block, i)` define `reg`, and if so, how is it marked?
    /// `Some(found)` ends the in-block walk; `None` continues it.
    fn examine(&mut self, block: BlockId, i: usize, reg: Reg) -> Option<bool> {
        let insn = self.cfg.block(block).insns[i].insn;
        if !insn.writes().contains(reg) {
            return None;
        }
        if let Some(mark) = self.marks.get(&(block, i)) {
            // "Already in earlier slice."
            let _ = mark;
            return Some(true);
        }
        if insn.reads_fp() {
            self.marks.insert((block, i), SliceMark::Impossible);
        } else if insn.reads().is_empty() {
            self.marks.insert((block, i), SliceMark::Easy);
        } else {
            self.marks.insert((block, i), SliceMark::Hard);
            for read_reg in insn.reads().iter() {
                self.backward_slice(block, i, read_reg);
            }
        }
        Some(true)
    }

    /// Slices the *address* operands of the memory reference at
    /// instruction `idx` of `block` (the tracer's per-reference entry
    /// point). Returns `false` when some path lacked a definition.
    pub fn slice_address(&mut self, block: BlockId, idx: usize) -> bool {
        let insn = self.cfg.block(block).insns[idx].insn;
        let mut ok = true;
        for reg in insn.address_reads().iter() {
            ok &= self.backward_slice(block, idx, reg);
        }
        ok
    }

    /// The accumulated marks: `((block, index), mark)`.
    pub fn marks(&self) -> impl Iterator<Item = ((BlockId, usize), SliceMark)> + '_ {
        self.marks.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of instructions in the slice so far.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Is the slice empty?
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Count of marks of a given kind.
    pub fn count(&self, mark: SliceMark) -> usize {
        self.marks.values().filter(|&&m| m == mark).count()
    }
}
