//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Dominators underpin EEL's natural-loop detection and give tools a
//! standard way to reason about control structure (§3.3).

use crate::cfg::{BlockId, Cfg};

/// The dominator tree of a [`Cfg`], rooted at the virtual entry block.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b` (`idom[entry] =
    /// entry`); `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators for every block reachable from the entry.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.block_count();
        // Reverse postorder over the successor graph.
        let mut order: Vec<BlockId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Iterative DFS with an explicit post stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry_block(), 0)];
        seen[cfg.entry_block().index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = cfg.block(b).succ();
            if *i < succs.len() {
                let e = succs[*i];
                *i += 1;
                let to = cfg.edge(e).to;
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    stack.push((to, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder

        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in order.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry_block().index()] = Some(cfg.entry_block());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                // Intersect dominators of all processed predecessors.
                let mut new_idom: Option<BlockId> = None;
                for &e in cfg.block(b).pred() {
                    let p = cfg.edge(e).from;
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`None` for unreachable blocks and
    /// for the entry, whose idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Is the block reachable from the entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

fn intersect(idom: &[Option<BlockId>], rpo: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while rpo[a.index()] > rpo[b.index()] {
            a = idom[a.index()].expect("processed pred has idom");
        }
        while rpo[b.index()] > rpo[a.index()] {
            b = idom[b.index()].expect("processed pred has idom");
        }
    }
    a
}
