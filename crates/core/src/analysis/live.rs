//! Live-register analysis (paper §3.3, §3.5).
//!
//! EEL's snippet machinery allocates *dead* registers at each insertion
//! point (register scavenging, §3.5); Blizzard's fast-path optimization
//! depends on knowing whether the condition codes are live (§5). Liveness
//! is a standard backward bit-vector dataflow over [`RegSet`]s.
//!
//! Two pieces of calling-convention knowledge are baked in (the paper
//! notes spawn leaves conventions to "additional processing"):
//!
//! * [`CALL_USES`]/[`CALL_DEFS`] summarize a callee's effect at a
//!   [`BlockKind::CallSurrogate`] block under this system's flat
//!   convention (arguments in `%o0–%o5`, everything caller-saved except
//!   `%sp`/`%fp`/`%i*`).
//! * [`EXIT_LIVE`] is the conservative live set at routine exit.

use crate::cfg::{Block, BlockId, BlockKind, Cfg, EdgeId};
use eel_isa::{Reg, RegSet};

/// Registers a callee may read: its arguments and the stack pointer.
pub fn call_uses() -> RegSet {
    let mut s = RegSet::of(&[Reg::SP, Reg::O7]);
    for i in 8..14 {
        s.insert(Reg(i)); // %o0-%o5
    }
    s
}

/// Registers a callee may clobber under the flat convention: globals,
/// out-registers, locals, condition codes, and `%y`.
pub fn call_defs() -> RegSet {
    let mut s = RegSet::of(&[Reg::ICC, Reg::Y, Reg::O7]);
    for i in 1..8 {
        s.insert(Reg(i)); // %g1-%g7
    }
    for i in 8..14 {
        s.insert(Reg(i)); // %o0-%o5
    }
    for i in 16..24 {
        s.insert(Reg(i)); // %l0-%l7
    }
    s
}

/// Conservatively live at routine exit: the result pair, the stack and
/// frame pointers, the in-registers, and the return path.
pub fn exit_live() -> RegSet {
    let mut s = RegSet::of(&[Reg::O0, Reg(9), Reg::SP, Reg::FP, Reg::O7]);
    for i in 24..32 {
        s.insert(Reg(i)); // %i0-%i7
    }
    s
}

/// Block-level liveness results with point queries.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

fn block_use_def(block: &Block) -> (RegSet, RegSet) {
    if block.kind == BlockKind::CallSurrogate {
        return (call_uses(), call_defs());
    }
    let mut uses = RegSet::new();
    let mut defs = RegSet::new();
    for ia in &block.insns {
        uses = uses.union(ia.insn.reads().without(defs));
        defs = defs.union(ia.insn.writes());
    }
    (uses, defs)
}

impl Liveness {
    /// Runs the backward fixpoint over the whole CFG.
    pub fn compute(cfg: &Cfg) -> Liveness {
        let _obs = eel_obs::span("core.liveness");
        let n = cfg.block_count();
        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        let use_def: Vec<(RegSet, RegSet)> = cfg.blocks.iter().map(block_use_def).collect();
        live_in[cfg.exit_block().index()] = exit_live();

        let mut changed = true;
        while changed {
            changed = false;
            // Iterating in reverse id order approximates reverse topological
            // order well enough; the fixpoint is correct regardless.
            for b in (0..n).rev() {
                if BlockId(b) == cfg.exit_block() {
                    continue;
                }
                let mut out = RegSet::new();
                for &e in &cfg.blocks[b].succs {
                    out = out.union(live_in[cfg.edges[e.index()].to.index()]);
                }
                let (uses, defs) = use_def[b];
                let inn = uses.union(out.without(defs));
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to a block.
    pub fn live_in(&self, b: BlockId) -> RegSet {
        self.live_in[b.index()]
    }

    /// Registers live on exit from a block.
    pub fn live_out(&self, b: BlockId) -> RegSet {
        self.live_out[b.index()]
    }

    /// Registers live immediately *before* instruction `idx` of block `b`.
    pub fn live_before(&self, cfg: &Cfg, b: BlockId, idx: usize) -> RegSet {
        let block = cfg.block(b);
        let mut live = self.live_out[b.index()];
        for ia in block.insns[idx..].iter().rev() {
            live = live.without(ia.insn.writes()).union(ia.insn.reads());
        }
        live
    }

    /// Registers live immediately *after* instruction `idx` of block `b`.
    pub fn live_after(&self, cfg: &Cfg, b: BlockId, idx: usize) -> RegSet {
        self.live_before(cfg, b, idx + 1)
    }

    /// Registers live along an edge (live-in of its destination).
    pub fn live_on_edge(&self, cfg: &Cfg, e: EdgeId) -> RegSet {
        self.live_in[cfg.edge(e).to.index()]
    }
}
