//! Standard CFG analyses (paper §3.3): dominators, natural loops, live
//! registers, and backward slicing. EEL uses them internally (dispatch
//! tables, register scavenging, delay-slot folding) and exposes them as
//! "an analytic basis for building tools".

pub mod callgraph;
pub mod dom;
pub mod jumptable;
pub mod live;
pub mod loops;
pub mod slice;
