//! The library error type.

use std::fmt;

/// Errors from analyzing or editing an executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EelError {
    /// The underlying image is structurally bad.
    BadImage(String),
    /// `read_contents` has not been called yet.
    NotAnalyzed,
    /// An address expected to be inside a routine was not.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// What it was expected to be.
        expected: &'static str,
    },
    /// A routine id that does not name a current routine.
    BadRoutine(usize),
    /// A control-transfer instruction sits in a delay slot — a documented
    /// limitation (the paper notes the normalization "can repeat"; our
    /// compiler never emits this shape, so it is rejected, not mishandled).
    DelaySlotTransfer {
        /// Address of the delay-slot instruction.
        addr: u32,
    },
    /// An edit targeted an uneditable block or edge (§3.3: 15–20% of
    /// blocks/edges transfer control out of the routine and cannot hold
    /// foreign code).
    Uneditable {
        /// What the tool tried to edit.
        what: &'static str,
        /// Its address (block/edge source).
        addr: u32,
    },
    /// An edit referenced a block/edge/instruction not in this CFG.
    BadEditTarget(String),
    /// A snippet needed registers that could not be provided even with
    /// spilling (e.g. it asked for more GPRs than exist).
    RegisterPressure(String),
    /// An indirect jump's target register pair is live-in a way that the
    /// run-time translation stub cannot preserve.
    TranslationClash {
        /// Address of the jump.
        addr: u32,
    },
    /// Layout produced an unencodable displacement even after span
    /// lengthening.
    LayoutOverflow(String),
    /// Internal assembly of synthesized code failed (a library bug
    /// surfaced as an error).
    Internal(String),
}

impl fmt::Display for EelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EelError::BadImage(m) => write!(f, "bad image: {m}"),
            EelError::NotAnalyzed => {
                write!(f, "executable contents not read yet (call read_contents)")
            }
            EelError::BadAddress { addr, expected } => {
                write!(f, "address {addr:#010x} is not {expected}")
            }
            EelError::BadRoutine(i) => write!(f, "no routine with id {i}"),
            EelError::DelaySlotTransfer { addr } => write!(
                f,
                "control transfer in a delay slot at {addr:#010x} (unsupported)"
            ),
            EelError::Uneditable { what, addr } => {
                write!(f, "cannot edit uneditable {what} at {addr:#010x}")
            }
            EelError::BadEditTarget(m) => write!(f, "bad edit target: {m}"),
            EelError::RegisterPressure(m) => write!(f, "snippet register allocation failed: {m}"),
            EelError::TranslationClash { addr } => write!(
                f,
                "indirect jump at {addr:#010x} keeps scratch registers live across the jump"
            ),
            EelError::LayoutOverflow(m) => write!(f, "layout overflow: {m}"),
            EelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EelError {}

impl From<eel_exe::WefError> for EelError {
    fn from(e: eel_exe::WefError) -> EelError {
        EelError::BadImage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        for e in [
            EelError::BadImage("x".into()),
            EelError::NotAnalyzed,
            EelError::BadAddress {
                addr: 4,
                expected: "a routine entry",
            },
            EelError::BadRoutine(7),
            EelError::DelaySlotTransfer { addr: 8 },
            EelError::Uneditable {
                what: "edge",
                addr: 12,
            },
            EelError::BadEditTarget("x".into()),
            EelError::RegisterPressure("x".into()),
            EelError::TranslationClash { addr: 16 },
            EelError::LayoutOverflow("x".into()),
            EelError::Internal("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
