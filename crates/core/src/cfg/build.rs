//! CFG construction with delay-slot normalization (paper §3.3, Figure 3).
//!
//! Construction is two-phase:
//!
//! 1. **Scan** — a worklist reachability pass from the routine's entry
//!    points over the raw instruction stream. Control-transfer sites are
//!    recorded, indirect jumps are resolved ([`resolve_indirect`]) so
//!    dispatch-table targets extend reachability, and table storage is
//!    marked as data.
//! 2. **Materialize** — leaders split the covered addresses into normal
//!    blocks; delay-slot blocks, call surrogates, entry/exit blocks, and
//!    edges are synthesized per the normalization rules; uneditable
//!    blocks/edges are marked.
//!
//! The scan also reports the paper's §3.1 stage-3/4 discoveries to the
//! caller: escape targets (entry points of *other* routines) and a
//! trailing unreachable region (a *hidden routine* candidate).

use super::*;
use crate::analysis::jumptable::resolve_indirect;
use crate::executable::RoutineId;
use eel_exe::Image;
use eel_isa::{Cond, JumpKind, Op};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the builder learned beyond the CFG itself.
pub(crate) struct BuildOutput {
    /// The finished CFG.
    pub cfg: Cfg,
    /// First address of a trailing unreachable valid-code region — a
    /// hidden-routine candidate (§3.1 stage 4).
    pub trailing_unreachable: Option<u32>,
    /// Known control-transfer targets *outside* this routine (new entry
    /// points for the routines containing them, §3.1 stage 3).
    pub escape_targets: Vec<u32>,
    /// Jump analysis read a word outside the extent (a cross-routine
    /// literal load or a dispatch table spilling past the boundary), so
    /// this CFG is not a pure function of the routine's own bytes and
    /// must not be cached under its content key.
    pub external_reads: bool,
}

/// How a scanned control-transfer site behaves.
#[derive(Clone, Debug)]
enum CtiSucc {
    /// Conditional or unconditional PC-relative branch.
    Branch {
        cond: Cond,
        annul: bool,
        /// Taken target (`None` for `bn`, which never takes).
        taken: Option<Target>,
        /// Fall-through address (`None` for `ba`).
        fall: Option<u32>,
    },
    /// Direct call; control resumes after the delay slot.
    Call {
        /// Original target (also recorded in `call_sites`).
        #[allow(dead_code)]
        target: u32,
    },
    /// Indirect call (through a register); `literal` when the slice
    /// resolved the callee (also recorded in `indirect_calls`).
    IndirectCall {
        #[allow(dead_code)]
        literal: Option<u32>,
    },
    /// Subroutine return.
    Return,
    /// Indirect jump with its resolution.
    IndirectJump { resolution: JumpResolution },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    /// Inside this routine.
    In(u32),
    /// In some other routine.
    Out(u32),
}

#[derive(Clone, Debug)]
struct CtiRec {
    #[allow(dead_code)]
    insn: Insn,
    /// The delay-slot instruction, unless the transfer sits at the very
    /// end of the extent.
    delay: Option<Insn>,
    succ: CtiSucc,
}

pub(crate) fn build_cfg(
    image: &Image,
    routine: RoutineId,
    extent: (u32, u32),
    entries: &[u32],
    jump_analysis: bool,
) -> Result<BuildOutput, EelError> {
    let (start, end) = extent;
    let mut leaders: BTreeSet<u32> = entries.iter().copied().collect();
    let mut worklist: Vec<u32> = entries.to_vec();
    let mut scanned: BTreeSet<u32> = BTreeSet::new();
    let mut covered: BTreeSet<u32> = BTreeSet::new();
    let mut ctis: HashMap<u32, CtiRec> = HashMap::new();
    let mut data_ranges: Vec<DataRange> = Vec::new();
    let mut escape_targets: Vec<u32> = Vec::new();
    let mut indirect_jumps: Vec<IndirectJumpInfo> = Vec::new();
    let mut indirect_calls: Vec<IndirectJumpInfo> = Vec::new();
    let mut call_sites: Vec<(u32, u32)> = Vec::new();
    let mut incomplete = false;
    let mut external_reads = false;

    let in_extent = |a: u32| a >= start && a < end;
    let classify = |a: u32| {
        if in_extent(a) {
            Target::In(a)
        } else {
            Target::Out(a)
        }
    };

    // ---- phase 1: scan --------------------------------------------------

    let scan_obs = eel_obs::span("core.cfg.scan");
    while let Some(leader) = worklist.pop() {
        if !scanned.insert(leader) {
            continue;
        }
        let mut pc = leader;
        loop {
            if !in_extent(pc) {
                // Fell off the extent: control flows into the next routine
                // (treated as an escape; extremely unusual).
                if pc == end && pc > start {
                    escape_targets.push(pc);
                }
                break;
            }
            if data_ranges.iter().any(|r| pc >= r.start && pc < r.end) {
                break; // ran into a dispatch table
            }
            if pc != leader && leaders.contains(&pc) {
                break; // merged into another block
            }
            if pc != leader && covered.contains(&pc) {
                // Ran into code another scan already covered; its CTIs and
                // coverage are recorded, so stop here. (Block splitting at
                // branch targets is handled by the leader set.)
                break;
            }
            let Some(word) = image.word_at(pc) else { break };
            let insn = eel_isa::decode(word);
            covered.insert(pc);
            if insn.category() == eel_isa::Category::Invalid {
                // Reachable invalid instruction: the routine contains data
                // (§3.1 stage 4). Dead-end the block.
                break;
            }
            if !insn.is_delayed() {
                pc += 4;
                continue;
            }

            // A delayed control transfer: capture its delay slot.
            let delay_addr = pc + 4;
            let delay = if in_extent(delay_addr) {
                image.word_at(delay_addr).map(eel_isa::decode)
            } else {
                None
            };
            let annulled_always = matches!(
                insn.op,
                Op::Branch {
                    cond: Cond::Always,
                    annul: true,
                    ..
                }
            );
            if let Some(d) = delay {
                if d.is_delayed() && !annulled_always {
                    return Err(EelError::DelaySlotTransfer { addr: delay_addr });
                }
                // The slot word belongs to this transfer even when
                // annulled-always (it just never executes).
                covered.insert(delay_addr);
            }

            let push_leader = |a: u32, worklist: &mut Vec<u32>, leaders: &mut BTreeSet<u32>| {
                if in_extent(a) && leaders.insert(a) {
                    worklist.push(a);
                }
            };

            let succ = match insn.op {
                Op::Branch {
                    cond,
                    annul,
                    disp22,
                    fp,
                } => {
                    if fp {
                        // We never emit FP branches; treat conservatively
                        // as a two-way branch on an unknown condition.
                    }
                    let target_addr = pc.wrapping_add((disp22 as u32) << 2);
                    let taken = if cond == Cond::Never {
                        None
                    } else {
                        let t = classify(target_addr);
                        match t {
                            Target::In(a) => push_leader(a, &mut worklist, &mut leaders),
                            Target::Out(a) => escape_targets.push(a),
                        }
                        Some(t)
                    };
                    let fall = if cond == Cond::Always {
                        None
                    } else {
                        push_leader(pc + 8, &mut worklist, &mut leaders);
                        Some(pc + 8)
                    };
                    CtiSucc::Branch {
                        cond,
                        annul,
                        taken,
                        fall,
                    }
                }
                Op::Call { disp30 } => {
                    let target = pc.wrapping_add((disp30 as u32) << 2);
                    call_sites.push((pc, target));
                    if !in_extent(target) {
                        escape_targets.push(target);
                    } else {
                        // Recursive call to an entry of this routine.
                        escape_targets.push(target);
                    }
                    push_leader(pc + 8, &mut worklist, &mut leaders);
                    CtiSucc::Call { target }
                }
                Op::Jmpl { .. } => match insn.jump_kind() {
                    Some(JumpKind::Return) => CtiSucc::Return,
                    Some(JumpKind::IndirectCall) => {
                        let resolution = if jump_analysis {
                            resolve_indirect(image, extent, pc, insn, &mut external_reads)
                        } else {
                            JumpResolution::Unknown
                        };
                        let literal = match &resolution {
                            JumpResolution::Literal { target, .. } => {
                                escape_targets.push(*target);
                                Some(*target)
                            }
                            _ => None,
                        };
                        indirect_calls.push(IndirectJumpInfo {
                            addr: pc,
                            resolution,
                        });
                        push_leader(pc + 8, &mut worklist, &mut leaders);
                        CtiSucc::IndirectCall { literal }
                    }
                    _ => {
                        let resolution = if jump_analysis {
                            resolve_indirect(image, extent, pc, insn, &mut external_reads)
                        } else {
                            JumpResolution::Unknown
                        };
                        match &resolution {
                            JumpResolution::Table {
                                table_addr,
                                targets,
                                ..
                            } => {
                                let table_end = table_addr + 4 * targets.len() as u32;
                                data_ranges.push(DataRange {
                                    start: *table_addr,
                                    end: table_end.min(end),
                                });
                                for &t in targets {
                                    match classify(t) {
                                        Target::In(a) => {
                                            push_leader(a, &mut worklist, &mut leaders)
                                        }
                                        Target::Out(a) => escape_targets.push(a),
                                    }
                                }
                            }
                            JumpResolution::Literal { target, .. } => match classify(*target) {
                                Target::In(a) => push_leader(a, &mut worklist, &mut leaders),
                                Target::Out(a) => escape_targets.push(a),
                            },
                            JumpResolution::Unknown => incomplete = true,
                        }
                        indirect_jumps.push(IndirectJumpInfo {
                            addr: pc,
                            resolution: resolution.clone(),
                        });
                        CtiSucc::IndirectJump { resolution }
                    }
                },
                _ => unreachable!("is_delayed covers branch/call/jmpl"),
            };
            ctis.insert(pc, CtiRec { insn, delay, succ });
            break;
        }
    }

    // ---- phase 2: materialize blocks (delay-slot normalization) --------

    drop(scan_obs);
    let _obs = eel_obs::span("core.cfg.normalize");
    let mut cfg = Cfg {
        routine,
        blocks: Vec::new(),
        edges: Vec::new(),
        entry: BlockId(0),
        exit: BlockId(0),
        entry_addrs: entries.to_vec(),
        data_ranges: data_ranges.clone(),
        indirect_jumps,
        indirect_calls,
        call_sites,
        incomplete,
        extent,
        edits: Vec::new(),
    };
    let entry = push_block(&mut cfg, BlockKind::Entry, start, true);
    let exit = push_block(&mut cfg, BlockKind::Exit, end, false);
    cfg.entry = entry;
    cfg.exit = exit;

    // Map leader → block id, building normal blocks in address order.
    let mut block_of: BTreeMap<u32, BlockId> = BTreeMap::new();
    let leaders_sorted: Vec<u32> = leaders
        .iter()
        .copied()
        .filter(|a| covered.contains(a))
        .collect();
    for &leader in &leaders_sorted {
        let id = push_block(&mut cfg, BlockKind::Normal, leader, true);
        block_of.insert(leader, id);
    }

    // Fill instructions and record each block's ending CTI (if any).
    #[derive(Clone, Copy)]
    enum Ending {
        Cti(u32),
        FallTo(u32),
        DeadEnd,
    }
    let mut endings: Vec<(BlockId, Ending)> = Vec::new();
    for (i, &leader) in leaders_sorted.iter().enumerate() {
        let bid = block_of[&leader];
        let next_leader = leaders_sorted.get(i + 1).copied();
        let mut pc = leader;
        let ending = loop {
            if Some(pc) == next_leader && pc != leader {
                break Ending::FallTo(pc);
            }
            if !in_extent(pc)
                || data_ranges.iter().any(|r| pc >= r.start && pc < r.end)
                || !covered.contains(&pc)
            {
                break Ending::DeadEnd;
            }
            let word = image.word_at(pc).unwrap_or(0);
            let insn = eel_isa::decode(word);
            cfg.blocks[bid.0].insns.push(InsnAt {
                addr: Some(pc),
                insn,
            });
            if ctis.contains_key(&pc) {
                break Ending::Cti(pc);
            }
            if insn.category() == eel_isa::Category::Invalid {
                break Ending::DeadEnd;
            }
            pc += 4;
        };
        endings.push((bid, ending));
    }

    // Entry edges.
    for &e in entries {
        if let Some(&b) = block_of.get(&e) {
            add_edge(&mut cfg, entry, b, EdgeKind::Fall, true);
        }
    }

    // Successor structure per ending.
    for (bid, ending) in endings {
        match ending {
            Ending::DeadEnd => {}
            Ending::FallTo(a) => {
                if let Some(&to) = block_of.get(&a) {
                    add_edge(&mut cfg, bid, to, EdgeKind::Fall, true);
                }
            }
            Ending::Cti(addr) => {
                let rec = ctis[&addr].clone();
                connect_cti(&mut cfg, &block_of, bid, addr, &rec, exit, in_extent);
            }
        }
    }

    // ---- trailing unreachable region (hidden routine candidate) --------
    let last_used = covered
        .iter()
        .next_back()
        .copied()
        .map(|a| a + 4) // `covered` includes delay-slot words
        .unwrap_or(start);
    let last_data = data_ranges.iter().map(|r| r.end).max().unwrap_or(start);
    let mut tail = last_used.max(last_data).max(start);
    // Skip padding (invalid words) to the first plausible instruction.
    let mut trailing_unreachable = None;
    while tail < end {
        let word = image.word_at(tail).unwrap_or(0);
        if eel_isa::decode(word).category() != eel_isa::Category::Invalid {
            trailing_unreachable = Some(tail);
            break;
        }
        tail += 4;
    }

    escape_targets.sort_unstable();
    escape_targets.dedup();
    Ok(BuildOutput {
        cfg,
        trailing_unreachable,
        escape_targets,
        external_reads,
    })
}

fn push_block(cfg: &mut Cfg, kind: BlockKind, addr: u32, editable: bool) -> BlockId {
    cfg.blocks.push(Block {
        kind,
        addr,
        insns: Vec::new(),
        editable,
        preds: Vec::new(),
        succs: Vec::new(),
    });
    BlockId(cfg.blocks.len() - 1)
}

fn add_edge(cfg: &mut Cfg, from: BlockId, to: BlockId, kind: EdgeKind, editable: bool) -> EdgeId {
    let id = EdgeId(cfg.edges.len());
    cfg.edges.push(Edge {
        from,
        to,
        kind,
        editable,
    });
    cfg.blocks[from.0].succs.push(id);
    cfg.blocks[to.0].preds.push(id);
    id
}

/// Creates a delay-slot block holding `delay` on the way from `from`,
/// returning it (or `from` when there is no delay instruction to place).
fn delay_block(
    cfg: &mut Cfg,
    from: BlockId,
    site: u32,
    delay: Option<Insn>,
    kind: EdgeKind,
    editable: bool,
) -> BlockId {
    match delay {
        Some(d) => {
            let b = push_block(cfg, BlockKind::DelaySlot, site + 4, editable);
            cfg.blocks[b.0].insns.push(InsnAt {
                addr: Some(site + 4),
                insn: d,
            });
            add_edge(cfg, from, b, kind, editable);
            b
        }
        None => from,
    }
}

#[allow(clippy::too_many_arguments)]
fn connect_cti(
    cfg: &mut Cfg,
    block_of: &BTreeMap<u32, BlockId>,
    bid: BlockId,
    addr: u32,
    rec: &CtiRec,
    exit: BlockId,
    in_extent: impl Fn(u32) -> bool,
) {
    let delay = rec.delay;
    // Resolve an in-routine address to its block (present iff covered).
    let target_block = |a: u32| block_of.get(&a).copied();

    match &rec.succ {
        CtiSucc::Branch {
            cond,
            annul,
            taken,
            fall,
        } => {
            // Taken path.
            if let Some(t) = taken {
                // Delay executes on the taken path unless `ba,a`.
                let executes = !(*annul && *cond == Cond::Always);
                let src = if executes {
                    delay_block(cfg, bid, addr, delay, EdgeKind::Taken, true)
                } else {
                    bid
                };
                let kind_from_src = if src == bid {
                    EdgeKind::Taken
                } else {
                    EdgeKind::Fall
                };
                match t {
                    Target::In(a) => {
                        if let Some(tb) = target_block(*a) {
                            add_edge(cfg, src, tb, kind_from_src, true);
                        }
                    }
                    Target::Out(a) => {
                        // Interprocedural branch: escapes the routine.
                        if src != bid {
                            // delay block on an escaping path is uneditable
                            cfg.blocks[src.0].editable = false;
                        }
                        add_edge(cfg, src, exit, EdgeKind::Escape { target: *a }, false);
                    }
                }
            }
            // Fall-through path.
            if let Some(f) = fall {
                // Delay executes on fall-through only if not annulled.
                let src = if !*annul {
                    delay_block(cfg, bid, addr, delay, EdgeKind::Fall, true)
                } else {
                    bid
                };
                if let Some(fb) = target_block(*f) {
                    add_edge(cfg, src, fb, EdgeKind::Fall, true);
                } else if !in_extent(*f) {
                    add_edge(cfg, src, exit, EdgeKind::Escape { target: *f }, false);
                }
            }
        }
        CtiSucc::Call { .. } | CtiSucc::IndirectCall { .. } => {
            // block → delay (uneditable) → surrogate → return site.
            let dly = delay_block(cfg, bid, addr, delay, EdgeKind::CallFlow, false);
            if dly != bid {
                cfg.blocks[dly.0].editable = false;
            }
            let surr = push_block(cfg, BlockKind::CallSurrogate, addr, false);
            add_edge(cfg, dly, surr, EdgeKind::CallFlow, false);
            let ret_site = addr + 8;
            if let Some(rb) = target_block(ret_site) {
                add_edge(cfg, surr, rb, EdgeKind::Fall, true);
            } else {
                // Callee never returns here (e.g. call at extent end).
                add_edge(cfg, surr, exit, EdgeKind::Fall, false);
            }
        }
        CtiSucc::Return => {
            let dly = delay_block(cfg, bid, addr, delay, EdgeKind::ReturnFlow, false);
            if dly != bid {
                cfg.blocks[dly.0].editable = false;
            }
            add_edge(cfg, dly, exit, EdgeKind::ReturnFlow, false);
        }
        CtiSucc::IndirectJump { resolution } => match resolution {
            JumpResolution::Table { targets, .. } => {
                let mut distinct: Vec<u32> = targets.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for t in distinct {
                    let dly = delay_block(cfg, bid, addr, delay, EdgeKind::Table, true);
                    match target_block(t) {
                        Some(tb) => {
                            let kind = if dly == bid {
                                EdgeKind::Table
                            } else {
                                EdgeKind::Fall
                            };
                            add_edge(cfg, dly, tb, kind, true);
                        }
                        None => {
                            if dly != bid {
                                cfg.blocks[dly.0].editable = false;
                            }
                            add_edge(cfg, dly, exit, EdgeKind::Escape { target: t }, false);
                        }
                    }
                }
            }
            JumpResolution::Literal { target, .. } => {
                let dly = delay_block(cfg, bid, addr, delay, EdgeKind::Taken, true);
                match target_block(*target) {
                    Some(tb) => {
                        let kind = if dly == bid {
                            EdgeKind::Taken
                        } else {
                            EdgeKind::Fall
                        };
                        add_edge(cfg, dly, tb, kind, true);
                    }
                    None => {
                        if dly != bid {
                            cfg.blocks[dly.0].editable = false;
                        }
                        add_edge(cfg, dly, exit, EdgeKind::Escape { target: *target }, false);
                    }
                }
            }
            JumpResolution::Unknown => {
                let dly = delay_block(cfg, bid, addr, delay, EdgeKind::RuntimeIndirect, false);
                if dly != bid {
                    cfg.blocks[dly.0].editable = false;
                }
                add_edge(cfg, dly, exit, EdgeKind::RuntimeIndirect, false);
            }
        },
    }
}
