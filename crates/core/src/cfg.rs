//! Control-flow graphs with explicit delay-slot normalization (paper §3.3).
//!
//! A [`Cfg`] represents one routine. Machine-level internal control flow is
//! made explicit so tools never see it:
//!
//! * A **delay-slot instruction** is moved out of the instruction stream
//!   into its own single-instruction [`BlockKind::DelaySlot`] block, placed
//!   on the edge(s) along which it executes — duplicated along both edges
//!   of a non-annulled branch, on the taken edge only for an annulled
//!   branch (Figure 3), and never for `ba,a`.
//! * A **subroutine call** gets a zero-length [`BlockKind::CallSurrogate`]
//!   block standing in for the callee's body, after the call's (uneditable)
//!   delay block.
//! * Virtual [`BlockKind::Entry`]/[`BlockKind::Exit`] blocks anchor the
//!   graph.
//!
//! Blocks and edges that transfer control out of the routine are marked
//! **uneditable** (§3.3 reports 15–20% of blocks/edges are; [`CfgStats`]
//! measures ours).
//!
//! Editing is batch ([`Cfg::delete_insn`], [`Cfg::add_code_before`]/
//! [`Cfg::add_code_after`], [`Cfg::add_code_along`]): edits accumulate
//! without changing the graph, and are applied by
//! [`crate::Executable::install_edits`].

use crate::analysis::jumptable::JumpResolution;
use crate::error::EelError;
use crate::snippet::Snippet;
use eel_isa::{Category, Insn};

mod build;

pub(crate) use build::{build_cfg, BuildOutput};

/// Index of a block within its CFG.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

/// Index of an edge within its CFG.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) usize);

impl BlockId {
    /// Raw index (stable for the life of the CFG).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index (must be `< block_count()`).
    pub fn from_index(i: usize) -> BlockId {
        BlockId(i)
    }
}

impl EdgeId {
    /// Raw index (stable for the life of the CFG).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index (must be `< edge_count()`).
    pub fn from_index(i: usize) -> EdgeId {
        EdgeId(i)
    }
}

/// What kind of block this is (the census in §5's footnote counts these:
/// 12,774 delay-slot blocks, 920 entry/exit, 1,942 call surrogates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockKind {
    /// The virtual routine-entry block (zero-length).
    Entry,
    /// The virtual routine-exit block (zero-length).
    Exit,
    /// An ordinary straight-line block of instructions.
    Normal,
    /// A single duplicated delay-slot instruction living on an edge.
    DelaySlot,
    /// A zero-length placeholder for a callee's body (§3.3).
    CallSurrogate,
}

/// An instruction together with its original address (`None` for
/// synthesized instructions that have no original location).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InsnAt {
    /// Original address in the unedited executable.
    pub addr: Option<u32>,
    /// The instruction.
    pub insn: Insn,
}

/// Why an edge exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Sequential fall-through (or the link from a delay block onward).
    Fall,
    /// The taken direction of a conditional branch or `ba`.
    Taken,
    /// Reached through a dispatch-table entry.
    Table,
    /// The internal linkage around a call: block → delay → surrogate.
    CallFlow,
    /// Return to the exit block.
    ReturnFlow,
    /// Control leaves the routine to a known address (interprocedural
    /// branch or frame-popped tail call with a resolved target).
    Escape {
        /// The (original) destination address in another routine.
        target: u32,
    },
    /// Control leaves through an unanalyzable indirect jump; the edited
    /// program translates the target at run time (§3.3).
    RuntimeIndirect,
}

/// A directed CFG edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Classification.
    pub kind: EdgeKind,
    /// May a tool add code along this edge?
    pub editable: bool,
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Kind (normal / delay-slot / surrogate / entry / exit).
    pub kind: BlockKind,
    /// Representative address: first instruction for normal blocks, the
    /// associated site for synthetic blocks.
    pub addr: u32,
    /// The instructions (empty for zero-length kinds).
    pub insns: Vec<InsnAt>,
    /// May a tool add code inside / delete from this block?
    pub editable: bool,
    pub(crate) preds: Vec<EdgeId>,
    pub(crate) succs: Vec<EdgeId>,
}

impl Block {
    /// Successor edges.
    pub fn succ(&self) -> &[EdgeId] {
        &self.succs
    }

    /// Predecessor edges.
    pub fn pred(&self) -> &[EdgeId] {
        &self.preds
    }

    /// The terminating control transfer, if the block ends in one.
    pub fn terminator(&self) -> Option<InsnAt> {
        self.insns
            .last()
            .copied()
            .filter(|i| i.insn.is_control_transfer())
    }
}

/// How an indirect jump in this CFG resolved.
#[derive(Clone, Debug)]
pub(crate) struct IndirectJumpInfo {
    /// Address of the `jmpl`.
    pub addr: u32,
    /// Outcome of the slicing analysis.
    pub resolution: JumpResolution,
}

/// A range of text-segment addresses identified as data (dispatch tables).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataRange {
    /// First byte.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
}

/// A recorded, not-yet-applied edit (§3.3.1's batch model).
#[derive(Debug)]
pub struct Edit {
    /// Where the edit applies.
    pub point: EditPoint,
    /// The code to insert (`None` = delete the instruction at the point).
    pub snippet: Option<Snippet>,
}

/// Where an edit applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditPoint {
    /// Before the instruction at this original address.
    Before(u32),
    /// After the instruction at this original address.
    After(u32),
    /// Along a CFG edge.
    Edge(EdgeId),
    /// At the very start of a block (used for entry instrumentation).
    BlockStart(BlockId),
}

/// Aggregate CFG statistics (experiments E-BB and E-UE).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CfgStats {
    /// Normal blocks.
    pub normal_blocks: usize,
    /// Delay-slot blocks.
    pub delay_slot_blocks: usize,
    /// Call-surrogate blocks.
    pub call_surrogate_blocks: usize,
    /// Entry + exit blocks.
    pub entry_exit_blocks: usize,
    /// Blocks marked uneditable.
    pub uneditable_blocks: usize,
    /// Total edges.
    pub edges: usize,
    /// Edges marked uneditable.
    pub uneditable_edges: usize,
    /// Instructions across all blocks (delay-slot duplicates counted).
    pub instructions: usize,
}

impl CfgStats {
    /// Total blocks of every kind.
    pub fn total_blocks(&self) -> usize {
        self.normal_blocks
            + self.delay_slot_blocks
            + self.call_surrogate_blocks
            + self.entry_exit_blocks
    }

    /// Fraction of edges that are uneditable (§3.3: 15–20% expected).
    pub fn uneditable_edge_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.uneditable_edges as f64 / self.edges as f64
        }
    }

    /// Merges another routine's stats into a program total.
    pub fn accumulate(&mut self, other: &CfgStats) {
        self.normal_blocks += other.normal_blocks;
        self.delay_slot_blocks += other.delay_slot_blocks;
        self.call_surrogate_blocks += other.call_surrogate_blocks;
        self.entry_exit_blocks += other.entry_exit_blocks;
        self.uneditable_blocks += other.uneditable_blocks;
        self.edges += other.edges;
        self.uneditable_edges += other.uneditable_edges;
        self.instructions += other.instructions;
    }
}

/// The control-flow graph of one routine.
#[derive(Debug)]
pub struct Cfg {
    pub(crate) routine: crate::executable::RoutineId,
    pub(crate) blocks: Vec<Block>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) entry: BlockId,
    pub(crate) exit: BlockId,
    /// Entry points (original addresses) in ascending order.
    pub(crate) entry_addrs: Vec<u32>,
    /// Data ranges discovered inside the routine (dispatch tables).
    pub(crate) data_ranges: Vec<DataRange>,
    /// Indirect jumps and how they resolved.
    pub(crate) indirect_jumps: Vec<IndirectJumpInfo>,
    /// Indirect calls and how their callee resolved (literal or unknown).
    pub(crate) indirect_calls: Vec<IndirectJumpInfo>,
    /// Direct call sites: (call address, original target address).
    pub(crate) call_sites: Vec<(u32, u32)>,
    /// True when some control flow could not be analyzed statically.
    pub(crate) incomplete: bool,
    /// Extent of the routine in the original text segment.
    pub(crate) extent: (u32, u32),
    /// Accumulated edits (batch model).
    pub(crate) edits: Vec<Edit>,
}

impl Cfg {
    /// The routine this CFG describes.
    pub fn routine_id(&self) -> crate::executable::RoutineId {
        self.routine
    }

    /// All blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// An edge by id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Number of blocks (including virtual and synthetic ones).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The virtual entry block.
    pub fn entry_block(&self) -> BlockId {
        self.entry
    }

    /// The virtual exit block.
    pub fn exit_block(&self) -> BlockId {
        self.exit
    }

    /// The routine's entry-point addresses (≥1; Fortran-style multiple
    /// entries appear here, §3.1).
    pub fn entry_addrs(&self) -> &[u32] {
        &self.entry_addrs
    }

    /// Was any control flow unanalyzable (run-time translation needed)?
    pub fn is_incomplete(&self) -> bool {
        self.incomplete
    }

    /// Data ranges (dispatch tables) found inside the routine.
    pub fn data_ranges(&self) -> &[DataRange] {
        &self.data_ranges
    }

    /// Direct call sites `(call_addr, target_addr)`.
    pub fn call_sites(&self) -> &[(u32, u32)] {
        &self.call_sites
    }

    /// How each indirect jump resolved: `(jump_addr, resolution)`.
    pub fn indirect_jumps(&self) -> impl Iterator<Item = (u32, &JumpResolution)> {
        self.indirect_jumps.iter().map(|i| (i.addr, &i.resolution))
    }

    /// The block containing the instruction at `addr`, with its index
    /// within the block. Only normal blocks are searched.
    pub fn block_at(&self, addr: u32) -> Option<(BlockId, usize)> {
        for (i, b) in self.blocks.iter().enumerate() {
            if b.kind != BlockKind::Normal {
                continue;
            }
            if let Some(pos) = b.insns.iter().position(|ia| ia.addr == Some(addr)) {
                return Some((BlockId(i), pos));
            }
        }
        None
    }

    /// Census of blocks, edges, and editability.
    pub fn stats(&self) -> CfgStats {
        let mut s = CfgStats::default();
        for b in &self.blocks {
            match b.kind {
                BlockKind::Normal => s.normal_blocks += 1,
                BlockKind::DelaySlot => s.delay_slot_blocks += 1,
                BlockKind::CallSurrogate => s.call_surrogate_blocks += 1,
                BlockKind::Entry | BlockKind::Exit => s.entry_exit_blocks += 1,
            }
            if !b.editable {
                s.uneditable_blocks += 1;
            }
            s.instructions += b.insns.len();
        }
        s.edges = self.edges.len();
        s.uneditable_edges = self.edges.iter().filter(|e| !e.editable).count();
        s
    }

    // ----- batch editing (§3.3.1) --------------------------------------

    /// Records deletion of the (non-control-transfer) instruction at
    /// `addr`.
    ///
    /// # Errors
    ///
    /// [`EelError::BadEditTarget`] if `addr` is not in an editable normal
    /// block, or names a control transfer (delete would require graph
    /// surgery; restructure with edge edits instead).
    pub fn delete_insn(&mut self, addr: u32) -> Result<(), EelError> {
        let (bid, pos) = self.check_insn_point(addr)?;
        let block = &self.blocks[bid.0];
        if block.insns[pos].insn.is_control_transfer() {
            return Err(EelError::BadEditTarget(format!(
                "cannot delete the control transfer at {addr:#x}"
            )));
        }
        self.edits.push(Edit {
            point: EditPoint::Before(addr),
            snippet: None,
        });
        Ok(())
    }

    /// Records insertion of `snippet` immediately before the instruction
    /// at `addr`.
    ///
    /// # Errors
    ///
    /// [`EelError::BadEditTarget`] / [`EelError::Uneditable`] when the
    /// point cannot hold code.
    pub fn add_code_before(&mut self, addr: u32, snippet: Snippet) -> Result<(), EelError> {
        self.check_insn_point(addr)?;
        self.edits.push(Edit {
            point: EditPoint::Before(addr),
            snippet: Some(snippet),
        });
        Ok(())
    }

    /// Records insertion of `snippet` immediately after the instruction at
    /// `addr`.
    ///
    /// # Errors
    ///
    /// As [`Cfg::add_code_before`]; additionally rejects control transfers
    /// (add along their out-edges instead, as the paper's model does).
    pub fn add_code_after(&mut self, addr: u32, snippet: Snippet) -> Result<(), EelError> {
        let (bid, pos) = self.check_insn_point(addr)?;
        if self.blocks[bid.0].insns[pos].insn.is_control_transfer() {
            return Err(EelError::BadEditTarget(format!(
                "cannot add after the control transfer at {addr:#x}; edit its edges"
            )));
        }
        self.edits.push(Edit {
            point: EditPoint::After(addr),
            snippet: Some(snippet),
        });
        Ok(())
    }

    /// Records insertion of `snippet` along a CFG edge (the paper's
    /// `e->add_code_along`).
    ///
    /// # Errors
    ///
    /// [`EelError::Uneditable`] for uneditable edges.
    pub fn add_code_along(&mut self, edge: EdgeId, snippet: Snippet) -> Result<(), EelError> {
        let e = self
            .edges
            .get(edge.0)
            .ok_or_else(|| EelError::BadEditTarget(format!("no edge {edge:?}")))?;
        if !e.editable {
            return Err(EelError::Uneditable {
                what: "edge",
                addr: self.blocks[e.from.0].addr,
            });
        }
        self.edits.push(Edit {
            point: EditPoint::Edge(edge),
            snippet: Some(snippet),
        });
        Ok(())
    }

    /// Records insertion of `snippet` at the start of a block. For the
    /// virtual entry block this instruments every routine entry.
    ///
    /// # Errors
    ///
    /// [`EelError::Uneditable`] for uneditable blocks;
    /// [`EelError::BadEditTarget`] for delay-slot/surrogate/exit blocks.
    pub fn add_code_at_block_start(
        &mut self,
        block: BlockId,
        snippet: Snippet,
    ) -> Result<(), EelError> {
        let b = self
            .blocks
            .get(block.0)
            .ok_or_else(|| EelError::BadEditTarget(format!("no block {block:?}")))?;
        match b.kind {
            BlockKind::Normal | BlockKind::Entry => {}
            other => {
                return Err(EelError::BadEditTarget(format!(
                    "cannot add at start of {other:?} block; edit its edges"
                )))
            }
        }
        if !b.editable {
            return Err(EelError::Uneditable {
                what: "block",
                addr: b.addr,
            });
        }
        self.edits.push(Edit {
            point: EditPoint::BlockStart(block),
            snippet: Some(snippet),
        });
        Ok(())
    }

    /// Number of edits recorded so far.
    pub fn edit_count(&self) -> usize {
        self.edits.len()
    }

    fn check_insn_point(&self, addr: u32) -> Result<(BlockId, usize), EelError> {
        let (bid, pos) = self.block_at(addr).ok_or_else(|| {
            EelError::BadEditTarget(format!("no instruction at {addr:#x} in this routine"))
        })?;
        let b = &self.blocks[bid.0];
        if !b.editable {
            return Err(EelError::Uneditable {
                what: "block",
                addr,
            });
        }
        Ok((bid, pos))
    }

    /// Convenience for tests and tools: the dynamic successor blocks of a
    /// block, skipping through delay-slot blocks to the "real" target.
    pub fn real_successors(&self, block: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &e in &self.blocks[block.0].succs {
            let mut to = self.edges[e.0].to;
            while self.blocks[to.0].kind == BlockKind::DelaySlot
                || self.blocks[to.0].kind == BlockKind::CallSurrogate
            {
                match self.blocks[to.0].succs.first() {
                    Some(&next) => to = self.edges[next.0].to,
                    None => break,
                }
            }
            out.push(to);
        }
        out
    }

    /// Finds registers that are completely unused by this routine —
    /// never read, never written, and not part of the calling convention
    /// surface. A snippet may use such a register anywhere in the routine
    /// without saving it. (The paper's §3.5 footnote promised "a
    /// mechanism to free a register" in later releases; this is its safe,
    /// whole-routine form.)
    pub fn free_registers(&self) -> eel_isa::RegSet {
        let mut used = eel_isa::RegSet::of(&[
            eel_isa::Reg::G0,
            eel_isa::Reg::SP,
            eel_isa::Reg::FP,
            eel_isa::Reg::O7,
        ]);
        // The convention surface: arguments and results flow through
        // %o0-%o5 and callees may clobber the caller-saved set.
        used = used.union(crate::analysis::live::call_uses());
        used = used.union(crate::analysis::live::call_defs());
        for b in &self.blocks {
            for ia in &b.insns {
                used = used.union(ia.insn.reads()).union(ia.insn.writes());
            }
        }
        eel_isa::RegSet::all_gprs().without(used)
    }

    /// All load/store instruction sites in normal blocks (used by memory
    /// instrumenting tools like Active Memory).
    pub fn memory_sites(&self) -> Vec<InsnAt> {
        let mut out = Vec::new();
        for b in &self.blocks {
            if b.kind != BlockKind::Normal {
                continue;
            }
            for ia in &b.insns {
                if matches!(ia.insn.category(), Category::Load | Category::Store) {
                    out.push(*ia);
                }
            }
        }
        out
    }
}
