//! Producing an edited routine (paper §3.3.1).
//!
//! After a tool records its edits, EEL "produces a new version of the
//! routine that incorporates the changes ... laying out its blocks and
//! snippets to minimize unnecessary jumps and adjusting displacements and
//! addresses in control-transfer instructions". This module performs that
//! per-routine step: it walks the routine's units (blocks, dispatch
//! tables, unreached padding) in original address order and emits
//! position-independent [`Item`]s whose control-transfer targets are
//! symbolic; [`crate::Executable::write_edited`] later assigns final
//! addresses and encodes everything.
//!
//! Key responsibilities reproduced from the paper:
//!
//! * **Delay-slot folding** — unedited transfers keep their delay
//!   instruction in the slot; edited ones get an emptied (`nop`) slot and
//!   the delay instruction is replayed on each outgoing path (stubs),
//!   together with the per-edge snippets.
//! * **Dispatch-table relocation** — the instructions materializing a
//!   table's address are re-pointed at the relocated table, and each slot
//!   is rewritten to the edited target (or to a per-edge stub when the
//!   edge carries instrumentation).
//! * **Run-time translation** — unanalyzable indirect jumps/calls are
//!   rewritten to translate their (original) target through the
//!   `__eel_translate` run-time routine.

use crate::analysis::jumptable::JumpResolution;
use crate::analysis::live::Liveness;
use crate::cfg::{BlockId, BlockKind, Cfg, Edge, EdgeId, EdgeKind, EditPoint};
use crate::error::EelError;
use crate::snippet::{RegAssignment, Snippet};
use eel_exe::Image;
use eel_isa::{Builder, Cond, Insn, Op, Reg, RegSet, Src2};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Name of the run-time translation routine.
pub(crate) const TRANSLATOR: &str = "__eel_translate";

/// A symbolic control-transfer target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Tgt {
    /// A label local to this routine's layout.
    Local(usize),
    /// An original address, resolved through the global old→new map.
    Orig(u32),
    /// A run-time routine added to the edited executable.
    Runtime(String),
}

/// One unit of emitted layout.
#[derive(Debug)]
pub(crate) enum Item {
    /// Binds local label `0` here.
    Label(usize),
    /// Binds the original address (an entry point or instruction) here in
    /// the old→new map, emitting nothing.
    MapOrig(u32),
    /// An original instruction, kept verbatim (and mapped).
    Orig {
        /// The instruction.
        insn: Insn,
        /// Its original address.
        addr: u32,
    },
    /// A synthesized, position-independent instruction.
    New(Insn),
    /// A PC-relative branch to a symbolic target.
    BranchTo {
        cond: Cond,
        annul: bool,
        target: Tgt,
        /// Original address, when this re-encodes an original branch.
        orig: Option<u32>,
    },
    /// A `call` to a symbolic target.
    CallTo { target: Tgt, orig: Option<u32> },
    /// `sethi %hi(target), rd` with a symbolic target.
    SethiHiOf {
        rd: Reg,
        target: Tgt,
        orig: Option<u32>,
    },
    /// `or rs1, %lo(target), rd` with a symbolic target.
    OrLoOf {
        rd: Reg,
        rs1: Reg,
        target: Tgt,
        orig: Option<u32>,
    },
    /// A 32-bit dispatch-table slot holding a symbolic address.
    TableWord { target: Tgt, orig: Option<u32> },
    /// A verbatim data word from the original text segment.
    RawWord { word: u32, addr: u32 },
    /// A materialized snippet (indexes [`RoutineLayout::snippets`]).
    SnippetRef(usize),
}

impl Item {
    /// Size in bytes (labels and map bindings are zero-sized).
    pub(crate) fn size(&self, snippets: &[PlacedSnippet]) -> u32 {
        match self {
            Item::Label(_) | Item::MapOrig(_) => 0,
            Item::SnippetRef(i) => 4 * snippets[*i].insns.len() as u32,
            _ => 4,
        }
    }
}

/// A snippet materialized at a specific placement.
pub(crate) struct PlacedSnippet {
    /// Placement-ready instructions (registers allocated, spill-wrapped).
    pub insns: Vec<Insn>,
    /// The register assignment (for the call-back).
    pub assignment: RegAssignment,
    /// `(index into insns, runtime routine)` calls to patch.
    pub calls: Vec<(usize, String)>,
    /// Which stored snippet this came from (for the call-back).
    pub source: usize,
}

/// The laid-out form of one routine.
pub(crate) struct RoutineLayout {
    /// The routine this lays out.
    #[allow(dead_code)]
    pub routine: crate::executable::RoutineId,
    /// Emission items in order.
    pub items: Vec<Item>,
    /// Placed snippets referenced by [`Item::SnippetRef`].
    pub snippets: Vec<PlacedSnippet>,
    /// The snippet objects (owning call-backs), indexed by
    /// [`PlacedSnippet::source`].
    pub snippet_store: Vec<Snippet>,
    /// Whether this routine requires the run-time translator.
    pub needs_translator: bool,
}

/// Per-address-ordered emission unit.
enum Unit {
    Block(BlockId),
    Table { table_addr: u32, slots: Vec<u32> },
    Raw(u32),
}

/// Lays out one routine from its (possibly edited) CFG.
pub(crate) fn lay_out_routine(image: &Image, mut cfg: Cfg) -> Result<RoutineLayout, EelError> {
    let _obs = eel_obs::span("core.layout");
    let liveness = Liveness::compute(&cfg);
    let mut lay = Layouter {
        image,
        liveness,
        items: Vec::new(),
        placed: Vec::new(),
        snippet_store: Vec::new(),
        labels: 0,
        needs_translator: false,
        block_label: HashMap::new(),
        table_label: HashMap::new(),
        stub_items: Vec::new(),
        before: HashMap::new(),
        after: HashMap::new(),
        deleted: HashSet::new(),
        edge_sn: HashMap::new(),
        block_sn: HashMap::new(),
        entry_sn: Vec::new(),
        base_groups: HashMap::new(),
        table_stubs: HashMap::new(),
    };

    // ---- organize edits --------------------------------------------------
    let edits = std::mem::take(&mut cfg.edits);
    for edit in edits {
        match (edit.point, edit.snippet) {
            (EditPoint::Before(addr), None) => {
                lay.deleted.insert(addr);
            }
            (EditPoint::Before(addr), Some(s)) => {
                let (b, i) = cfg
                    .block_at(addr)
                    .ok_or_else(|| EelError::BadEditTarget(format!("{addr:#x}")))?;
                let live = lay.liveness.live_before(&cfg, b, i);
                let p = lay.place(s, live)?;
                lay.before.entry(addr).or_default().push(p);
            }
            (EditPoint::After(addr), Some(s)) => {
                let (b, i) = cfg
                    .block_at(addr)
                    .ok_or_else(|| EelError::BadEditTarget(format!("{addr:#x}")))?;
                let live = lay.liveness.live_after(&cfg, b, i);
                let p = lay.place(s, live)?;
                lay.after.entry(addr).or_default().push(p);
            }
            (EditPoint::Edge(e), Some(s)) => {
                let live = lay.liveness.live_on_edge(&cfg, e);
                let p = lay.place(s, live)?;
                lay.edge_sn.entry(e).or_default().push(p);
            }
            (EditPoint::BlockStart(b), Some(s)) => {
                if b == cfg.entry_block() {
                    // Entry instrumentation: placed at every entry point.
                    let store = lay.store_snippet(s);
                    lay.entry_sn.push(store);
                } else {
                    let live = lay.liveness.live_in(b);
                    let p = lay.place(s, live)?;
                    lay.block_sn.entry(b).or_default().push(p);
                }
            }
            (_, None) => return Err(EelError::BadEditTarget("delete without address".into())),
        }
    }

    // ---- base-materialization groups (tables & literals) -----------------
    let all_resolutions: Vec<&crate::cfg::IndirectJumpInfo> = cfg
        .indirect_jumps
        .iter()
        .chain(cfg.indirect_calls.iter())
        .collect();
    for info in &all_resolutions {
        let (base_insns, target) = match &info.resolution {
            JumpResolution::Table {
                table_addr,
                base_insns,
                ..
            } => (base_insns.clone(), TgtSpec::Table(*table_addr)),
            JumpResolution::Literal { target, base_insns } => {
                (base_insns.clone(), TgtSpec::Addr(*target))
            }
            JumpResolution::Unknown => continue,
        };
        lay.register_base_group(&cfg, base_insns, target)?;
    }

    // ---- build address-ordered units --------------------------------------
    let mut units: BTreeMap<u32, Unit> = BTreeMap::new();
    let mut used: HashSet<u32> = HashSet::new();
    for (bid, b) in cfg.blocks() {
        if b.kind != BlockKind::Normal || b.insns.is_empty() {
            continue;
        }
        units.insert(b.addr, Unit::Block(bid));
        for ia in &b.insns {
            if let Some(a) = ia.addr {
                used.insert(a);
            }
        }
        // Delay-slot words are consumed by their transfer site.
        if let Some(last) = b.insns.last() {
            if last.insn.is_delayed() {
                if let Some(a) = last.addr {
                    used.insert(a + 4);
                }
            }
        }
    }
    // Dispatch tables (dedup by address).
    let mut tables_seen: HashSet<u32> = HashSet::new();
    for info in &all_resolutions {
        if let JumpResolution::Table {
            table_addr,
            targets,
            ..
        } = &info.resolution
        {
            if tables_seen.insert(*table_addr) {
                units.insert(
                    *table_addr,
                    Unit::Table {
                        table_addr: *table_addr,
                        slots: targets.clone(),
                    },
                );
                for i in 0..targets.len() as u32 {
                    used.insert(table_addr + 4 * i);
                }
            }
        }
    }
    // Unreached words: preserved verbatim.
    let (start, end) = cfg.extent;
    let mut a = start;
    while a < end {
        if !used.contains(&a) && !units.contains_key(&a) {
            units.insert(a, Unit::Raw(a));
        }
        a += 4;
    }

    // Pre-assign block labels.
    let block_ids: Vec<BlockId> = units
        .values()
        .filter_map(|u| match u {
            Unit::Block(b) => Some(*b),
            _ => None,
        })
        .collect();
    for b in block_ids {
        let l = lay.fresh_label();
        lay.block_label.insert(b, l);
    }
    for (addr, u) in &units {
        if matches!(u, Unit::Table { .. }) {
            let l = lay.fresh_label();
            lay.table_label.insert(*addr, l);
        }
    }

    // ---- emit --------------------------------------------------------------
    let ordered: Vec<(u32, Unit)> = {
        let mut v: Vec<(u32, Unit)> = Vec::new();
        for (a, u) in units {
            v.push((a, u));
        }
        v
    };
    for (k, (addr, unit)) in ordered.iter().enumerate() {
        let next_addr = ordered.get(k + 1).map(|(a, _)| *a);
        match unit {
            Unit::Raw(a) => {
                let word = image.word_at(*a).unwrap_or(0);
                lay.items.push(Item::RawWord { word, addr: *a });
            }
            Unit::Table { table_addr, slots } => {
                let label = lay.table_label[table_addr];
                lay.items.push(Item::Label(label));
                for (slot, t) in slots.iter().enumerate() {
                    let target = match lay.table_stubs.get(&(*table_addr, *t)) {
                        Some(stub) => Tgt::Local(*stub),
                        None => lay.code_tgt(&cfg, *t),
                    };
                    lay.items.push(Item::TableWord {
                        target,
                        orig: Some(table_addr + 4 * slot as u32),
                    });
                }
            }
            Unit::Block(bid) => {
                lay.emit_block(&cfg, *bid, *addr, next_addr)?;
            }
        }
    }
    // Append collected stubs.
    let stubs = std::mem::take(&mut lay.stub_items);
    lay.items.extend(stubs);

    Ok(RoutineLayout {
        routine: cfg.routine,
        items: lay.items,
        snippets: lay.placed,
        snippet_store: lay.snippet_store,
        needs_translator: lay.needs_translator,
    })
}

/// What a base-materialization group should point at after relocation.
#[derive(Clone, Debug)]
enum TgtSpec {
    Table(u32),
    Addr(u32),
}

struct Layouter<'a> {
    image: &'a Image,
    liveness: Liveness,
    items: Vec<Item>,
    placed: Vec<PlacedSnippet>,
    snippet_store: Vec<Snippet>,
    labels: usize,
    needs_translator: bool,
    block_label: HashMap<BlockId, usize>,
    table_label: HashMap<u32, usize>,
    stub_items: Vec<Item>,
    before: HashMap<u32, Vec<usize>>,
    after: HashMap<u32, Vec<usize>>,
    deleted: HashSet<u32>,
    edge_sn: HashMap<EdgeId, Vec<usize>>,
    block_sn: HashMap<BlockId, Vec<usize>>,
    entry_sn: Vec<usize>, // snippet_store indices (placed per entry)
    /// insn addr → (group leader addr, rd, target). Only the leader emits.
    base_groups: HashMap<u32, (u32, Reg, TgtSpec)>,
    /// (table_addr, target) → stub label, for edited table edges.
    table_stubs: HashMap<(u32, u32), usize>,
}

impl<'a> Layouter<'a> {
    fn fresh_label(&mut self) -> usize {
        self.labels += 1;
        self.labels - 1
    }

    fn store_snippet(&mut self, s: Snippet) -> usize {
        self.snippet_store.push(s);
        self.snippet_store.len() - 1
    }

    /// Materializes a snippet at a point with the given live set; returns
    /// an index into `placed`.
    fn place(&mut self, s: Snippet, live: RegSet) -> Result<usize, EelError> {
        let store = self.store_snippet(s);
        self.place_stored(store, live)
    }

    fn place_stored(&mut self, store: usize, live: RegSet) -> Result<usize, EelError> {
        let (insns, assignment, calls) = self.snippet_store[store].materialize(live)?;
        self.placed.push(PlacedSnippet {
            insns,
            assignment,
            calls,
            source: store,
        });
        Ok(self.placed.len() - 1)
    }

    fn emit_placements(&mut self, list: &[usize]) {
        for &p in list {
            self.items.push(Item::SnippetRef(p));
        }
    }

    /// The symbolic target for an original code address: a local label if
    /// it starts a block here, else a global original address.
    fn code_tgt(&self, cfg: &Cfg, addr: u32) -> Tgt {
        for (bid, b) in cfg.blocks() {
            if b.kind == BlockKind::Normal && b.addr == addr && !b.insns.is_empty() {
                if let Some(l) = self.block_label.get(&bid) {
                    return Tgt::Local(*l);
                }
            }
        }
        Tgt::Orig(addr)
    }

    /// Registers a `sethi`(+`or`) materialization group for re-pointing.
    fn register_base_group(
        &mut self,
        cfg: &Cfg,
        mut base_insns: Vec<u32>,
        target: TgtSpec,
    ) -> Result<(), EelError> {
        base_insns.sort_unstable();
        base_insns.dedup();
        if base_insns.is_empty() {
            return Ok(());
        }
        // Determine the destination register from the last materializing
        // instruction; all must agree.
        let mut rd = None;
        for &a in &base_insns {
            let word = self.image.word_at(a).ok_or(EelError::BadAddress {
                addr: a,
                expected: "a text address (base materialization)",
            })?;
            let r = match eel_isa::decode(word).op {
                Op::Sethi { rd, .. } => rd,
                Op::Alu { rd, .. } => rd,
                other => {
                    return Err(EelError::Internal(format!(
                        "unexpected base-materializing instruction {other:?} at {a:#x}"
                    )))
                }
            };
            match rd {
                None => rd = Some(r),
                Some(prev) if prev == r => {}
                Some(prev) => {
                    return Err(EelError::Internal(format!(
                        "base materialization splits registers {prev} vs {r}"
                    )))
                }
            }
        }
        let _ = cfg;
        let leader = base_insns[0];
        let rd = rd.expect("nonempty group");
        for a in base_insns {
            self.base_groups.insert(a, (leader, rd, target.clone()));
        }
        Ok(())
    }

    fn base_tgt(&self, cfg: &Cfg, spec: &TgtSpec) -> Tgt {
        match spec {
            TgtSpec::Table(t) => Tgt::Local(self.table_label[t]),
            TgtSpec::Addr(a) => self.code_tgt(cfg, *a),
        }
    }

    // ---- block emission ---------------------------------------------------

    fn emit_block(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        next_unit_addr: Option<u32>,
    ) -> Result<(), EelError> {
        let label = self.block_label[&bid];
        self.items.push(Item::Label(label));
        let block = cfg.block(bid).clone();

        // Entry points bind here; entry snippets are placed per entry.
        if cfg.entry_addrs.contains(&addr) {
            self.items.push(Item::MapOrig(addr));
            let entry_stores: Vec<usize> = self.entry_sn.clone();
            for store in entry_stores {
                let live = self.liveness.live_in(bid);
                let p = self.place_stored(store, live)?;
                self.items.push(Item::SnippetRef(p));
            }
        }
        if let Some(list) = self.block_sn.get(&bid).cloned() {
            self.emit_placements(&list);
        }

        let n = block.insns.len();
        for (i, ia) in block.insns.iter().enumerate() {
            let iaddr = ia.addr.expect("normal block instruction has an address");
            if let Some(list) = self.before.get(&iaddr).cloned() {
                self.emit_placements(&list);
            }
            let is_term = i == n - 1 && ia.insn.is_control_transfer();
            if is_term {
                self.emit_terminator(cfg, bid, iaddr, ia.insn, next_unit_addr)?;
                break;
            }
            if !self.deleted.contains(&iaddr) {
                if let Some((leader, rd, spec)) = self.base_groups.get(&iaddr).cloned() {
                    if iaddr == leader {
                        let target = self.base_tgt(cfg, &spec);
                        self.items.push(Item::SethiHiOf {
                            rd,
                            target: target.clone(),
                            orig: Some(iaddr),
                        });
                        self.items.push(Item::OrLoOf {
                            rd,
                            rs1: rd,
                            target,
                            orig: None,
                        });
                    }
                    // Non-leader group members vanish (folded into the pair).
                } else {
                    self.items.push(Item::Orig {
                        insn: ia.insn,
                        addr: iaddr,
                    });
                }
            } else {
                self.items.push(Item::MapOrig(iaddr));
            }
            if let Some(list) = self.after.get(&iaddr).cloned() {
                self.emit_placements(&list);
            }
        }

        // Blocks that do not end in a control transfer fall through.
        let ends_with_cti = block
            .insns
            .last()
            .map(|ia| ia.insn.is_control_transfer())
            .unwrap_or(false);
        if !ends_with_cti {
            // Find the fall edge, if any.
            let fall = block.succs.iter().find_map(|&e| {
                let edge = cfg.edge(e);
                (edge.kind == EdgeKind::Fall).then_some((e, edge.to))
            });
            if let Some((e, to)) = fall {
                if let Some(list) = self.edge_sn.get(&e).cloned() {
                    self.emit_placements(&list);
                }
                let to_addr = cfg.block(to).addr;
                if next_unit_addr != Some(to_addr) {
                    let tgt = self.code_tgt(cfg, to_addr);
                    self.items.push(Item::BranchTo {
                        cond: Cond::Always,
                        annul: false,
                        target: tgt,
                        orig: None,
                    });
                    self.items.push(Item::New(Builder::nop()));
                }
            }
        }
        Ok(())
    }

    // ---- terminator emission ------------------------------------------------

    /// Walks one outgoing path: `bid --e1--> [delay] --e2--> dest`.
    fn walk_path(&self, cfg: &Cfg, e1: EdgeId) -> (Vec<EdgeId>, Option<Insn>, PathDest) {
        let mut edges = vec![e1];
        let edge = cfg.edge(e1);
        let to = cfg.block(edge.to);
        if to.kind == BlockKind::DelaySlot {
            let delay = to.insns.first().map(|ia| ia.insn);
            match to.succs.first() {
                Some(&e2) => {
                    edges.push(e2);
                    let edge2 = cfg.edge(e2);
                    (edges, delay, self.edge_dest(cfg, edge2))
                }
                None => (edges, delay, PathDest::DeadEnd),
            }
        } else {
            (edges, None, self.edge_dest(cfg, edge))
        }
    }

    fn edge_dest(&self, cfg: &Cfg, edge: &Edge) -> PathDest {
        match edge.kind {
            EdgeKind::Escape { target } => PathDest::Escape(target),
            EdgeKind::RuntimeIndirect => PathDest::Runtime,
            _ if edge.to == cfg.exit_block() => PathDest::Exit,
            _ => PathDest::Block(edge.to),
        }
    }

    fn path_snippets(&self, edges: &[EdgeId]) -> Vec<usize> {
        let mut out = Vec::new();
        for e in edges {
            if let Some(list) = self.edge_sn.get(e) {
                out.extend(list.iter().copied());
            }
        }
        out
    }

    fn dest_tgt(&self, _cfg: &Cfg, dest: &PathDest) -> Tgt {
        match dest {
            PathDest::Block(b) => Tgt::Local(self.block_label[b]),
            PathDest::Escape(t) => Tgt::Orig(*t),
            _ => Tgt::Orig(0),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_terminator(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        insn: Insn,
        next_unit_addr: Option<u32>,
    ) -> Result<(), EelError> {
        match insn.op {
            Op::Branch { cond, annul, .. } => {
                self.emit_branch(cfg, bid, addr, insn, cond, annul, next_unit_addr)
            }
            Op::Call { .. } => self.emit_call(cfg, bid, addr, insn, None),
            Op::Jmpl { .. } => match insn.jump_kind() {
                Some(eel_isa::JumpKind::Return) => self.emit_return(cfg, bid, addr, insn),
                Some(eel_isa::JumpKind::IndirectCall) => {
                    let res = cfg
                        .indirect_calls
                        .iter()
                        .find(|r| r.addr == addr)
                        .map(|r| r.resolution.clone())
                        .unwrap_or(JumpResolution::Unknown);
                    self.emit_call(cfg, bid, addr, insn, Some(res))
                }
                _ => self.emit_indirect_jump(cfg, bid, addr, insn),
            },
            other => Err(EelError::Internal(format!("non-terminator {other:?}"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_branch(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        _insn: Insn,
        cond: Cond,
        annul: bool,
        next_unit_addr: Option<u32>,
    ) -> Result<(), EelError> {
        let block = cfg.block(bid);
        let taken = block
            .succs
            .iter()
            .find(|&&e| cfg.edge(e).kind == EdgeKind::Taken)
            .copied();
        let fall = block
            .succs
            .iter()
            .find(|&&e| cfg.edge(e).kind == EdgeKind::Fall)
            .copied();

        let taken_path = taken.map(|e| self.walk_path(cfg, e));
        let fall_path = fall.map(|e| self.walk_path(cfg, e));
        let delay_insn = taken_path
            .as_ref()
            .and_then(|(_, d, _)| *d)
            .or_else(|| fall_path.as_ref().and_then(|(_, d, _)| *d));

        let edited = taken_path
            .as_ref()
            .map(|(es, _, _)| !self.path_snippets(es).is_empty())
            .unwrap_or(false)
            || fall_path
                .as_ref()
                .map(|(es, _, _)| !self.path_snippets(es).is_empty())
                .unwrap_or(false);

        if !edited {
            // Fold the delay instruction back into the slot (§3.3).
            let target = match &taken_path {
                Some((_, _, dest)) => self.dest_tgt(cfg, dest),
                None => Tgt::Local(self.block_label[&bid]), // `bn`: target unused
            };
            self.items.push(Item::BranchTo {
                cond,
                annul,
                target,
                orig: Some(addr),
            });
            match delay_insn {
                Some(d) => self.items.push(Item::Orig {
                    insn: d,
                    addr: addr + 4,
                }),
                None => self.items.push(Item::New(Builder::nop())),
            }
            // Fall continuation.
            if let Some((_, _, dest)) = &fall_path {
                self.emit_fall_continuation(cfg, dest, next_unit_addr);
            }
            return Ok(());
        }

        // Edited: split the paths.
        match cond {
            Cond::Always => {
                let (edges, delay, dest) = taken_path.expect("ba has a taken path");
                let sn = self.path_snippets(&edges);
                self.emit_placements(&sn);
                // `ba,a` never executes its delay slot.
                if !annul {
                    if let Some(d) = delay {
                        self.items.push(Item::Orig {
                            insn: d,
                            addr: addr + 4,
                        });
                    }
                }
                let target = self.dest_tgt(cfg, &dest);
                self.items.push(Item::BranchTo {
                    cond: Cond::Always,
                    annul: false,
                    target,
                    orig: Some(addr),
                });
                self.items.push(Item::New(Builder::nop()));
            }
            Cond::Never => {
                let (edges, delay, dest) = fall_path.expect("bn has a fall path");
                let sn = self.path_snippets(&edges);
                self.emit_placements(&sn);
                if !annul {
                    if let Some(d) = delay {
                        self.items.push(Item::Orig {
                            insn: d,
                            addr: addr + 4,
                        });
                    }
                }
                self.items.push(Item::MapOrig(addr));
                self.emit_fall_continuation(cfg, &dest, next_unit_addr);
            }
            _ => {
                let stub = self.fresh_label();
                self.items.push(Item::BranchTo {
                    cond,
                    annul: false,
                    target: Tgt::Local(stub),
                    orig: Some(addr),
                });
                self.items.push(Item::New(Builder::nop()));
                // Fall path inline.
                if let Some((edges, delay, dest)) = &fall_path {
                    let sn = self.path_snippets(edges);
                    self.emit_placements(&sn);
                    if !annul {
                        if let Some(d) = delay {
                            self.items.push(Item::Orig {
                                insn: *d,
                                addr: addr + 4,
                            });
                        }
                    }
                    self.emit_fall_continuation(cfg, dest, next_unit_addr);
                }
                // Taken path out of line.
                if let Some((edges, delay, dest)) = &taken_path {
                    let mut stub_items = vec![Item::Label(stub)];
                    let sn = self.path_snippets(edges);
                    for p in sn {
                        stub_items.push(Item::SnippetRef(p));
                    }
                    if let Some(d) = delay {
                        stub_items.push(Item::Orig {
                            insn: *d,
                            addr: addr + 4,
                        });
                    }
                    let target = self.dest_tgt(cfg, dest);
                    stub_items.push(Item::BranchTo {
                        cond: Cond::Always,
                        annul: false,
                        target,
                        orig: None,
                    });
                    stub_items.push(Item::New(Builder::nop()));
                    self.stub_items.extend(stub_items);
                }
            }
        }
        Ok(())
    }

    fn emit_fall_continuation(&mut self, cfg: &Cfg, dest: &PathDest, next_unit_addr: Option<u32>) {
        match dest {
            PathDest::Block(b) => {
                let to_addr = cfg.block(*b).addr;
                if next_unit_addr != Some(to_addr) {
                    self.items.push(Item::BranchTo {
                        cond: Cond::Always,
                        annul: false,
                        target: Tgt::Local(self.block_label[b]),
                        orig: None,
                    });
                    self.items.push(Item::New(Builder::nop()));
                }
            }
            PathDest::Escape(t) => {
                self.items.push(Item::BranchTo {
                    cond: Cond::Always,
                    annul: false,
                    target: Tgt::Orig(*t),
                    orig: None,
                });
                self.items.push(Item::New(Builder::nop()));
            }
            PathDest::Exit | PathDest::Runtime | PathDest::DeadEnd => {}
        }
    }

    /// Calls (direct, and indirect with/without a resolved literal).
    fn emit_call(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        insn: Insn,
        indirect: Option<JumpResolution>,
    ) -> Result<(), EelError> {
        let block = cfg.block(bid);
        // Chain: bid → delay? → surrogate → return block.
        let e1 = block
            .succs
            .iter()
            .find(|&&e| cfg.edge(e).kind == EdgeKind::CallFlow)
            .copied()
            .ok_or_else(|| EelError::Internal(format!("call at {addr:#x} has no flow edge")))?;
        let mut cur = cfg.edge(e1).to;
        let mut delay = None;
        if cfg.block(cur).kind == BlockKind::DelaySlot {
            delay = cfg.block(cur).insns.first().map(|ia| ia.insn);
            cur = cfg
                .block(cur)
                .succs
                .first()
                .map(|&e| cfg.edge(e).to)
                .ok_or_else(|| EelError::Internal("dangling call delay".into()))?;
        }
        // `cur` is the surrogate; its out-edge leads to the return block.
        let ret_edge = cfg.block(cur).succs.first().copied();

        match insn.op {
            Op::Call { .. } => {
                let target = cfg
                    .call_sites
                    .iter()
                    .find(|(a, _)| *a == addr)
                    .map(|(_, t)| *t)
                    .ok_or_else(|| EelError::Internal(format!("unrecorded call {addr:#x}")))?;
                self.items.push(Item::CallTo {
                    target: Tgt::Orig(target),
                    orig: Some(addr),
                });
                match delay {
                    Some(d) => self.items.push(Item::Orig {
                        insn: d,
                        addr: addr + 4,
                    }),
                    None => self.items.push(Item::New(Builder::nop())),
                }
            }
            Op::Jmpl { rd: _, rs1, src2 } => {
                match indirect {
                    Some(JumpResolution::Literal { target, base_insns }) => {
                        if base_insns.is_empty() {
                            // Known callee but no patchable materialization:
                            // replace the jmpl with a direct call (§3.3's
                            // literal-jump resolution; the dead register
                            // still holds the old address, harmlessly).
                            self.items.push(Item::CallTo {
                                target: Tgt::Orig(target),
                                orig: Some(addr),
                            });
                        } else {
                            // Base instructions were re-pointed at the new
                            // address; the jmpl is position-independent.
                            self.items.push(Item::Orig { insn, addr });
                        }
                        match delay {
                            Some(d) => self.items.push(Item::Orig {
                                insn: d,
                                addr: addr + 4,
                            }),
                            None => self.items.push(Item::New(Builder::nop())),
                        }
                    }
                    _ => {
                        // Run-time translation: the register holds an
                        // ORIGINAL address.
                        self.emit_translated_transfer(addr, rs1, src2, delay, /*link=*/ true)?;
                    }
                }
            }
            other => return Err(EelError::Internal(format!("emit_call on {other:?}"))),
        }

        // Snippets on the surrogate → return edge go right after the call.
        if let Some(e) = ret_edge {
            if let Some(list) = self.edge_sn.get(&e).cloned() {
                self.emit_placements(&list);
            }
            // Continue to the return block (normally the next unit).
            // The return block is addr+8, which is emitted next in
            // address order, so no explicit jump is needed; if the return
            // site is elsewhere (odd layouts), branch explicitly.
            let dest = self.edge_dest(cfg, cfg.edge(e));
            if let PathDest::Block(b) = dest {
                let to_addr = cfg.block(b).addr;
                if to_addr != addr + 8 {
                    self.items.push(Item::BranchTo {
                        cond: Cond::Always,
                        annul: false,
                        target: Tgt::Local(self.block_label[&b]),
                        orig: None,
                    });
                    self.items.push(Item::New(Builder::nop()));
                }
            }
        }
        Ok(())
    }

    fn emit_return(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        insn: Insn,
    ) -> Result<(), EelError> {
        let _ = &insn;
        let block = cfg.block(bid);
        let delay = block
            .succs
            .iter()
            .map(|&e| cfg.edge(e).to)
            .find(|b| cfg.block(*b).kind == BlockKind::DelaySlot)
            .and_then(|b| cfg.block(b).insns.first().map(|ia| ia.insn));
        self.items.push(Item::Orig { insn, addr });
        match delay {
            Some(d) => self.items.push(Item::Orig {
                insn: d,
                addr: addr + 4,
            }),
            None => self.items.push(Item::New(Builder::nop())),
        }
        Ok(())
    }

    fn emit_indirect_jump(
        &mut self,
        cfg: &Cfg,
        bid: BlockId,
        addr: u32,
        insn: Insn,
    ) -> Result<(), EelError> {
        let resolution = cfg
            .indirect_jumps
            .iter()
            .find(|r| r.addr == addr)
            .map(|r| r.resolution.clone())
            .unwrap_or(JumpResolution::Unknown);
        let block = cfg.block(bid).clone();

        match resolution {
            JumpResolution::Table {
                table_addr,
                targets,
                ..
            } => {
                // Gather per-target paths.
                let mut per_target: Vec<(u32, Vec<EdgeId>, Option<Insn>)> = Vec::new();
                for &e in &block.succs {
                    let (edges, delay, dest) = self.walk_path(cfg, e);
                    let t = match dest {
                        PathDest::Block(b) => cfg.block(b).addr,
                        PathDest::Escape(t) => t,
                        _ => continue,
                    };
                    per_target.push((t, edges, delay));
                }
                let delay_insn = per_target.iter().find_map(|(_, _, d)| *d);
                let any_edits = per_target
                    .iter()
                    .any(|(_, es, _)| !self.path_snippets(es).is_empty());

                if !any_edits {
                    self.items.push(Item::Orig { insn, addr });
                    match delay_insn {
                        Some(d) => self.items.push(Item::Orig {
                            insn: d,
                            addr: addr + 4,
                        }),
                        None => self.items.push(Item::New(Builder::nop())),
                    }
                } else {
                    // Empty the slot; each target gets a stub replaying the
                    // delay instruction plus its edge snippets.
                    self.items.push(Item::Orig { insn, addr });
                    self.items.push(Item::New(Builder::nop()));
                    for (t, edges, _) in &per_target {
                        let stub = self.fresh_label();
                        self.table_stubs.insert((table_addr, *t), stub);
                        let mut si = vec![Item::Label(stub)];
                        for p in self.path_snippets(edges) {
                            si.push(Item::SnippetRef(p));
                        }
                        if let Some(d) = delay_insn {
                            si.push(Item::Orig {
                                insn: d,
                                addr: addr + 4,
                            });
                        }
                        si.push(Item::BranchTo {
                            cond: Cond::Always,
                            annul: false,
                            target: self.code_tgt(cfg, *t),
                            orig: None,
                        });
                        si.push(Item::New(Builder::nop()));
                        self.stub_items.extend(si);
                    }
                }
                let _ = targets;
            }
            JumpResolution::Literal { target, base_insns } => {
                // Edge snippets (single known target) go before the jump.
                for &e in &block.succs {
                    let (edges, _, _) = self.walk_path(cfg, e);
                    let sn = self.path_snippets(&edges);
                    self.emit_placements(&sn);
                }
                let delay = block
                    .succs
                    .iter()
                    .map(|&e| cfg.edge(e).to)
                    .find(|b| cfg.block(*b).kind == BlockKind::DelaySlot)
                    .and_then(|b| cfg.block(b).insns.first().map(|ia| ia.insn));
                if base_insns.is_empty() {
                    // Unpatchable materialization: replace the jump with a
                    // direct branch to the (relocated) literal target.
                    self.items.push(Item::BranchTo {
                        cond: Cond::Always,
                        annul: false,
                        target: self.code_tgt(cfg, target),
                        orig: Some(addr),
                    });
                } else {
                    self.items.push(Item::Orig { insn, addr });
                }
                match delay {
                    Some(d) => self.items.push(Item::Orig {
                        insn: d,
                        addr: addr + 4,
                    }),
                    None => self.items.push(Item::New(Builder::nop())),
                }
            }
            JumpResolution::Unknown => {
                let Op::Jmpl { rs1, src2, .. } = insn.op else {
                    return Err(EelError::Internal("indirect jump is not jmpl".into()));
                };
                let delay = block
                    .succs
                    .iter()
                    .map(|&e| cfg.edge(e).to)
                    .find(|b| cfg.block(*b).kind == BlockKind::DelaySlot)
                    .and_then(|b| cfg.block(b).insns.first().map(|ia| ia.insn));
                // Scratch registers must be dead here.
                let last = block.insns.len() - 1;
                let live = self.liveness.live_before(cfg, bid, last);
                if live.contains(Reg(6)) || live.contains(Reg(7)) {
                    return Err(EelError::TranslationClash { addr });
                }
                self.emit_translated_transfer(addr, rs1, src2, delay, false)?;
            }
        }
        Ok(())
    }

    /// The run-time translation sequence for an unanalyzable transfer:
    ///
    /// ```text
    /// add  rs1, src2, %g6      ! capture the ORIGINAL target
    /// <original delay insn>    ! it ran before the transfer, so replay now
    /// sethi %hi(__eel_translate), %g7
    /// or    %g7, %lo(__eel_translate), %g7
    /// jmpl  %g7, %g7           ! translator: %g6 ← new address
    /// nop
    /// jmpl  %g6, %o7|%g0       ! the real transfer
    /// nop
    /// ```
    fn emit_translated_transfer(
        &mut self,
        addr: u32,
        rs1: Reg,
        src2: Src2,
        delay: Option<Insn>,
        link: bool,
    ) -> Result<(), EelError> {
        if let Some(d) = delay {
            let w = d.writes();
            if w.contains(Reg(6)) || w.contains(Reg(7)) {
                return Err(EelError::TranslationClash { addr });
            }
            if link && d.reads().contains(Reg::O7) {
                return Err(EelError::TranslationClash { addr });
            }
        }
        self.needs_translator = true;
        self.items.push(Item::MapOrig(addr));
        self.items.push(Item::New(Builder::add(Reg(6), rs1, src2)));
        if let Some(d) = delay {
            self.items.push(Item::Orig {
                insn: d,
                addr: addr + 4,
            });
        }
        self.items.push(Item::SethiHiOf {
            rd: Reg(7),
            target: Tgt::Runtime(TRANSLATOR.into()),
            orig: None,
        });
        self.items.push(Item::OrLoOf {
            rd: Reg(7),
            rs1: Reg(7),
            target: Tgt::Runtime(TRANSLATOR.into()),
            orig: None,
        });
        self.items
            .push(Item::New(Builder::jmpl(Reg(7), Reg(7), Src2::Imm(0))));
        self.items.push(Item::New(Builder::nop()));
        let link_reg = if link { Reg::O7 } else { Reg::G0 };
        self.items
            .push(Item::New(Builder::jmpl(link_reg, Reg(6), Src2::Imm(0))));
        self.items.push(Item::New(Builder::nop()));
        Ok(())
    }
}

/// Where a path out of a terminator lands.
#[derive(Clone, Debug, PartialEq, Eq)]
enum PathDest {
    Block(BlockId),
    Escape(u32),
    Exit,
    Runtime,
    DeadEnd,
}
