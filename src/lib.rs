//! # eel — Executable Editing Library (reproduction facade)
//!
//! Umbrella crate for the Rust reproduction of *EEL: Machine-Independent
//! Executable Editing* (Larus & Schnarr, PLDI 1995). It re-exports every
//! workspace crate under one roof so examples and downstream users can
//! depend on a single crate:
//!
//! * [`isa`] — the SPARC-V8-subset instruction set (decode/encode/semantics).
//! * [`exe`] — the WEF executable file format.
//! * [`asm`] — the assembler.
//! * [`emu`] — the emulator (runs original and edited executables).
//! * [`cc`] — the Wisc compiler (generates realistic workloads).
//! * [`progen`] — the SPEC92-like benchmark suite generator.
//! * [`core`] — **the EEL library itself**: executables, routines, CFGs,
//!   instructions, snippets, analyses, and editing.
//! * [`edit`] — the command-driven patch-session engine behind `eeledit`
//!   and the serve `edit` op.
//! * [`spawn`] — the machine-description system.
//! * [`tools`] — qpt/qpt2, Active Memory, Blizzard, Elsie, the tracer.
//!
//! ## Quickstart
//!
//! ```
//! use eel::cc;
//! use eel::core::Executable;
//!
//! // Compile a program, open it with EEL, and walk its routines.
//! let exe = cc::compile_str("fn main() { return 0; }", &cc::Options::default())?;
//! let mut editable = Executable::from_image(exe)?;
//! editable.read_contents()?;
//! assert!(editable.routines().iter().any(|r| r.name() == "main"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use eel_asm as asm;
pub use eel_cc as cc;
pub use eel_core as core;
pub use eel_edit as edit;
pub use eel_emu as emu;
pub use eel_exe as exe;
pub use eel_isa as isa;
pub use eel_progen as progen;
pub use eel_spawn as spawn;
pub use eel_tools as tools;
